"""The Replica Catalog Service: a central catalog accessed over the WAN.

§4.2: "The current Globus Replica Catalog implementation uses the LDAP
protocol to interface with the database backend.  We do not currently
distribute or replicate the replica catalog but instead, for simplicity,
use a central replica catalog and a single LDAP server."

:class:`ReplicaCatalogService` hosts the catalog (the LDAP server site);
:class:`CatalogProxy` is what every site's GDMP uses — identical API,
each call paying one authenticated round trip to the catalog host.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.gdmp_catalog import GdmpCatalog, LogicalFileInfo
from repro.catalog.replica_catalog import CatalogError
from repro.gdmp.request_manager import (
    AuthenticatedRequest,
    GdmpError,
    RequestClient,
    RequestServer,
)
from repro.simulation.kernel import Process

__all__ = ["ReplicaCatalogService", "CatalogProxy"]

SERVICE_NAME = "replica-catalog"


class ReplicaCatalogService:
    """Hosts the central :class:`GdmpCatalog` behind the request manager."""

    def __init__(self, server: RequestServer, catalog: Optional[GdmpCatalog] = None):
        self.catalog = catalog or GdmpCatalog()
        self.server = server
        #: called with (operation, payload) after each successful write —
        #: the hook :mod:`repro.gdmp.catalog_replication` propagates from.
        self.write_listeners: list = []
        for op in (
            "publish",
            "add_replica",
            "remove_replica",
            "locations",
            "info",
            "search",
            "site_files",
            "lfn_exists",
            "list_lfns",
        ):
            server.register(f"catalog.{op}", getattr(self, f"_op_{op}"))

    # Handlers are generators (the request manager spawns them); catalog
    # operations themselves are in-memory and immediate.
    def _notify_write(self, operation: str, payload) -> None:
        for listener in self.write_listeners:
            listener(operation, payload)

    def _op_publish(self, request: AuthenticatedRequest):
        p = request.payload
        try:
            lfn = self.catalog.publish(
                p["site"],
                size=p["size"],
                modified=p["modified"],
                crc=p["crc"],
                lfn=p.get("lfn"),
                **p.get("attributes", {}),
            )
        except CatalogError as exc:
            raise GdmpError(str(exc)) from exc
        self._notify_write("publish", {**p, "lfn": lfn})
        return lfn
        yield  # pragma: no cover - marks this function as a generator

    def _op_add_replica(self, request: AuthenticatedRequest):
        try:
            self.catalog.add_replica(request.payload["lfn"], request.payload["site"])
        except CatalogError as exc:
            raise GdmpError(str(exc)) from exc
        self._notify_write("add_replica", dict(request.payload))
        return True
        yield  # pragma: no cover

    def _op_remove_replica(self, request: AuthenticatedRequest):
        try:
            self.catalog.remove_replica(
                request.payload["lfn"], request.payload["site"]
            )
        except CatalogError as exc:
            raise GdmpError(str(exc)) from exc
        self._notify_write("remove_replica", dict(request.payload))
        return True
        yield  # pragma: no cover

    def _op_locations(self, request: AuthenticatedRequest):
        return self.catalog.locations(request.payload["lfn"])
        yield  # pragma: no cover

    def _op_info(self, request: AuthenticatedRequest):
        try:
            return self.catalog.info(request.payload["lfn"])
        except CatalogError as exc:
            raise GdmpError(str(exc)) from exc
        yield  # pragma: no cover

    def _op_search(self, request: AuthenticatedRequest):
        try:
            return self.catalog.search(request.payload["filter"])
        except CatalogError as exc:
            raise GdmpError(str(exc)) from exc
        yield  # pragma: no cover

    def _op_site_files(self, request: AuthenticatedRequest):
        return self.catalog.site_files(request.payload["site"])
        yield  # pragma: no cover

    def _op_lfn_exists(self, request: AuthenticatedRequest):
        return self.catalog.lfn_exists(request.payload["lfn"])
        yield  # pragma: no cover

    def _op_list_lfns(self, request: AuthenticatedRequest):
        return self.catalog.list_lfns()
        yield  # pragma: no cover


class CatalogProxy:
    """Site-side view of the central catalog.  Every method returns a
    :class:`Process` (network round trip to the catalog host)."""

    def __init__(self, client: RequestClient, catalog_host: str):
        self.client = client
        self.catalog_host = catalog_host

    def publish(
        self,
        site: str,
        size: float,
        modified: float,
        crc: int,
        lfn: Optional[str] = None,
        **attributes,
    ) -> Process:
        """Register a new logical file and its first replica (one WAN call)."""
        return self.client.call(
            self.catalog_host,
            "catalog.publish",
            {
                "site": site,
                "size": size,
                "modified": modified,
                "crc": crc,
                "lfn": lfn,
                "attributes": attributes,
            },
        )

    def add_replica(self, lfn: str, site: str) -> Process:
        """Record an additional replica of a logical file."""
        return self.client.call(
            self.catalog_host, "catalog.add_replica", {"lfn": lfn, "site": site}
        )

    def remove_replica(self, lfn: str, site: str) -> Process:
        """Remove a replica record (retiring the LFN when it was the last)."""
        return self.client.call(
            self.catalog_host, "catalog.remove_replica", {"lfn": lfn, "site": site}
        )

    def locations(self, lfn: str) -> Process:
        """All physical locations of a logical file."""
        return self.client.call(self.catalog_host, "catalog.locations", {"lfn": lfn})

    def info(self, lfn: str) -> Process:
        """Metadata and locations of a logical file."""
        return self.client.call(self.catalog_host, "catalog.info", {"lfn": lfn})

    def search(self, filter_text: str) -> Process:
        """Logical files matching an LDAP filter over their metadata."""
        return self.client.call(
            self.catalog_host, "catalog.search", {"filter": filter_text}
        )

    def site_files(self, site: str) -> Process:
        """All LFNs a site holds (failure-recovery catalog diff)."""
        return self.client.call(
            self.catalog_host, "catalog.site_files", {"site": site}
        )

    def lfn_exists(self, lfn: str) -> Process:
        """Whether the logical file name is taken."""
        return self.client.call(self.catalog_host, "catalog.lfn_exists", {"lfn": lfn})

    def list_lfns(self) -> Process:
        """Every logical file name in the catalog."""
        return self.client.call(self.catalog_host, "catalog.list_lfns", {})
