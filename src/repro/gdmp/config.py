"""Per-site GDMP configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.units import GB, KiB, mbps

__all__ = ["GdmpConfig"]


@dataclass
class GdmpConfig:
    """Knobs of one site's GDMP installation.

    Transfer defaults mirror the tuning conclusions of §6: sites that have
    run the measurement workflow set ``tcp_buffer`` to the
    bandwidth-delay product and a small stream count; untuned sites ride on
    the 64 KiB system default with more streams.
    """

    site: str
    storage_prefix: str = "/storage"
    disk_capacity: float = 500 * GB
    disk_read_rate: float = mbps(400)
    disk_write_rate: float = mbps(400)
    # transfer defaults (the GridFTP negotiation GDMP performs)
    tcp_buffer: int = 64 * KiB
    parallel_streams: int = 4
    max_transfer_retries: int = 3
    # mass storage
    has_mss: bool = False
    tape_drives: int = 2
    tape_mount_seek: float = 45.0
    tape_rate: float = 15e6
    # behaviour
    auto_replicate: bool = False  # fetch files as soon as a notify arrives
    attrs: dict = field(default_factory=dict)

    def storage_path(self, lfn: str) -> str:
        """The site-local path an LFN is stored under."""
        return f"{self.storage_prefix}/{lfn}"
