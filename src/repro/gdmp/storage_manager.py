"""The Storage Manager Service (§4.4).

"by default a file is first looked for on its disk location and if it is
not there, it is assumed to be available in the Mass Storage System.
Consequently, a file stage request is issued" — the serving site pins the
file in its disk pool for the duration of the transfer; the receiving site
makes room in its pool (evicting cold replicas) before the transfer starts.
"""

from __future__ import annotations

from repro.gdmp.request_manager import GdmpError
from repro.simulation.kernel import Process, Simulator
from repro.simulation.monitor import Monitor
from repro.storage.filesystem import StorageError, StoredFile
from repro.storage.hrm import HierarchicalResourceManager, StageStatus

__all__ = ["StorageManager"]


class StorageManager:
    """Disk-pool + HRM orchestration for one site."""

    def __init__(self, sim: Simulator, hrm: HierarchicalResourceManager):
        self.sim = sim
        self.hrm = hrm
        self.monitor = Monitor()

    @property
    def pool(self):
        return self.hrm.pool

    @property
    def fs(self):
        return self.hrm.pool.fs

    def status(self, path: str) -> StageStatus:
        """Stage status of a path (disk / tape / staging / unknown)."""
        return self.hrm.status(path)

    def ensure_on_disk(self, path: str, pin: bool = True) -> Process:
        """Stage ``path`` to disk if needed and pin it; returns the
        :class:`StoredFile`."""

        def run():
            if self.hrm.status(path) is StageStatus.ON_TAPE:
                self.monitor.count("stage_requests")
            try:
                stored = yield self.hrm.stage_file(path)
            except StorageError as exc:
                raise GdmpError(f"staging {path!r} failed: {exc}") from exc
            if pin:
                self.pool.pin(path)
            return stored

        return self.sim.spawn(run(), name=f"ensure-on-disk {path}")

    def release(self, path: str) -> None:
        """Drop the transfer pin on a served file."""
        self.pool.unpin(path)

    def prepare_incoming(self, path: str, size: float):
        """Reserve space for an incoming replica (§4.4's
        ``allocate_storage(datasize)``): the transfer may only start if the
        space can be allocated.  Returns the :class:`Reservation`, which
        the caller must ``consume()`` on success or ``release()`` on
        failure."""
        if self.fs.exists(path):
            raise GdmpError(f"{path!r} already present at {self.fs.site}")
        evictions_before = self.pool.evictions
        try:
            reservation = self.pool.reserve(size)
        except StorageError as exc:
            raise GdmpError(f"no space for {path!r}: {exc}") from exc
        freed = self.pool.evictions - evictions_before
        if freed:
            self.monitor.count("evictions_for_incoming", freed)
        return reservation

    def commit_incoming(self, stored: StoredFile, reservation=None,
                        pin: bool = False) -> None:
        """Bookkeeping after the data mover materialized the replica."""
        self.monitor.count("replicas_received")
        if reservation is not None:
            reservation.consume()
        if pin:
            self.pool.pin(stored.path)

    def archive(self, path: str) -> Process:
        """Migrate a local file to tape (producer-side lifecycle)."""

        def run():
            record = yield self.hrm.archive_file(path)
            self.monitor.count("files_archived")
            return record

        return self.sim.spawn(run(), name=f"archive {path}")
