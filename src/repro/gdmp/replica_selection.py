"""Replica selection by cost function.

§4.2: "This information can then be used as a basis for replica selection
based on cost functions, which is part of planned future work.  (See
[VTF01] for some early ideas.)"  We implement that future work: candidate
replicas are scored by estimated transfer time — measured RTT (ping) plus
size over measured available bandwidth (pipechar) — and the cheapest
source wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.tools import ping, pipechar
from repro.netsim.topology import RouteError, Topology

__all__ = ["ReplicaScore", "choose_replica", "estimate_transfer_time"]

#: Control-channel overhead charged per transfer (connect + auth + commands).
SETUP_ROUND_TRIPS = 5


@dataclass(frozen=True)
class ReplicaScore:
    """One candidate source and its estimated cost."""

    site: str
    rtt: float
    available_bandwidth: float
    estimated_time: float


def estimate_transfer_time(
    topology: Topology, src: str, dst: str, size: float
) -> ReplicaScore:
    """Predicted wall-clock time to move ``size`` bytes from ``src``."""
    rtt = ping(topology, dst, src).rtt
    bandwidth = pipechar(topology, dst, src).available_bandwidth
    estimated = SETUP_ROUND_TRIPS * rtt + size / bandwidth
    return ReplicaScore(
        site=src,
        rtt=rtt,
        available_bandwidth=bandwidth,
        estimated_time=estimated,
    )


def rank_replicas(
    topology: Topology,
    locations: list[dict],
    dst_site: str,
    size: float,
) -> list[ReplicaScore]:
    """All usable sources among catalog ``locations``, cheapest first.

    Raises :class:`ValueError` if no candidate is usable (no replicas, or
    only the destination itself holds the file).
    """
    scores = []
    for location in locations:
        site = location["location"]
        if site == dst_site:
            continue
        try:
            scores.append(estimate_transfer_time(topology, site, dst_site, size))
        except (RouteError, KeyError):
            continue  # unreachable replica: not a candidate
    if not scores:
        raise ValueError(f"no usable replica source for destination {dst_site!r}")
    return sorted(scores, key=lambda s: s.estimated_time)


def choose_replica(
    topology: Topology,
    locations: list[dict],
    dst_site: str,
    size: float,
) -> ReplicaScore:
    """The cheapest reachable source (head of :func:`rank_replicas`)."""
    return rank_replicas(topology, locations, dst_site, size)[0]
