"""Replica selection by cost function, history-first.

§4.2: "This information can then be used as a basis for replica selection
based on cost functions, which is part of planned future work.  (See
[VTF01] for some early ideas.)"  We implement that future work twice
over.  The base cost function scores a candidate source by instantaneous
probes — measured RTT (``ping``) plus size over measured available
bandwidth (``pipechar``) — along the *transfer* direction ``src -> dst``
(probing the reverse path would price the wrong pipe on an asymmetric
route).  On top of it sits the [VTF01] refinement: when a
:class:`~repro.observatory.station.SiteWeather` cache is wired in, the
predicted time from observed transfer *history* is blended with the
probe estimate in proportion to the forecast's confidence.

The fallback ladder, per candidate:

1. fresh, confident history -> forecast dominates the estimate;
2. fresh but thin history   -> forecast and probe blend by confidence;
3. stale or missing history -> pure probe (exactly the old behaviour);
4. unroutable               -> not a candidate at all.

With ``weather=None`` every code path reduces to rung 3, so grids that
never opt in rank bit-identically to the pre-observatory selector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.tools import ping, pipechar
from repro.netsim.topology import RouteError, Topology

__all__ = ["ReplicaScore", "choose_replica", "estimate_transfer_time",
           "rank_replicas"]

#: Control-channel overhead charged per transfer (connect + auth + commands).
SETUP_ROUND_TRIPS = 5


@dataclass(frozen=True)
class ReplicaScore:
    """One candidate source and its estimated cost."""

    site: str
    rtt: float
    available_bandwidth: float
    estimated_time: float
    #: what priced the estimate: "probe" (instantaneous tools only) or
    #: "history" (an observatory forecast contributed)
    basis: str = "probe"
    #: the forecast's confidence in [0, 1] (0.0 on the pure-probe path)
    confidence: float = 0.0
    #: predicted achieved throughput from history (None without history)
    predicted_throughput: Optional[float] = None


def estimate_transfer_time(
    topology: Topology,
    src: str,
    dst: str,
    size: float,
    weather=None,
) -> ReplicaScore:
    """Predicted wall-clock time to move ``size`` bytes ``src -> dst``.

    Probes run along the transfer direction.  When ``weather`` (a
    :class:`~repro.observatory.station.SiteWeather`) holds a fresh,
    confident forecast for the pair, the history-predicted time is
    blended with the probe time by confidence; otherwise the probe
    estimate stands alone.
    """
    rtt = ping(topology, src, dst).rtt
    bandwidth = pipechar(topology, src, dst).available_bandwidth
    probe_time = SETUP_ROUND_TRIPS * rtt + size / bandwidth
    if weather is None:
        return ReplicaScore(
            site=src,
            rtt=rtt,
            available_bandwidth=bandwidth,
            estimated_time=probe_time,
        )
    forecast = weather.predict(src, dst, size)
    if (
        forecast is None
        or forecast.throughput <= 0.0
        or forecast.confidence < weather.config.min_confidence
    ):
        return ReplicaScore(
            site=src,
            rtt=rtt,
            available_bandwidth=bandwidth,
            estimated_time=probe_time,
        )
    setup_rtt = forecast.rtt if forecast.rtt is not None else rtt
    history_time = SETUP_ROUND_TRIPS * setup_rtt + size / forecast.throughput
    confidence = min(1.0, forecast.confidence)
    blended = confidence * history_time + (1.0 - confidence) * probe_time
    return ReplicaScore(
        site=src,
        rtt=rtt,
        available_bandwidth=bandwidth,
        estimated_time=blended,
        basis="history",
        confidence=confidence,
        predicted_throughput=forecast.throughput,
    )


def rank_replicas(
    topology: Topology,
    locations: list[dict],
    dst_site: str,
    size: float,
    weather=None,
) -> list[ReplicaScore]:
    """All usable sources among catalog ``locations``, cheapest first.

    Raises :class:`ValueError` if no candidate is usable (no replicas, or
    only the destination itself holds the file).
    """
    scores = []
    for location in locations:
        site = location["location"]
        if site == dst_site:
            continue
        try:
            scores.append(
                estimate_transfer_time(
                    topology, site, dst_site, size, weather=weather
                )
            )
        except (RouteError, KeyError):
            continue  # unreachable replica: not a candidate
    if not scores:
        raise ValueError(f"no usable replica source for destination {dst_site!r}")
    if weather is not None:
        # provenance accounting: did history or the probe ladder rank this?
        weather.note_selection(
            "history" if any(s.basis == "history" for s in scores) else "probe"
        )
    return sorted(scores, key=lambda s: s.estimated_time)


def choose_replica(
    topology: Topology,
    locations: list[dict],
    dst_site: str,
    size: float,
    weather=None,
) -> ReplicaScore:
    """The cheapest reachable source (head of :func:`rank_replicas`)."""
    return rank_replicas(topology, locations, dst_site, size,
                         weather=weather)[0]
