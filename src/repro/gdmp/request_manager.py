"""The Request Manager: GDMP's authenticated RPC layer.

§4.1: "Client requests are sent to the GDMP server through the Request
Manager.  The Request Manager is the client-server communication module ...
Using the Globus IO and Globus Data Conversion libraries, the Request
Manager provides a limited Remote Procedure Call functionality."  And:
"Every client request to a GDMP server is authenticated and authorized by a
security service."

Every request carries the caller's proxy certificate chain; the server
verifies the chain against its trusted CAs and maps the identity through
the gridmap before dispatching to the registered handler.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.netsim.channels import MessageNetwork
from repro.netsim.topology import Host
from repro.security.ca import CertificateAuthority, CertificateError, verify_chain
from repro.security.credentials import Credential
from repro.security.gridmap import AuthorizationError, GridMap
from repro.simulation.kernel import Process, Simulator
from repro.simulation.monitor import Monitor
from repro.simulation.resources import Store

__all__ = [
    "GdmpError",
    "RemoteError",
    "AuthenticatedRequest",
    "RequestServer",
    "RequestClient",
]

REQUEST_MESSAGE_SIZE = 512

_client_counter = itertools.count(1)


class GdmpError(Exception):
    """GDMP operation failure."""


class RequestTimeout(GdmpError):
    """No reply from the remote GDMP server within the deadline."""


class RemoteError(GdmpError):
    """An error raised by a remote handler, re-raised at the caller."""

    def __init__(self, operation: str, server: str, message: str):
        super().__init__(f"{operation}@{server}: {message}")
        self.operation = operation
        self.server = server
        self.remote_message = message


@dataclass(frozen=True)
class AuthenticatedRequest:
    """What a handler receives after the security layer has done its job."""

    operation: str
    payload: Any
    caller_host: str
    subject: str      # the presented (proxy) subject
    identity: str     # the authenticated end-entity DN
    account: str      # gridmap-mapped local account


Handler = Callable[[AuthenticatedRequest], Generator]


class RequestServer:
    """Server half: a dispatch table behind the security layer."""

    SERVICE = "gdmp"

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        host: Host,
        credential: Credential,
        trusted_cas: list[CertificateAuthority],
        gridmap: GridMap,
        service: str = SERVICE,
    ):
        self.sim = sim
        self.msgnet = msgnet
        self.host = host
        self.credential = credential
        self.trusted_cas = trusted_cas
        self.gridmap = gridmap
        self.service = service
        self.monitor = Monitor()
        self._handlers: dict[str, Handler] = {}
        self._mailbox = msgnet.register(host, service)
        sim.spawn(self._serve(), name=f"gdmp-request-manager@{host.name}")

    def register(self, operation: str, handler: Handler) -> None:
        """Bind a handler generator to an operation name."""
        if operation in self._handlers:
            raise ValueError(f"handler for {operation!r} already registered")
        self._handlers[operation] = handler

    def _serve(self):
        while True:
            envelope = yield self._mailbox.get()
            self.sim.spawn(
                self._handle(envelope), name=f"gdmp-handler@{self.host.name}"
            )

    def _respond(self, envelope, request_id, ok: bool, payload: Any):
        reply_service = envelope.payload["reply_service"]
        return self.msgnet.send(
            self.host,
            envelope.src,
            reply_service,
            payload={"request_id": request_id, "ok": ok, "payload": payload},
            size=REQUEST_MESSAGE_SIZE,
        )

    def _handle(self, envelope):
        body = envelope.payload
        request_id = body["request_id"]
        operation = body["operation"]
        self.monitor.count(f"op_{operation}")
        # security layer: authenticate + authorize before any dispatch
        try:
            chain = body["chain"]
            identity = verify_chain(chain, self.trusted_cas, self.sim.now)
            account = self.gridmap.authorize(identity)
        except (CertificateError, AuthorizationError, KeyError) as exc:
            self.monitor.count("auth_failures")
            yield self._respond(envelope, request_id, False, f"security: {exc}")
            return
        handler = self._handlers.get(operation)
        if handler is None:
            yield self._respond(
                envelope, request_id, False, f"unknown operation {operation!r}"
            )
            return
        request = AuthenticatedRequest(
            operation=operation,
            payload=body["payload"],
            caller_host=envelope.src,
            subject=chain[0].subject,
            identity=identity,
            account=account,
        )
        try:
            result = yield self.sim.spawn(
                handler(request), name=f"gdmp-op-{operation}"
            )
        except GdmpError as exc:
            yield self._respond(envelope, request_id, False, str(exc))
            return
        except Exception as exc:  # handler bug or substrate error: surface it
            self.monitor.count("handler_errors")
            yield self._respond(envelope, request_id, False, f"{type(exc).__name__}: {exc}")
            return
        yield self._respond(envelope, request_id, True, result)


class RequestClient:
    """Client half: issue authenticated calls to remote GDMP servers."""

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        host: Host,
        credential: Credential,
        service: str = RequestServer.SERVICE,
    ):
        self.sim = sim
        self.msgnet = msgnet
        self.host = host
        self.credential = credential
        self.service = service
        self.reply_service = f"gdmp-reply-{next(_client_counter)}"
        self._mailbox = msgnet.register(host, self.reply_service)
        self._request_ids = itertools.count(1)
        self._pending: dict[int, Store] = {}
        self.monitor = Monitor()
        sim.spawn(self._dispatch(), name=f"gdmp-client-dispatch@{host.name}")

    def _dispatch(self):
        while True:
            envelope = yield self._mailbox.get()
            body = envelope.payload
            store = self._pending.get(body["request_id"])
            if store is not None:
                store.put(body)

    def call(self, server_host: str, operation: str, payload: Any = None,
             size: int = REQUEST_MESSAGE_SIZE,
             timeout: Optional[float] = None) -> Process:
        """Invoke ``operation`` on the GDMP server at ``server_host``.

        With ``timeout`` set, a missing reply (crashed server, dropped
        message) raises :class:`RequestTimeout` after that many seconds;
        without it the call waits indefinitely (in-order FIFO delivery
        means no reply can be merely late)."""

        _timed_out = object()

        def run():
            request_id = next(self._request_ids)
            store = Store(self.sim)
            self._pending[request_id] = store
            self.monitor.count("calls")
            self.msgnet.send(
                self.host,
                server_host,
                self.service,
                payload={
                    "request_id": request_id,
                    "operation": operation,
                    "payload": payload,
                    "chain": self.credential.chain,
                    "reply_service": self.reply_service,
                },
                size=size,
            )
            if timeout is None:
                body = yield store.get()
            else:
                body = yield self.sim.any_of(
                    [store.get(), self.sim.timeout(timeout, value=_timed_out)]
                )
            del self._pending[request_id]
            if body is _timed_out:
                self.monitor.count("call_timeouts")
                raise RequestTimeout(
                    f"{operation}@{server_host}: no reply within {timeout}s"
                )
            if not body["ok"]:
                self.monitor.count("call_failures")
                raise RemoteError(operation, server_host, body["payload"])
            return body["payload"]

        return self.sim.spawn(run(), name=f"gdmp-call {operation}@{server_host}")
