"""The Request Manager: GDMP's authenticated RPC layer.

§4.1: "Client requests are sent to the GDMP server through the Request
Manager.  The Request Manager is the client-server communication module ...
Using the Globus IO and Globus Data Conversion libraries, the Request
Manager provides a limited Remote Procedure Call functionality."  And:
"Every client request to a GDMP server is authenticated and authorized by a
security service."

This module is a thin protocol profile over the shared service bus
(:mod:`repro.services`): the server is a :class:`ServiceEndpoint` whose
middleware chain counts operations, verifies the caller's proxy chain
against the trusted CAs, maps the identity through the gridmap, and sheds
deadline-expired requests; the client is a :class:`ServiceClient` that
attaches the proxy chain to every call and maps faults/timeouts to
:class:`RemoteError` / :class:`RequestTimeout`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.netsim.channels import MessageNetwork
from repro.netsim.topology import Host
from repro.security.ca import CertificateAuthority
from repro.security.credentials import Credential
from repro.security.gridmap import GridMap
from repro.services.bus import (
    ServiceClient,
    ServiceEndpoint,
    ServiceError,
    ServiceRequest,
)
from repro.services.middleware import (
    DeadlineMiddleware,
    GsiAuthenticator,
    GsiAuthMiddleware,
    MetricsMiddleware,
    ServerMonitorMiddleware,
)
from repro.services.tracelog import TraceLog
from repro.simulation.kernel import Process, Simulator
from repro.simulation.monitor import Monitor

__all__ = [
    "GdmpError",
    "RequestTimeout",
    "RemoteError",
    "AuthenticatedRequest",
    "RequestServer",
    "RequestClient",
]

REQUEST_MESSAGE_SIZE = 512


class GdmpError(ServiceError):
    """GDMP operation failure."""


class RequestTimeout(GdmpError):
    """No reply from the remote GDMP server within the deadline."""

    retryable = True


class RemoteError(GdmpError):
    """An error raised by a remote handler, re-raised at the caller."""

    def __init__(self, operation: str, server: str, message: str):
        super().__init__(f"{operation}@{server}: {message}")
        self.operation = operation
        self.server = server
        self.remote_message = message


def _request_timeout(operation: str, server: str, timeout: float) -> RequestTimeout:
    return RequestTimeout(f"{operation}@{server}: no reply within {timeout}s")


@dataclass(frozen=True)
class AuthenticatedRequest:
    """What a handler receives after the security layer has done its job."""

    operation: str
    payload: Any
    caller_host: str
    subject: str      # the presented (proxy) subject
    identity: str     # the authenticated end-entity DN
    account: str      # gridmap-mapped local account


Handler = Callable[[AuthenticatedRequest], Generator]


class RequestServer(ServiceEndpoint):
    """Server half: a dispatch table behind the security middleware."""

    SERVICE = "gdmp"

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        host: Host,
        credential: Credential,
        trusted_cas: list[CertificateAuthority],
        gridmap: GridMap,
        service: str = SERVICE,
        tracelog: Optional[TraceLog] = None,
        metrics=None,
    ):
        monitor = Monitor()
        self.credential = credential
        self.trusted_cas = trusted_cas
        self.gridmap = gridmap
        self.authenticator = GsiAuthenticator(trusted_cas, gridmap)
        middlewares = [
            ServerMonitorMiddleware(monitor),
            GsiAuthMiddleware(self.authenticator, monitor),
            DeadlineMiddleware(monitor, metrics=metrics, service=service),
        ]
        if metrics is not None:
            middlewares.insert(0, MetricsMiddleware(metrics, service=service))
        super().__init__(
            sim,
            msgnet,
            host,
            service,
            middlewares=tuple(middlewares),
            tracelog=tracelog,
            monitor=monitor,
            message_size=REQUEST_MESSAGE_SIZE,
            process_name=f"gdmp-request-manager@{host.name}",
        )

    def register(self, operation: str, handler: Handler) -> None:
        """Bind a handler generator to an operation name.  Handlers receive
        an :class:`AuthenticatedRequest` built from the middleware's
        verification result."""

        def adapter(request: ServiceRequest):
            auth = request.state["auth"]
            result = yield from handler(
                AuthenticatedRequest(
                    operation=request.operation,
                    payload=request.payload,
                    caller_host=request.caller_host,
                    subject=auth.subject,
                    identity=auth.identity,
                    account=auth.account,
                )
            )
            return result

        super().register(operation, adapter)


class RequestClient(ServiceClient):
    """Client half: issue authenticated calls to remote GDMP servers."""

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        host: Host,
        credential: Credential,
        service: str = RequestServer.SERVICE,
        tracelog: Optional[TraceLog] = None,
    ):
        super().__init__(
            sim,
            msgnet,
            host,
            service,
            tracelog=tracelog,
            message_size=REQUEST_MESSAGE_SIZE,
            remote_error=RemoteError,
            timeout_error=_request_timeout,
        )
        self.credential = credential

    def call(
        self,
        server_host: str,
        operation: str,
        payload: Any = None,
        size: int = REQUEST_MESSAGE_SIZE,
        timeout: Optional[float] = None,
    ) -> Process:
        """Invoke ``operation`` on the GDMP server at ``server_host``.

        With ``timeout`` set, a missing reply (crashed server, dropped
        message) raises :class:`RequestTimeout` after that many seconds;
        without it the call waits indefinitely (in-order FIFO delivery
        means no reply can be merely late).  The late reply of a timed-out
        call is discarded on arrival, never misdelivered to a later call."""
        return super().call(
            server_host,
            operation,
            payload,
            size=size,
            timeout=timeout,
            meta={"chain": self.credential.chain},
        )
