"""The GDMP server: one per site (Figure 3).

Registers the site's request-manager operations:

* ``subscribe`` / ``unsubscribe`` — the producer-consumer model's
  subscription registry;
* ``notify`` — a producer announcing newly published files; if the site is
  configured for automatic replication the files are fetched immediately;
* ``get_catalog`` — "obtaining a remote site's file catalog for failure
  recovery" (§4.1);
* ``request_stage`` — ask the site to stage a file from its MSS to its disk
  pool and pin it for an upcoming transfer (§4.4);
* ``release`` — drop the transfer pin afterwards.
"""

from __future__ import annotations

from typing import Optional

from repro.catalog.ldapsim import Entry, FilterSyntaxError, parse_filter
from repro.gdmp.request_manager import (
    AuthenticatedRequest,
    GdmpError,
    RequestServer,
)
from repro.gdmp.storage_manager import StorageManager
from repro.simulation.kernel import Simulator
from repro.simulation.monitor import Monitor

__all__ = ["GdmpServer"]


class GdmpServer:
    """Site-local GDMP daemon logic behind the request manager."""

    def __init__(
        self,
        sim: Simulator,
        site: str,
        request_server: RequestServer,
        storage: StorageManager,
    ):
        self.sim = sim
        self.site = site
        self.request_server = request_server
        self.storage = storage
        self.monitor = Monitor()
        #: subscriber site -> LDAP filter text (None = everything); filters
        #: are evaluated against a published file's attributes, so a
        #: regional center can subscribe to, e.g.,
        #: ``(&(filetype=objectivity)(run=2001*))`` only.
        self.subscribers: dict[str, Optional[str]] = {}
        #: LFN -> local path for every file this site holds/published.
        self.held: dict[str, str] = {}
        #: notifications received and not yet replicated (when manual)
        self.pending_news: list[dict] = []
        #: set by GdmpSite after the client exists (auto-replication)
        self.client = None

        request_server.register("subscribe", self._op_subscribe)
        request_server.register("unsubscribe", self._op_unsubscribe)
        request_server.register("notify", self._op_notify)
        request_server.register("get_catalog", self._op_get_catalog)
        request_server.register("request_stage", self._op_request_stage)
        request_server.register("release", self._op_release)

    # -- bookkeeping used by the client ---------------------------------------
    def record_held(self, lfn: str, path: str) -> None:
        """Record that this site holds an LFN at a local path."""
        self.held[lfn] = path

    def path_of(self, lfn: str) -> str:
        """Local path of a held LFN; raises GdmpError when not held."""
        try:
            return self.held[lfn]
        except KeyError:
            raise GdmpError(f"{self.site} does not hold {lfn!r}") from None

    # -- handlers -----------------------------------------------------------------
    def _op_subscribe(self, request: AuthenticatedRequest):
        subscriber = request.payload["site"]
        filter_text = request.payload.get("filter")
        if filter_text is not None:
            try:
                parse_filter(filter_text)  # validate before accepting
            except FilterSyntaxError as exc:
                raise GdmpError(f"bad subscription filter: {exc}") from exc
        self.subscribers[subscriber] = filter_text
        self.monitor.count("subscriptions")
        return sorted(self.subscribers)
        yield  # pragma: no cover - generator marker

    def _op_unsubscribe(self, request: AuthenticatedRequest):
        self.subscribers.pop(request.payload["site"], None)
        return sorted(self.subscribers)
        yield  # pragma: no cover

    def subscribers_for(self, attributes: dict) -> list[str]:
        """Subscribers whose filter matches a file with ``attributes``."""
        entry = Entry(
            dn="x=notify",
            attributes={k: [str(v)] for k, v in attributes.items()},
        )
        matching = []
        for site, filter_text in sorted(self.subscribers.items()):
            if filter_text is None or parse_filter(filter_text)(entry):
                matching.append(site)
        return matching

    def _op_notify(self, request: AuthenticatedRequest):
        """A producer announces new files.  With ``auto_replicate`` the
        consumer pulls each file at once (the production CMS deployment
        behaviour); otherwise the news is queued for a later explicit get."""
        news = {
            "producer": request.payload["producer"],
            "lfns": list(request.payload["lfns"]),
            "attributes": dict(request.payload.get("attributes", {})),
            "received_at": self.sim.now,
        }
        self.monitor.count("notifications")
        client = self.client
        if client is not None and client.config.auto_replicate:
            if len(news["lfns"]) > 1:
                # a batched announcement is fetched as one transfer set —
                # two catalog envelopes for the whole batch
                client.replicate_set(news["lfns"], prefer_site=news["producer"])
            else:
                for lfn in news["lfns"]:
                    client.replicate(lfn, prefer_site=news["producer"])
        else:
            self.pending_news.append(news)
        return True
        yield  # pragma: no cover

    def _op_get_catalog(self, request: AuthenticatedRequest):
        return dict(self.held)
        yield  # pragma: no cover

    def _op_request_stage(self, request: AuthenticatedRequest):
        """Ensure an LFN is on this site's disk pool (staging from tape if
        needed) and pin it; the reply carries the local path and size so the
        caller can start the GridFTP get."""
        lfn = request.payload["lfn"]
        path = self.path_of(lfn)
        stored = yield self.storage.ensure_on_disk(path, pin=True)
        self.monitor.count("stage_served")
        return {"path": path, "size": stored.size, "crc": stored.crc}

    def _op_release(self, request: AuthenticatedRequest):
        path = self.path_of(request.payload["lfn"])
        self.storage.release(path)
        return True
        yield  # pragma: no cover
