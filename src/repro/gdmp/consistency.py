"""Consistency policies for associated files (§2.2).

"the replication mechanism cannot a priori treat every file as independent
and self-contained, as tight navigational relations or synchronous
updating constraints might couple the objects in several files ...  the
two files have to be treated as associated files and replicated together
in order to preserve the navigation. ...  The model for file replication
is therefore that 'consistency policies', which flow from the application
layer, will steer the replication layer."

:class:`FileAssociationGraph` captures which files an application's
navigation couples (derivable automatically from a federation's cross-file
associations); :class:`AssociatedFilesPolicy` turns a replication request
for one file into the request for its dependency closure.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.objectdb.federation import Federation

__all__ = [
    "FileAssociationGraph",
    "ConsistencyPolicy",
    "IndependentFilesPolicy",
    "AssociatedFilesPolicy",
]


class FileAssociationGraph:
    """Directed "requires" edges between logical files.

    An edge ``a -> b`` means objects in ``a`` navigate to objects in ``b``,
    so replicating ``a`` without ``b`` leaves dangling associations at the
    destination (the §2.1 failure mode)."""

    def __init__(self) -> None:
        self._requires: dict[str, set[str]] = {}

    def add_association(self, from_lfn: str, to_lfn: str) -> None:
        """Record that from_lfn's objects navigate into to_lfn."""
        if from_lfn == to_lfn:
            return
        self._requires.setdefault(from_lfn, set()).add(to_lfn)

    def requires(self, lfn: str) -> set[str]:
        """Direct dependencies of one file."""
        return set(self._requires.get(lfn, ()))

    def closure(self, lfn: str) -> list[str]:
        """``lfn`` plus everything it transitively requires, dependencies
        first (cycles allowed: members of a cycle are mutually required)."""
        visited: list[str] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            for dep in sorted(self._requires.get(name, ())):
                visit(dep)
            visited.append(name)

        visit(lfn)
        return visited

    @classmethod
    def from_federation(
        cls,
        federation: Federation,
        lfn_of: Optional[Callable[[str], str]] = None,
    ) -> "FileAssociationGraph":
        """Derive the graph from a federation's cross-file associations.

        ``lfn_of`` maps a database file *name* to its published LFN
        (identity by default — GDMP publishes database files under their
        own names)."""
        lfn_of = lfn_of or (lambda name: name)
        graph = cls()
        name_by_id = {
            federation.database(name).db_id: name
            for name in federation.database_names
        }
        for obj in federation.iter_objects():
            source_file = name_by_id[obj.oid.database]
            for target in obj.all_targets():
                target_file = name_by_id.get(target.database)
                if target_file is not None and target_file != source_file:
                    graph.add_association(lfn_of(source_file), lfn_of(target_file))
        return graph


class ConsistencyPolicy(Protocol):
    """Application-layer policy steering the replication layer."""

    def replication_set(self, lfn: str) -> list[str]:
        """Files that must be replicated (dependencies first) when the
        application asks for ``lfn``."""
        ...


class IndependentFilesPolicy:
    """Every file is self-contained (flat files, schema-free data)."""

    def replication_set(self, lfn: str) -> list[str]:
        """Just the requested file."""
        return [lfn]


class AssociatedFilesPolicy:
    """Replicate a file together with its association closure."""

    def __init__(self, graph: FileAssociationGraph):
        self.graph = graph

    def replication_set(self, lfn: str) -> list[str]:
        """The file plus its association closure, dependencies first."""
        return self.graph.closure(lfn)
