"""Distribution and replication of the replica catalog (§4.2 future work).

"We do not currently distribute or replicate the replica catalog but
instead, for simplicity, use a central replica catalog and a single LDAP
server.  In the future, we will explore both distribution and replication
of the replica catalog."

We implement that future: a *primary* catalog (the existing central
service) plus read-only replicas at chosen sites.  Writes go to the
primary, which asynchronously propagates each applied write to every
replica (single-writer eventual consistency, in-order per replica because
the simulated message channel is FIFO per pair).  Reads are served by the
local replica when one exists — turning the 1-RTT WAN lookup into a local
operation, at the cost of a staleness window of roughly one propagation
delay.
"""

from __future__ import annotations

from repro.catalog.gdmp_catalog import GdmpCatalog
from repro.gdmp.replica_service import CatalogProxy, ReplicaCatalogService
from repro.gdmp.request_manager import AuthenticatedRequest, GdmpError

__all__ = ["CatalogReplica", "ReplicatedCatalogProxy", "enable_catalog_replication"]

READ_OPERATIONS = (
    "locations",
    "info",
    "search",
    "site_files",
    "lfn_exists",
    "list_lfns",
)


class CatalogReplica:
    """A read-only catalog copy at one site, fed by the primary's writes."""

    def __init__(self, site) -> None:
        self.site = site
        self.catalog = GdmpCatalog()
        self.applied_writes = 0
        # read operations answer from the local copy
        for op in READ_OPERATIONS:
            site.request_server.register(f"catalog.{op}", self._make_read(op))
        # the primary pushes writes here
        site.request_server.register("catalog.apply", self._op_apply)

    def _make_read(self, op: str):
        catalog = self.catalog

        def handler(request: AuthenticatedRequest, op=op):
            payload = request.payload
            if op == "locations":
                return catalog.locations(payload["lfn"])
            if op == "info":
                return catalog.info(payload["lfn"])
            if op == "search":
                return catalog.search(payload["filter"])
            if op == "site_files":
                return catalog.site_files(payload["site"])
            if op == "lfn_exists":
                return catalog.lfn_exists(payload["lfn"])
            if op == "list_lfns":
                return catalog.list_lfns()
            raise GdmpError(f"unknown read operation {op!r}")  # pragma: no cover
            yield  # pragma: no cover - generator marker

        return handler

    def _op_apply(self, request: AuthenticatedRequest):
        operation = request.payload["operation"]
        data = request.payload["data"]
        self.apply(operation, data)
        return True
        yield  # pragma: no cover

    def apply(self, operation: str, data: dict) -> None:
        """Apply one propagated write to the local copy."""
        if operation == "publish":
            self.catalog.publish(
                data["site"],
                size=data["size"],
                modified=data["modified"],
                crc=data["crc"],
                lfn=data["lfn"],
                **data.get("attributes", {}),
            )
        elif operation == "add_replica":
            self.catalog.add_replica(data["lfn"], data["site"])
        elif operation == "remove_replica":
            self.catalog.remove_replica(data["lfn"], data["site"])
        else:
            raise GdmpError(f"unknown catalog write {operation!r}")
        self.applied_writes += 1


class ReplicatedCatalogProxy(CatalogProxy):
    """Writes to the primary, reads from the nearest replica."""

    def __init__(self, client, primary_host: str, read_host: str):
        super().__init__(client, primary_host)
        self.read_host = read_host

    def _read_call(self, operation: str, payload) -> object:
        return self.client.call(self.read_host, operation, payload)

    def locations(self, lfn):
        """Read locations from the nearest replica."""
        return self._read_call("catalog.locations", {"lfn": lfn})

    def info(self, lfn):
        """Read a logical file's metadata from the nearest replica."""
        return self._read_call("catalog.info", {"lfn": lfn})

    def search(self, filter_text):
        """Filtered search against the nearest replica."""
        return self._read_call("catalog.search", {"filter": filter_text})

    def site_files(self, site):
        """A site's holdings, read from the nearest replica."""
        return self._read_call("catalog.site_files", {"site": site})

    def lfn_exists(self, lfn):
        """Name-in-use check against the nearest replica."""
        return self._read_call("catalog.lfn_exists", {"lfn": lfn})

    def list_lfns(self):
        """All LFNs, read from the nearest replica."""
        return self._read_call("catalog.list_lfns", {})


def enable_catalog_replication(grid, replica_sites: list[str]) -> dict:
    """Upgrade ``grid``'s central catalog to primary + replicas.

    Replica copies are seeded from the primary's current contents, then
    kept up to date by write propagation.  Every site's client is switched
    to a :class:`ReplicatedCatalogProxy` reading from its nearest replica
    (its own site when it hosts one, the primary otherwise).

    Returns ``{site: CatalogReplica}``.
    """
    primary_host = grid.catalog_host
    service: ReplicaCatalogService = grid.catalog_service
    replicas: dict[str, CatalogReplica] = {}
    for name in replica_sites:
        if name == primary_host:
            raise ValueError("the primary already holds the catalog")
        site = grid.site(name)
        replica = CatalogReplica(site)
        # seed from the primary's current state
        for lfn in service.catalog.list_lfns():
            info = service.catalog.info(lfn)
            locations = [loc["location"] for loc in info.locations]
            replica.catalog.publish(
                locations[0],
                size=info.size,
                modified=info.modified,
                crc=info.crc,
                lfn=lfn,
                **info.attributes,
            )
            for extra in locations[1:]:
                replica.catalog.add_replica(lfn, extra)
        replicas[name] = replica

    primary_site = grid.site(primary_host)

    def propagate(operation: str, data: dict) -> None:
        for name in replicas:
            primary_site.request_client.call(
                name, "catalog.apply", {"operation": operation, "data": data}
            )

    service.write_listeners.append(propagate)

    for site in grid.sites.values():
        read_host = site.name if site.name in replicas else primary_host
        site.client.catalog = ReplicatedCatalogProxy(
            site.request_client, primary_host, read_host
        )
    return replicas
