"""Distribution and replication of the replica catalog (§4.2 future work).

"We do not currently distribute or replicate the replica catalog but
instead, for simplicity, use a central replica catalog and a single LDAP
server.  In the future, we will explore both distribution and replication
of the replica catalog."

We implement that future: a *primary* catalog (the existing central
service) plus read-only replicas at chosen sites.  Writes go to the
primary, which asynchronously propagates each applied write to every
replica (single-writer eventual consistency, in-order per replica because
the simulated message channel is FIFO per pair).  Reads are served by the
local replica when one exists — turning the 1-RTT WAN lookup into a local
operation, at the cost of a staleness window of roughly one propagation
delay.

Batched writes propagate as batches: one ``catalog.apply`` envelope per
replica carries the whole transfer set's registrations.  Applying a write
also invalidates the co-located site proxy's location cache for the
affected LFNs, so a site that hosts a replica never serves a cached answer
older than its own replica copy.
"""

from __future__ import annotations

from repro.catalog.gdmp_catalog import GdmpCatalog
from repro.gdmp.replica_service import CatalogProxy, ReplicaCatalogService
from repro.gdmp.request_manager import AuthenticatedRequest, GdmpError

__all__ = ["CatalogReplica", "ReplicatedCatalogProxy", "enable_catalog_replication"]

READ_OPERATIONS = (
    "locations",
    "locations_bulk",
    "info",
    "info_bulk",
    "search",
    "site_files",
    "lfn_exists",
    "list_lfns",
)


def _affected_lfns(operation: str, data: dict) -> list[str]:
    """The LFNs a propagated write touches (for cache invalidation)."""
    if operation in ("publish_bulk", "add_replica_bulk", "remove_replica_bulk"):
        return list(data["lfns"])
    return [data["lfn"]]


class CatalogReplica:
    """A read-only catalog copy at one site, fed by the primary's writes."""

    def __init__(self, site) -> None:
        self.site = site
        self.catalog = GdmpCatalog()
        self.applied_writes = 0
        #: called with the list of affected LFNs after each applied write —
        #: wired to the co-located proxy's cache invalidation
        self.apply_listeners: list = []
        # read operations answer from the local copy
        for op in READ_OPERATIONS:
            site.request_server.register(f"catalog.{op}", self._make_read(op))
        # the primary pushes writes here
        site.request_server.register("catalog.apply", self._op_apply)

    def _make_read(self, op: str):
        catalog = self.catalog

        def handler(request: AuthenticatedRequest, op=op):
            payload = request.payload
            if op == "locations":
                return catalog.locations(payload["lfn"])
            if op == "locations_bulk":
                return catalog.locations_bulk(list(payload["lfns"]))
            if op == "info":
                return catalog.info(payload["lfn"])
            if op == "info_bulk":
                return catalog.info_bulk(list(payload["lfns"]))
            if op == "search":
                return catalog.search(payload["filter"])
            if op == "site_files":
                return catalog.site_files(payload["site"])
            if op == "lfn_exists":
                return catalog.lfn_exists(payload["lfn"])
            if op == "list_lfns":
                return catalog.list_lfns()
            raise GdmpError(f"unknown read operation {op!r}")  # pragma: no cover
            yield  # pragma: no cover - generator marker

        return handler

    def _op_apply(self, request: AuthenticatedRequest):
        operation = request.payload["operation"]
        data = request.payload["data"]
        self.apply(operation, data)
        return True
        yield  # pragma: no cover

    def apply(self, operation: str, data: dict) -> None:
        """Apply one propagated write (possibly a whole batch) locally."""
        if operation == "publish":
            self.catalog.publish(
                data["site"],
                size=data["size"],
                modified=data["modified"],
                crc=data["crc"],
                lfn=data["lfn"],
                **data.get("attributes", {}),
            )
        elif operation == "publish_bulk":
            # the primary filled in generated LFNs, so this replays exactly
            self.catalog.publish_bulk(data["site"], data["files"])
        elif operation == "add_replica":
            self.catalog.add_replica(data["lfn"], data["site"])
        elif operation == "add_replica_bulk":
            self.catalog.add_replicas(list(data["lfns"]), data["site"])
        elif operation == "remove_replica":
            self.catalog.remove_replica(data["lfn"], data["site"])
        elif operation == "remove_replica_bulk":
            self.catalog.remove_replicas(list(data["lfns"]), data["site"])
        else:
            raise GdmpError(f"unknown catalog write {operation!r}")
        self.applied_writes += 1
        lfns = _affected_lfns(operation, data)
        for listener in self.apply_listeners:
            listener(lfns)


class ReplicatedCatalogProxy(CatalogProxy):
    """Writes to the primary, reads from the nearest replica.

    All routing lives in :class:`CatalogProxy` (every read goes through
    ``read_host``); this subclass only points ``read_host`` at the replica,
    so the location cache behaves identically in both deployments.
    """

    def __init__(self, client, primary_host: str, read_host: str,
                 cache: bool = True):
        super().__init__(client, primary_host, cache=cache)
        self.read_host = read_host


def enable_catalog_replication(grid, replica_sites: list[str]) -> dict:
    """Upgrade ``grid``'s central catalog to primary + replicas.

    Replica copies are seeded from the primary's current contents, then
    kept up to date by write propagation.  Every site's client is switched
    to a :class:`ReplicatedCatalogProxy` reading from its nearest replica
    (its own site when it hosts one, the primary otherwise).  When a
    replica applies a propagated write, the co-located proxy's cache is
    invalidated for the affected LFNs.

    Returns ``{site: CatalogReplica}``.
    """
    primary_host = grid.catalog_host
    service: ReplicaCatalogService = grid.catalog_service
    replicas: dict[str, CatalogReplica] = {}
    for name in replica_sites:
        if name == primary_host:
            raise ValueError("the primary already holds the catalog")
        site = grid.site(name)
        replica = CatalogReplica(site)
        # seed from the primary's current state
        for lfn in service.catalog.list_lfns():
            info = service.catalog.info(lfn)
            locations = [loc["location"] for loc in info.locations]
            replica.catalog.publish(
                locations[0],
                size=info.size,
                modified=info.modified,
                crc=info.crc,
                lfn=lfn,
                **info.attributes,
            )
            for extra in locations[1:]:
                replica.catalog.add_replica(lfn, extra)
        replicas[name] = replica

    primary_site = grid.site(primary_host)

    def propagate(operation: str, data: dict) -> None:
        for name in replicas:
            primary_site.request_client.call(
                name, "catalog.apply", {"operation": operation, "data": data}
            )

    service.write_listeners.append(propagate)

    for site in grid.sites.values():
        read_host = site.name if site.name in replicas else primary_host
        proxy = ReplicatedCatalogProxy(
            site.request_client, primary_host, read_host
        )
        site.client.catalog = proxy
        if site.name in replicas:
            def invalidate(lfns, proxy=proxy):
                for lfn in lfns:
                    proxy.invalidate(lfn)

            replicas[site.name].apply_listeners.append(invalidate)
    return replicas
