"""The GDMP client API (§4.1).

"GDMP client APIs provide four main services to the end-user:

* subscribing to a remote site for getting informed when new files are
  created and made public,
* publishing new files and thus making them available and accessible to
  the Grid,
* obtaining a remote site's file catalog for failure recovery, and
* transferring files from a remote location to the local site."

``replicate`` implements the full §4.1 pipeline: locate (catalog) ->
select source (cost function) -> stage at source (MSS) -> pre-process ->
GridFTP transfer with CRC + restart recovery -> post-process (e.g.
Objectivity attach) -> register the new replica in the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gdmp.config import GdmpConfig
from repro.gdmp.data_mover import DataMover
from repro.gdmp.failover import failover_walk, ranked_sources
from repro.gdmp.plugins import PluginRegistry
from repro.gdmp.replica_service import CatalogProxy
from repro.gdmp.request_manager import GdmpError, RequestClient
from repro.gdmp.server import GdmpServer
from repro.gdmp.storage_manager import StorageManager
from repro.netsim.topology import Topology
from repro.services.bus import ServiceError
from repro.services.tracelog import TraceLog
from repro.simulation.kernel import Process, Simulator
from repro.simulation.monitor import Monitor
from repro.storage.filesystem import StoredFile

__all__ = ["GdmpClient", "ReplicationReport"]


@dataclass(frozen=True)
class ReplicationReport:
    """Accounting for one completed replication."""

    lfn: str
    source: str
    destination: str
    size: float
    total_duration: float       # locate + stage + transfer + post-process
    transfer_duration: float
    stage_wait: float
    attempts: int
    crc_retries: int
    streams: int
    buffer: int
    stored: StoredFile
    failed_sources: tuple[str, ...] = ()

    @property
    def throughput(self) -> float:
        """End-to-end goodput including all pipeline overheads."""
        return self.size / self.total_duration if self.total_duration > 0 else 0.0


class GdmpClient:
    """One site's GDMP client commands."""

    def __init__(
        self,
        sim: Simulator,
        site: str,
        config: GdmpConfig,
        topology: Topology,
        request_client: RequestClient,
        catalog: CatalogProxy,
        storage: StorageManager,
        data_mover: DataMover,
        server: GdmpServer,
        plugins: Optional[PluginRegistry] = None,
        site_runtime=None,
        tracelog: Optional[TraceLog] = None,
    ):
        self.sim = sim
        self.site = site
        self.config = config
        self.topology = topology
        self.rpc = request_client
        self.catalog = catalog
        self.storage = storage
        self.mover = data_mover
        self.server = server
        self.plugins = plugins or PluginRegistry()
        self.site_runtime = site_runtime  # GdmpSite, for plugin hooks
        self.tracelog = tracelog
        #: this site's :class:`~repro.observatory.station.SiteWeather`
        #: forecast cache when the grid runs the weather service (wired
        #: by DataGrid); None keeps ranking on the pure-probe path
        self.weather = None
        self.monitor = Monitor()
        self._replicating: set[str] = set()
        server.client = self

    def _root_span(self, name: str, **attrs):
        """Open a span for a top-level client command and make it the
        current process's ambient context, so every nested call — RPC,
        GridFTP control, transfer flows, catalog update — joins its trace."""
        if self.tracelog is None:
            return None
        span = self.tracelog.begin(
            name,
            parent=self.sim.current_context,
            kind="local",
            host=self.site,
            service="gdmp-client",
            **attrs,
        )
        self.sim.active_process.context = span.context
        return span

    # -- service 1: subscribe -------------------------------------------------
    def subscribe_to(self, producer_site: str,
                     filter_text: Optional[str] = None) -> Process:
        """Register this site as a consumer of ``producer_site``'s files.

        ``filter_text`` is an LDAP filter over published file attributes
        (size, filetype, and any user metadata); only matching files are
        notified (§4.2: "Users can specify filters to obtain the exact
        information that they require")."""
        return self.rpc.call(
            producer_site,
            "subscribe",
            {"site": self.site, "filter": filter_text},
        )

    def unsubscribe_from(self, producer_site: str) -> Process:
        """Withdraw this site's subscription at a producer."""
        return self.rpc.call(producer_site, "unsubscribe", {"site": self.site})

    # -- service 2: publish -----------------------------------------------------
    def publish(self, lfn: str, path: str, **attributes) -> Process:
        """Publish an existing local file: register it (and its metadata) in
        the replica catalog and notify all subscribers."""

        def run():
            span = self._root_span("gdmp:publish", lfn=lfn)
            stored = self.storage.fs.stat(path)
            yield self.catalog.publish(
                self.site,
                size=stored.size,
                modified=stored.created_at,
                crc=stored.crc,
                lfn=lfn,
                **attributes,
            )
            self.server.record_held(lfn, path)
            self.monitor.count("published")
            # §4.2: "The subscribers are notified of the existence of new
            # files." — subscription filters select who hears about this one
            file_attrs = {
                "lfn": lfn,
                "size": f"{stored.size:.0f}",
                **{k: str(v) for k, v in attributes.items()},
            }
            for subscriber in self.server.subscribers_for(file_attrs):
                yield self.rpc.call(
                    subscriber,
                    "notify",
                    {"producer": self.site, "lfns": [lfn],
                     "attributes": file_attrs},
                )
            if span is not None:
                self.tracelog.finish(span, "ok")
            return lfn

        return self.sim.spawn(run(), name=f"gdmp-publish {lfn}")

    def produce_and_publish(
        self, lfn: str, size: float, payload=None, **attributes
    ) -> Process:
        """Convenience for workloads: create the local file, then publish."""

        def run():
            path = self.config.storage_path(lfn)
            self.storage.pool.ensure_space(size)
            # attributes are stored on the file too, so they travel with
            # replicas (plugins read them at the destination)
            self.storage.fs.create(
                path, size, now=self.sim.now, payload=payload,
                **{k: str(v) for k, v in attributes.items()},
            )
            result = yield self.publish(lfn, path, **attributes)
            return result

        return self.sim.spawn(run(), name=f"gdmp-produce {lfn}")

    # -- service 3: remote catalog for failure recovery ---------------------------
    def get_remote_catalog(self, site: str) -> Process:
        """A remote site's LFN -> path holdings (failure recovery)."""
        return self.rpc.call(site, "get_catalog", {})

    # -- service 4: replication ----------------------------------------------------
    def replicate(
        self,
        lfn: str,
        prefer_site: Optional[str] = None,
        streams: Optional[int] = None,
        tcp_buffer: Optional[int] = None,
        *,
        info=None,
        register: bool = True,
    ) -> Process:
        """Create a local replica of ``lfn`` (the §4.1 pipeline).

        ``info`` and ``register`` exist for :meth:`replicate_set`: a batched
        caller passes the already-fetched :class:`LogicalFileInfo` (skipping
        the per-file catalog lookup) and defers the ``add_replica``
        registration to one bulk flush at the transfer-set boundary.
        """

        def attempt_from(source, info, local_path):
            """One full attempt against one source.  Returns
            (move_report, stage_wait, transfer_duration)."""
            stage_started = self.sim.now
            staged = yield self.rpc.call(source, "request_stage", {"lfn": lfn})
            stage_wait = self.sim.now - stage_started
            reservation = None
            try:
                # pre-processing (file-type specific)
                plugin = self.plugins.for_info(info)
                yield self.sim.spawn(
                    plugin.pre_process(self.site_runtime, info),
                    name="gdmp-pre-process",
                )
                # allocate local space, then move the bytes (§4.4: the
                # transfer starts only if the space can be allocated)
                reservation = self.storage.prepare_incoming(local_path, info.size)
                transfer_started = self.sim.now
                report = yield self.mover.fetch(
                    src_host=source,
                    remote_path=staged["path"],
                    local_path=local_path,
                    expected_crc=info.crc,
                    streams=streams or self.config.parallel_streams,
                    tcp_buffer=tcp_buffer or self.config.tcp_buffer,
                )
                transfer_duration = self.sim.now - transfer_started
                # post-processing (e.g. attach to the local federation)
                yield self.sim.spawn(
                    plugin.post_process(self.site_runtime, report.stored),
                    name="gdmp-post-process",
                )
            except BaseException:
                if reservation is not None:
                    reservation.release()
                raise
            finally:
                # best-effort: a crashed source cannot answer, and the
                # goodbye must never mask the failure being propagated
                try:
                    yield self.rpc.call(source, "release", {"lfn": lfn})
                except ServiceError:
                    self.monitor.count("release_failures")
            self.storage.commit_incoming(report.stored, reservation)
            return report, stage_wait, transfer_duration

        def run():
            started = self.sim.now
            span = self._root_span("gdmp:replicate", lfn=lfn)
            try:
                if lfn in self._replicating:
                    raise GdmpError(
                        f"{self.site} is already replicating {lfn!r}"
                    )
                self._replicating.add(lfn)
                try:
                    result = yield from replicate_body(started)
                finally:
                    self._replicating.discard(lfn)
            except BaseException as exc:
                if span is not None:
                    self.tracelog.finish(span, "error", detail=str(exc))
                raise
            if span is not None:
                self.tracelog.finish(span, "ok")
            return result

        def replicate_body(started):
            if info is None:
                file_info = yield self.catalog.info(lfn)
            else:
                file_info = info
            local_path = self.config.storage_path(lfn)
            if self.storage.fs.exists(local_path):
                if lfn in self.server.held:
                    raise GdmpError(f"{self.site} already holds {lfn!r}")
                # a file on disk that was never recorded as held is debris
                # from an earlier attempt interrupted between materializing
                # the bytes and the local bookkeeping (e.g. a host crash
                # mid-pipeline): purge it and transfer afresh, so an
                # interrupted replication converges instead of wedging on
                # "already present"
                self.storage.fs.delete(local_path)
                self.monitor.count("orphans_purged")

            # source ranking: preferred producer first if it has a replica,
            # then the cost-function order; failed sources are skipped
            # (§4.3's pluggable error recovery: alternate-replica failover)
            candidates = ranked_sources(
                self.topology,
                file_info.locations,
                self.site,
                file_info.size,
                prefer_site=prefer_site,
                weather=self.weather,
            )

            def on_failover(_source, _error):
                self.monitor.count("source_failovers")
                if self.mover.metrics is not None:
                    self.mover.metrics.counter(
                        "gdmp.mover.failovers", site=self.site
                    ).inc()

            (report, stage_wait, transfer_duration), source, failed = (
                yield from failover_walk(
                    candidates,
                    lambda source: self.sim.spawn(
                        attempt_from(source, file_info, local_path),
                        name=f"gdmp-attempt {lfn}@{source}",
                    ),
                    describe=repr(lfn),
                    on_failover=on_failover,
                )
            )
            # make the replica visible to the grid (a batched caller defers
            # this to one bulk registration at the transfer-set boundary)
            if register:
                yield self.catalog.add_replica(lfn, self.site)
            self.server.record_held(lfn, local_path)
            self.monitor.count("replicated")
            self.monitor.count("bytes_replicated", file_info.size)
            return ReplicationReport(
                lfn=lfn,
                source=source,
                destination=self.site,
                size=file_info.size,
                total_duration=self.sim.now - started,
                transfer_duration=transfer_duration,
                stage_wait=stage_wait,
                attempts=report.attempts,
                crc_retries=report.crc_retries,
                streams=report.streams,
                buffer=report.buffer,
                stored=report.stored,
                failed_sources=tuple(failed),
            )

        return self.sim.spawn(run(), name=f"gdmp-replicate {lfn}")

    def replicate_set(
        self,
        lfns,
        prefer_site: Optional[str] = None,
        streams: Optional[int] = None,
        tcp_buffer: Optional[int] = None,
        skip_held: bool = False,
    ) -> Process:
        """Replicate a whole transfer set with batched catalog traffic.

        Where N calls to :meth:`replicate` would pay 2N catalog round
        trips (info + add_replica per file), this pays two *envelopes* for
        the whole set: one ``info_bulk`` up front and one bulk
        ``add_replicas`` flush at the transfer-set boundary.  Files are
        transferred in order; if one fails, the replicas fetched so far
        are still registered before the error propagates (no replica is
        left invisible to the grid).  Returns the list of
        :class:`ReplicationReport` in input order.

        ``skip_held`` makes the call re-entrant after an interruption:
        files already held locally are not transferred again, but still
        join the registration flush — ``add_replica`` is idempotent at
        the catalog, so this repairs a registration that a previous,
        interrupted pass transferred but never managed to flush.
        """
        lfns = list(lfns)

        def run():
            span = self._root_span("gdmp:replicate-set", count=len(lfns))
            reports: list[ReplicationReport] = []
            registered: list[str] = []
            try:
                if lfns:
                    infos = yield self.catalog.info_bulk(lfns)
                    try:
                        for file_info in infos:
                            if skip_held and file_info.lfn in self.server.held:
                                registered.append(file_info.lfn)
                                continue
                            report = yield self.replicate(
                                file_info.lfn,
                                prefer_site=prefer_site,
                                streams=streams,
                                tcp_buffer=tcp_buffer,
                                info=file_info,
                                register=False,
                            )
                            reports.append(report)
                            registered.append(file_info.lfn)
                    finally:
                        # flush the deferred registrations in one envelope,
                        # even when a later file failed mid-set
                        if registered:
                            yield self.catalog.add_replicas(
                                registered, self.site
                            )
            except BaseException as exc:
                if span is not None:
                    self.tracelog.finish(span, "error", detail=str(exc))
                raise
            if span is not None:
                self.tracelog.finish(span, "ok")
            return reports

        return self.sim.spawn(run(), name=f"gdmp-replicate-set x{len(lfns)}")

    def publish_set(self, specs) -> Process:
        """Publish a set of existing local files in one catalog envelope.

        ``specs`` is a list of dicts with keys ``path``, optional ``lfn``
        (None = automatic generation) and optional ``attributes``.  The
        whole set registers via one ``publish_bulk`` round trip, and each
        subscriber receives a single ``notify`` listing every matching
        file (``attributes`` keyed by LFN).  Returns the LFNs in input
        order.
        """
        specs = list(specs)

        def run():
            span = self._root_span("gdmp:publish-set", count=len(specs))
            try:
                files = []
                stats = []
                for spec in specs:
                    stored = self.storage.fs.stat(spec["path"])
                    stats.append(stored)
                    files.append(
                        {
                            "size": stored.size,
                            "modified": stored.created_at,
                            "crc": stored.crc,
                            "lfn": spec.get("lfn"),
                            "attributes": spec.get("attributes", {}),
                        }
                    )
                lfns = []
                if specs:
                    lfns = yield self.catalog.publish_bulk(self.site, files)
                    per_subscriber: dict[str, list[str]] = {}
                    attrs_by_lfn: dict[str, dict] = {}
                    for spec, stored, lfn in zip(specs, stats, lfns):
                        self.server.record_held(lfn, spec["path"])
                        self.monitor.count("published")
                        file_attrs = {
                            "lfn": lfn,
                            "size": f"{stored.size:.0f}",
                            **{
                                k: str(v)
                                for k, v in spec.get("attributes", {}).items()
                            },
                        }
                        attrs_by_lfn[lfn] = file_attrs
                        for subscriber in self.server.subscribers_for(file_attrs):
                            per_subscriber.setdefault(subscriber, []).append(lfn)
                    # one notification per subscriber for the whole set
                    for subscriber in sorted(per_subscriber):
                        matched = per_subscriber[subscriber]
                        yield self.rpc.call(
                            subscriber,
                            "notify",
                            {
                                "producer": self.site,
                                "lfns": matched,
                                "attributes": {
                                    lfn: attrs_by_lfn[lfn] for lfn in matched
                                },
                            },
                        )
            except BaseException as exc:
                if span is not None:
                    self.tracelog.finish(span, "error", detail=str(exc))
                raise
            if span is not None:
                self.tracelog.finish(span, "ok")
            return lfns

        return self.sim.spawn(run(), name=f"gdmp-publish-set x{len(specs)}")

    def replicate_consistent(self, lfn: str, policy, **kwargs) -> Process:
        """Replicate ``lfn`` under a consistency policy (§2.2): the policy
        expands the request to the set of associated files that must travel
        together; already-held members are skipped.  Returns the list of
        :class:`ReplicationReport` (dependencies first)."""

        def run():
            reports = []
            for member in policy.replication_set(lfn):
                if member in self.server.held:
                    continue
                report = yield self.replicate(member, **kwargs)
                reports.append(report)
            return reports

        return self.sim.spawn(run(), name=f"gdmp-replicate-consistent {lfn}")

    def delete_replica(self, lfn: str) -> Process:
        """Reliably delete this site's replica of ``lfn`` (§3.1's replica
        management triad: creation, deletion, management).

        Catalog-first ordering: the replica is deregistered before the
        bytes are freed, so no window exists in which the catalog
        advertises a replica that is already gone.  Pinned files (serving
        an in-flight transfer) are refused.
        """

        def run():
            path = self.server.path_of(lfn)
            if self.storage.pool.pin_count(path) > 0:
                raise GdmpError(
                    f"{lfn!r} is pinned (serving a transfer); retry later"
                )
            detached = False
            stored = self.storage.fs.stat(path)
            yield self.catalog.remove_replica(lfn, self.site)
            if self.site_runtime is not None and hasattr(
                stored.payload, "iter_objects"
            ):
                federation = self.site_runtime.federation
                if federation.is_attached(stored.payload.name):
                    federation.detach(stored.payload.name)
                    detached = True
            self.storage.fs.delete(path)
            del self.server.held[lfn]
            self.monitor.count("replicas_deleted")
            return {"lfn": lfn, "freed_bytes": stored.size,
                    "detached": detached}

        return self.sim.spawn(run(), name=f"gdmp-delete {lfn}")

    def replicate_missing_from(self, producer: str) -> Process:
        """Failure recovery: diff the producer's catalog against local
        holdings and fetch everything missing (§4.1's recovery use case)."""

        def run():
            remote = yield self.get_remote_catalog(producer)
            missing = sorted(
                lfn for lfn in remote if lfn not in self.server.held
            )
            # the whole recovery set travels as one transfer set: two
            # catalog envelopes instead of two per file
            reports = yield self.replicate_set(missing, prefer_site=producer)
            return reports

        return self.sim.spawn(run(), name=f"gdmp-recover-from {producer}")
