"""File-type pre/post-processing plugins.

§4.1: "successfully replicating a file from one storage location to another
one consists of the following steps: pre-processing ... actual file transfer
... post-processing ... insert the file entry into a replica catalog."  The
pre/post steps "are specific to the file formats": for Objectivity, the
destination federation must know the schema before the transfer, and the
arrived file must be attached to the local federation afterwards.  GDMP 2.0
"has been extended to handle file replication independent of the file
format" — this registry is that extension point (flat files and "Oracle
files" are the other formats the paper names).
"""

from __future__ import annotations

from typing import Protocol

from repro.gdmp.request_manager import GdmpError
from repro.objectdb.database import DatabaseFile
from repro.objectdb.federation import Federation, FederationError
from repro.storage.filesystem import StoredFile

__all__ = [
    "FileTypePlugin",
    "FlatFilePlugin",
    "ObjectivityPlugin",
    "PluginRegistry",
]


class FileTypePlugin(Protocol):
    """Pre/post hooks around a file transfer.  Both are simulation
    coroutines (they may perform timed work or remote calls)."""

    file_type: str

    def pre_process(self, site, info) -> object:
        """Prepare the destination site before the transfer (coroutine)."""
        ...

    def post_process(self, site, stored: StoredFile) -> object:
        """Integrate the arrived file at the destination (coroutine)."""
        ...


class FlatFilePlugin:
    """Format-independent replication: both steps are no-ops (§4.1: the
    pre-processing step "might even be skipped in certain cases")."""

    file_type = "flat"

    def pre_process(self, site, info):
        """No preparation needed for flat files."""
        return None
        yield  # pragma: no cover - generator marker

    def post_process(self, site, stored: StoredFile):
        """No integration needed for flat files."""
        return None
        yield  # pragma: no cover


class ObjectivityPlugin:
    """Objectivity database files.

    * pre-processing: make sure the destination federation exists and knows
      the schema (object type names) the incoming file uses — carried in the
      logical file's ``schema`` attribute;
    * post-processing: attach the arrived database file to the local
      federation, inserting it into Objectivity's internal file catalog.
    """

    file_type = "objectivity"
    #: simulated cost of an attach (catalog page updates, lock acquisition)
    ATTACH_TIME = 0.2
    SCHEMA_IMPORT_TIME = 0.5

    def pre_process(self, site, info):
        """Import any missing schema types named in the file's metadata."""
        federation: Federation = site.federation
        schema_attr = ""
        if info is not None:
            schema_attr = info.attributes.get("schema", "")
        new_types = [
            t for t in schema_attr.split(";") if t and not federation.knows_type(t)
        ]
        if new_types:
            yield site.sim.timeout(self.SCHEMA_IMPORT_TIME)
            for type_name in new_types:
                federation.declare_type(type_name)
        return len(new_types)

    def post_process(self, site, stored: StoredFile):
        """Attach the arrived database file to the local federation."""
        db = stored.payload
        if not isinstance(db, DatabaseFile):
            raise GdmpError(
                f"{stored.path!r} is marked objectivity but carries no database"
            )
        yield site.sim.timeout(self.ATTACH_TIME)
        try:
            site.federation.attach(db)
        except FederationError as exc:
            raise GdmpError(f"attach failed: {exc}") from exc
        return db.name


class IndexFilePlugin(FlatFilePlugin):
    """§5.2 index files: structurally flat, but tagged so consumers can
    recognize them (the index service validates the payload itself)."""

    file_type = "object-index"


class OraclePlugin:
    """Oracle data files (§4.1 names them as a target format).

    * pre-processing: run the schema DDL named in the file's ``ddl``
      attribute against the destination's (simulated) instance — a timed
      step per statement;
    * post-processing: plug the arrived datafile into the local tablespace
      registry (transportable-tablespace import).
    """

    file_type = "oracle"
    DDL_STATEMENT_TIME = 0.05
    TABLESPACE_IMPORT_TIME = 0.5

    def pre_process(self, site, info):
        """Apply missing schema DDL at the destination instance."""
        registry = site.config.attrs.setdefault("oracle_schema", set())
        ddl = ""
        if info is not None:
            ddl = info.attributes.get("ddl", "")
        statements = [s for s in ddl.split(";") if s and s not in registry]
        if statements:
            yield site.sim.timeout(self.DDL_STATEMENT_TIME * len(statements))
            registry.update(statements)
        return len(statements)

    def post_process(self, site, stored: StoredFile):
        """Import the datafile as a transportable tablespace."""
        tablespaces = site.config.attrs.setdefault("oracle_tablespaces", {})
        name = stored.attrs.get("tablespace", stored.path.rsplit("/", 1)[-1])
        if name in tablespaces:
            raise GdmpError(f"tablespace {name!r} already imported")
        yield site.sim.timeout(self.TABLESPACE_IMPORT_TIME)
        tablespaces[name] = stored.path
        return name


class PluginRegistry:
    """file_type attribute -> plugin, with a flat-file fallback."""

    def __init__(self) -> None:
        self._plugins: dict[str, object] = {}
        self.register(FlatFilePlugin())
        self.register(ObjectivityPlugin())
        self.register(IndexFilePlugin())
        self.register(OraclePlugin())

    def register(self, plugin) -> None:
        """Register a plugin under its file_type."""
        self._plugins[plugin.file_type] = plugin

    def for_type(self, file_type: str):
        """Plugin registered for a file type; raises GdmpError when unknown."""
        try:
            return self._plugins[file_type]
        except KeyError:
            raise GdmpError(f"no plugin for file type {file_type!r}") from None

    def for_info(self, info) -> object:
        """Plugin for a logical file's catalog record (default: flat)."""
        file_type = "flat"
        if info is not None:
            file_type = info.attributes.get("filetype", "flat")
        return self.for_type(file_type)
