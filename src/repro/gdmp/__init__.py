"""GDMP — the Grid Data Management Pilot (the paper's contribution, §4).

The second-generation architecture: a GDMP server per site built from three
principal components behind a security layer (Figure 4):

* **Replica Catalog Service** (:mod:`~repro.gdmp.replica_service`) — the
  high-level catalog wrapper, hosted centrally on one LDAP server and
  accessed over the WAN;
* **Data Mover Service** (:mod:`~repro.gdmp.data_mover`) — GridFTP
  transfers with CRC end-to-end checks and restart-marker recovery;
* **Storage Manager Service** (:mod:`~repro.gdmp.storage_manager`) —
  stage-on-demand between the disk pool and the MSS via HRM.

Client requests flow through the **Request Manager**
(:mod:`~repro.gdmp.request_manager`), authenticated (GSI) and authorized
(gridmap) per request.  File-format specifics (Objectivity attach, schema
import) live in pre/post-processing plugins (:mod:`~repro.gdmp.plugins`).

:class:`~repro.gdmp.grid.DataGrid` wires a whole multi-site grid together;
:class:`~repro.gdmp.client.GdmpClient` exposes the paper's four client
services: subscribe, publish, get-catalog, and file replication.
"""

from repro.gdmp.client import GdmpClient, ReplicationReport
from repro.gdmp.config import GdmpConfig
from repro.gdmp.consistency import (
    AssociatedFilesPolicy,
    FileAssociationGraph,
    IndependentFilesPolicy,
)
from repro.gdmp.data_mover import DataMover, DataMoverError
from repro.gdmp.grid import DataGrid, GdmpSite
from repro.gdmp.plugins import (
    FlatFilePlugin,
    ObjectivityPlugin,
    PluginRegistry,
)
from repro.gdmp.replica_selection import choose_replica, rank_replicas
from repro.gdmp.replica_service import CatalogProxy, ReplicaCatalogService
from repro.gdmp.request_manager import (
    GdmpError,
    RemoteError,
    RequestClient,
    RequestServer,
    RequestTimeout,
)
from repro.gdmp.server import GdmpServer
from repro.gdmp.storage_manager import StorageManager

__all__ = [
    "AssociatedFilesPolicy",
    "CatalogProxy",
    "FileAssociationGraph",
    "IndependentFilesPolicy",
    "DataGrid",
    "DataMover",
    "DataMoverError",
    "FlatFilePlugin",
    "GdmpClient",
    "GdmpConfig",
    "GdmpError",
    "GdmpServer",
    "GdmpSite",
    "ObjectivityPlugin",
    "PluginRegistry",
    "RemoteError",
    "ReplicaCatalogService",
    "ReplicationReport",
    "RequestClient",
    "RequestServer",
    "RequestTimeout",
    "StorageManager",
    "choose_replica",
    "rank_replicas",
]
