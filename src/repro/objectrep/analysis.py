"""The §5.1 quantitative analysis: file vs object replication cost.

The paper's worked example: 10⁶ selected objects of 10 KB out of 10⁹
stored — object replication moves 10 GB; file replication would need "a set
of files with all the needed objects while this set is not larger than e.g.
20 GB", which "can very likely not be found at all" because "the a priori
probability that any existing file happens to contain more than 50% of the
selected objects is extremely low".

These functions compute, for a concrete event store and selection: the
bytes each strategy ships, the per-file selected fraction distribution, and
the analytic majority-selected probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.objectdb.database import FILE_HEADER_SIZE
from repro.objectdb.events import EventCatalog
from repro.objectdb.federation import Federation
from repro.objectdb.oid import OID

__all__ = [
    "file_replication_cost",
    "object_replication_cost",
    "probability_file_majority_selected",
    "ReplicationComparison",
    "compare_replication_strategies",
]


@dataclass(frozen=True)
class StrategyCost:
    """Bytes shipped and what they contain."""

    bytes_moved: float
    useful_bytes: float
    files_moved: int

    @property
    def efficiency(self) -> float:
        """Fraction of shipped bytes the analysis actually wanted."""
        return self.useful_bytes / self.bytes_moved if self.bytes_moved else 1.0


def file_replication_cost(
    federation: Federation,
    catalog: EventCatalog,
    selected_oids: Sequence[OID],
) -> StrategyCost:
    """Ship every *existing* file that holds at least one selected object."""
    grouped = catalog.files_for(selected_oids)
    total = 0.0
    useful = 0.0
    for file_name, oids in grouped.items():
        db = federation.database(file_name)
        total += db.size
        useful += sum(federation.resolve(oid).size for oid in oids)
    return StrategyCost(bytes_moved=total, useful_bytes=useful,
                        files_moved=len(grouped))


def object_replication_cost(
    federation: Federation,
    selected_oids: Sequence[OID],
    objects_per_new_file: int = 1000,
) -> StrategyCost:
    """Ship freshly written files holding exactly the selected objects."""
    useful = sum(federation.resolve(oid).size for oid in selected_oids)
    n_files = max(1, math.ceil(len(selected_oids) / objects_per_new_file))
    return StrategyCost(
        bytes_moved=useful + n_files * FILE_HEADER_SIZE,
        useful_bytes=useful,
        files_moved=n_files,
    )


def probability_file_majority_selected(
    objects_per_file: int,
    selection_fraction: float,
    threshold: float = 0.5,
) -> float:
    """P(an existing file has more than ``threshold`` of its objects
    selected), for an unbiased random selection: the binomial survival
    function P(X > threshold·n) with X ~ Binom(n, f)."""
    if objects_per_file <= 0:
        raise ValueError("objects_per_file must be positive")
    if not 0 <= selection_fraction <= 1:
        raise ValueError("selection_fraction must be in [0, 1]")
    from scipy.stats import binom

    cutoff = math.floor(threshold * objects_per_file)
    return float(binom.sf(cutoff, objects_per_file, selection_fraction))


@dataclass(frozen=True)
class ReplicationComparison:
    """Side-by-side result of the two strategies for one selection."""

    selection_fraction: float
    selected_objects: int
    file_strategy: StrategyCost
    object_strategy: StrategyCost
    majority_probability: float

    @property
    def winner(self) -> str:
        return (
            "object"
            if self.object_strategy.bytes_moved < self.file_strategy.bytes_moved
            else "file"
        )

    @property
    def ratio(self) -> float:
        """file bytes / object bytes — how much object replication saves."""
        if self.object_strategy.bytes_moved == 0:
            return float("inf")
        return self.file_strategy.bytes_moved / self.object_strategy.bytes_moved


def compare_replication_strategies(
    federation: Federation,
    catalog: EventCatalog,
    selected_events: Sequence[int],
    type_name: str,
    objects_per_new_file: int = 1000,
) -> ReplicationComparison:
    """Run the full §5.1 comparison for one selection."""
    selected_oids = catalog.oids_for(selected_events, type_name)
    n_events = len(catalog.event_numbers)
    fraction = len(selected_events) / n_events if n_events else 0.0
    per_file = catalog.objects_per_file(type_name)
    typical_file_objects = (
        round(sum(per_file.values()) / len(per_file)) if per_file else 1
    )
    return ReplicationComparison(
        selection_fraction=fraction,
        selected_objects=len(selected_oids),
        file_strategy=file_replication_cost(federation, catalog, selected_oids),
        object_strategy=object_replication_cost(
            federation, selected_oids, objects_per_new_file
        ),
        majority_probability=probability_file_majority_selected(
            typical_file_objects, fraction
        ),
    )
