"""The complete object replication cycle (§5.2) over GDMP sites.

    "- Objects that are needed by an application on the destination site
       are identified, as a group, before the application starts ...
     - The objects not yet present on the destination site are identified,
       and a source site, or combination of source sites, ... is found.
     - On the source site, the needed objects are copied into a new file or
       files, which are then sent to the destination site.  Object copying
       and file transport operations are pipelined ...
     - After having been transferred, the files are deleted on the source
       site(s).  The new files on the target site are first-class citizens
       in the Data Grid."

``pipelined=True`` overlaps copying chunk *k+1* with the WAN transfer of
chunk *k* (the EXP-OBJ2 ablation switches it off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.gdmp.grid import DataGrid, GdmpSite
from repro.gdmp.request_manager import GdmpError
from repro.objectrep.copier import CopyCostModel, ObjectCopier
from repro.objectrep.index import GlobalObjectIndex
from repro.simulation.kernel import Process
from repro.simulation.monitor import Monitor

__all__ = ["ObjectReplicationReport", "ObjectReplicator"]


@dataclass(frozen=True)
class ObjectReplicationReport:
    """Accounting for one object replication cycle."""

    keys_requested: int
    keys_already_present: int
    objects_moved: int
    useful_bytes: float
    wire_bytes: float          # useful bytes + per-file headers
    files_created: int
    duration: float
    copy_time: float           # total copier occupancy at the source(s)
    pipelined: bool
    sources: tuple[str, ...]

    @property
    def throughput(self) -> float:
        return self.wire_bytes / self.duration if self.duration > 0 else 0.0


class ObjectReplicator:
    """Runs object replication cycles into one destination site."""

    def __init__(
        self,
        grid: DataGrid,
        destination: str,
        index: GlobalObjectIndex,
        cost_model: Optional[CopyCostModel] = None,
    ):
        self.grid = grid
        self.dst = grid.site(destination)
        self.index = index
        self.cost_model = cost_model or CopyCostModel()
        self.monitor = Monitor()

    # -- the cycle -----------------------------------------------------------
    def replicate_objects(
        self,
        logical_keys: Sequence[str],
        chunk_objects: int = 1000,
        pipelined: bool = True,
        streams: Optional[int] = None,
        tcp_buffer: Optional[int] = None,
    ) -> Process:
        """Ensure every object named by ``logical_keys`` is present (and
        navigable) at the destination.  Returns an
        :class:`ObjectReplicationReport`."""
        sim = self.grid.sim
        dst = self.dst

        def run():
            started = sim.now
            requested = list(dict.fromkeys(logical_keys))
            # step 1+2: collective lookup, then diff against the destination
            missing = self.index.missing_at(dst.name, requested)
            located = self.index.locate_many(missing)
            unknown = [k for k, copies in located.items() if not copies]
            if unknown:
                raise GdmpError(
                    f"{len(unknown)} objects unknown to the global index, "
                    f"e.g. {unknown[:3]}"
                )
            # group by source site (first holder that is not the destination)
            by_source: dict[str, list] = {}
            for key, copies in located.items():
                entry = next(e for e in copies if e.site != dst.name)
                by_source.setdefault(entry.site, []).append(entry)

            copy_time = 0.0
            useful_bytes = 0.0
            wire_bytes = 0.0
            objects_moved = 0
            files_created = 0
            in_flight: list[Process] = []
            for source_name in sorted(by_source):
                entries = by_source[source_name]
                src = self.grid.site(source_name)
                copier = ObjectCopier(src.federation, self.cost_model)
                for i in range(0, len(entries), chunk_objects):
                    chunk = entries[i : i + chunk_objects]
                    # step 3a: the object copier writes a fresh file (the
                    # single copier at a source is sequential; §5.3)
                    copy_started = sim.now
                    result = yield copier.copy_timed(
                        sim, [e.oid for e in chunk],
                        f"objcopy.{sim.next_serial('objcopy-file'):06d}.db",
                    )
                    copy_time += sim.now - copy_started
                    useful_bytes += result.bytes_copied
                    wire_bytes += result.database.size
                    objects_moved += result.objects_copied
                    files_created += 1
                    transfer = sim.spawn(
                        self._ship_and_attach(src, result, streams, tcp_buffer),
                        name=f"object-ship {result.database.name}",
                    )
                    # step 3b: pipelining — next copy overlaps this transfer
                    if pipelined:
                        in_flight.append(transfer)
                    else:
                        yield transfer
            if in_flight:
                yield sim.all_of(in_flight)
            self.monitor.count("cycles")
            self.monitor.count("objects_moved", objects_moved)
            return ObjectReplicationReport(
                keys_requested=len(requested),
                keys_already_present=len(requested) - len(missing),
                objects_moved=objects_moved,
                useful_bytes=useful_bytes,
                wire_bytes=wire_bytes,
                files_created=files_created,
                duration=sim.now - started,
                copy_time=copy_time,
                pipelined=pipelined,
                sources=tuple(sorted(by_source)),
            )

        return sim.spawn(run(), name=f"object-replicate->{dst.name}")

    def _ship_and_attach(self, src: GdmpSite, copy_result,
                         streams: Optional[int] = None,
                         tcp_buffer: Optional[int] = None):
        """Move one freshly written file to the destination, attach it,
        publish it as a first-class grid file, update the index, and delete
        the source temporary."""
        sim = self.grid.sim
        dst = self.dst
        db = copy_result.database
        temp_path = f"/tmp/{db.name}"
        stored = src.fs.create(
            temp_path, db.size, now=sim.now, payload=db,
            content_id=f"{src.name}:objcopy:{db.name}",
        )
        src.pool.pin(temp_path)
        local_path = dst.config.storage_path(db.name)
        reservation = None
        try:
            reservation = dst.storage.prepare_incoming(local_path, stored.size)
            report = yield dst.mover.fetch(
                src_host=src.name,
                remote_path=temp_path,
                local_path=local_path,
                expected_crc=stored.crc,
                streams=streams or dst.config.parallel_streams,
                tcp_buffer=tcp_buffer or dst.config.tcp_buffer,
            )
            dst.storage.commit_incoming(report.stored, reservation)
        except BaseException:
            if reservation is not None:
                reservation.release()
            raise
        finally:
            # step 4: delete the temporary at the source
            src.pool.unpin(temp_path)
            src.fs.delete(temp_path)
        # attach at the destination (schema follows the objects)
        for obj in db.iter_objects():
            if not dst.federation.knows_type(obj.type_name):
                dst.federation.declare_type(obj.type_name)
        dst.federation.attach(db)
        # first-class citizenship: register in the GDMP replica catalog ...
        schema = ";".join(sorted({o.type_name for o in db.iter_objects()}))
        yield dst.client.publish(
            db.name, local_path, filetype="objectivity", schema=schema
        )
        # ... and in the global object index (a future extraction source)
        self.index.record_file(dst.name, db.name, db.iter_objects())
        return report
