"""The object copier tool.

§2.1: "on the source site, an object copier tool is used to copy the
objects that need to be replicated into a new file."  §5.3 quantifies its
cost: "it needs to process more file system I/O calls and context switches
per byte sent over the network" — the :class:`CopyCostModel` charges CPU
and double disk I/O (read source pages + write new file) per copied byte.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.objectdb.database import DatabaseFile
from repro.objectdb.federation import Federation
from repro.objectdb.objects import PersistentObject
from repro.objectdb.oid import OID
from repro.simulation.kernel import Process, Simulator

__all__ = ["CopyCostModel", "CopyResult", "ObjectCopier"]



@dataclass(frozen=True)
class CopyCostModel:
    """Source-server resources burned per copied byte.

    Defaults give the copier roughly 60 MB/s effective local throughput —
    plenty against a 45 Mbps WAN, scarce against the "very high-end network
    card" scenario of §5.3.
    """

    disk_read_rate: float = 200e6    # bytes/s off the source pages
    disk_write_rate: float = 150e6   # bytes/s into the new file
    cpu_rate: float = 300e6          # bytes/s of copy-loop CPU headroom
    per_object_overhead: float = 20e-6  # seconds: lookup + I/O call + switch

    def copy_time(self, nbytes: float, nobjects: int) -> float:
        """Seconds of source-server occupancy to copy the given volume."""
        streaming = nbytes / self.disk_read_rate + nbytes / self.disk_write_rate
        cpu = nbytes / self.cpu_rate
        return streaming + cpu + nobjects * self.per_object_overhead


@dataclass(frozen=True)
class CopyResult:
    """A freshly written database file of copied objects."""

    database: DatabaseFile
    oid_map: dict[OID, OID]          # source OID -> OID in the new file
    bytes_copied: float
    objects_copied: int
    closure_added: int               # objects pulled in by association closure


class ObjectCopier:
    """Copies selected objects out of a federation into new files."""

    def __init__(self, federation: Federation,
                 cost_model: Optional[CopyCostModel] = None):
        self.federation = federation
        self.cost = cost_model or CopyCostModel()
        # db_ids for copier-created files start high so they never collide
        # with production files (a real federation hands these out
        # transactionally).  Timed copies draw from the simulator's serial
        # sequence so repeated simulations allocate identical ids; the
        # untimed path falls back to a per-copier counter.
        self._local_db_ids = itertools.count(100_000)

    def collect(
        self, oids: Iterable[OID], include_closure: bool = False
    ) -> tuple[list[PersistentObject], int]:
        """Resolve the requested objects; with ``include_closure`` also pull
        in every association target (transitively) so navigation keeps
        working at the destination without the original files."""
        seen: dict[OID, PersistentObject] = {}
        frontier = list(dict.fromkeys(oids))
        requested = len(frontier)
        while frontier:
            oid = frontier.pop()
            if oid in seen:
                continue
            obj = self.federation.resolve(oid)
            seen[oid] = obj
            if include_closure:
                for target in obj.all_targets():
                    if target not in seen:
                        frontier.append(target)
        ordered = [seen[oid] for oid in sorted(seen)]
        return ordered, len(ordered) - requested

    def copy(
        self,
        oids: Iterable[OID],
        file_name: str,
        include_closure: bool = False,
        db_id: Optional[int] = None,
    ) -> CopyResult:
        """Copy objects into a new :class:`DatabaseFile` (untimed)."""
        objects, closure_added = self.collect(oids, include_closure)
        if not objects:
            raise ValueError("nothing to copy")
        if db_id is None:
            db_id = next(self._local_db_ids)
        new_db = DatabaseFile(db_id, file_name)
        container = new_db.create_container("copied")
        # first pass: allocate OIDs so cross-references can be remapped
        oid_map = {
            obj.oid: OID(new_db.db_id, container.container_id, slot)
            for slot, obj in enumerate(objects)
        }
        for obj in objects:
            container._next_slot = oid_map[obj.oid].slot
            container.add(obj.replicated_to(oid_map[obj.oid], remapped=oid_map))
        container._next_slot = len(objects)
        return CopyResult(
            database=new_db,
            oid_map=oid_map,
            bytes_copied=sum(o.size for o in objects),
            objects_copied=len(objects),
            closure_added=closure_added,
        )

    def copy_timed(
        self,
        sim: Simulator,
        oids: Iterable[OID],
        file_name: str,
        include_closure: bool = False,
    ) -> Process:
        """Timed variant: charges the §5.3 CPU/disk cost before returning
        the :class:`CopyResult`."""

        db_id = sim.next_serial("copied-db-id", 100_000)

        def run():
            result = self.copy(oids, file_name, include_closure, db_id=db_id)
            yield sim.timeout(
                self.cost.copy_time(result.bytes_copied, result.objects_copied)
            )
            return result

        return sim.spawn(run(), name=f"object-copier {file_name}")
