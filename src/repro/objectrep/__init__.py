"""Object replication (§5): copy objects, not files.

§5.1's argument: late-stage physics analysis selects a *sparse* subset of
objects (e.g. 10⁶ of 10⁹), so no existing file contains mostly-wanted
objects and file replication ships mostly dead weight.  The architecture
(§5.2) deliberately reuses the file machinery: an *object copier tool*
writes the selected objects into fresh files on the source site, the files
move with GridFTP/GDMP, and the temporaries are deleted at the source.

* :mod:`~repro.objectrep.copier` — the object copier tool (with a timed
  CPU/disk cost model);
* :mod:`~repro.objectrep.index` — the global object-location view kept in
  replicable index files;
* :mod:`~repro.objectrep.selection` — sparse HEP analysis selections;
* :mod:`~repro.objectrep.analysis` — the §5.1 file-vs-object cost model;
* :mod:`~repro.objectrep.replicator` — the complete pipelined replication
  cycle over GDMP sites;
* :mod:`~repro.objectrep.overhead` — the §5.3 server resource model.
"""

from repro.objectrep.analysis import (
    ReplicationComparison,
    compare_replication_strategies,
    file_replication_cost,
    object_replication_cost,
    probability_file_majority_selected,
)
from repro.objectrep.copier import CopyCostModel, ObjectCopier
from repro.objectrep.index import GlobalObjectIndex, IndexEntry
from repro.objectrep.overhead import ServerCostModel, ServerResources
from repro.objectrep.replicator import ObjectReplicationReport, ObjectReplicator
from repro.objectrep.selection import AnalysisChain, AnalysisStep, select_events

__all__ = [
    "AnalysisChain",
    "AnalysisStep",
    "CopyCostModel",
    "GlobalObjectIndex",
    "IndexEntry",
    "ObjectCopier",
    "ObjectReplicationReport",
    "ObjectReplicator",
    "ReplicationComparison",
    "ServerCostModel",
    "ServerResources",
    "compare_replication_strategies",
    "file_replication_cost",
    "object_replication_cost",
    "probability_file_majority_selected",
    "select_events",
]
