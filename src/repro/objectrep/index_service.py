"""Index files: replicating the global object view through GDMP (§5.2).

"A global view of which objects exist where is maintained in a set of
index files.  These files are themselves maintained and replicated on
demand using file-based replication by GDMP and Globus."

Each site keeps a local :class:`~repro.objectrep.index.GlobalObjectIndex`.
:class:`IndexService` snapshots it into an ordinary grid file (payload =
the serialized index) and publishes it; other sites replicate that file on
demand — through the full GDMP pipeline, CRC check included — and merge it
into their own view.
"""

from __future__ import annotations

from typing import Optional

from repro.gdmp.grid import GdmpSite
from repro.gdmp.request_manager import GdmpError
from repro.objectrep.index import GlobalObjectIndex
from repro.simulation.kernel import Process

__all__ = ["IndexService"]


class IndexService:
    """One site's interface to the replicated index-file set."""

    FILETYPE = "object-index"

    def __init__(self, site: GdmpSite, index: Optional[GlobalObjectIndex] = None):
        self.site = site
        self.index = index if index is not None else GlobalObjectIndex()
        self.latest_snapshot: Optional[str] = None

    # -- producing snapshots ---------------------------------------------------
    def publish_snapshot(self) -> Process:
        """Write the current index into an index file and publish it.
        Returns the snapshot's LFN."""
        sim = self.site.sim

        def run():
            serial = sim.next_serial("index-snapshot")
            lfn = f"index.{self.site.name}.{serial:06d}.idx"
            payload = self.index.to_index_payload()
            size = max(self.index.estimated_size, 96.0)
            path = self.site.config.storage_path(lfn)
            self.site.pool.ensure_space(size)
            self.site.fs.create(path, size, now=sim.now, payload=payload)
            yield self.site.client.publish(
                lfn, path, filetype=self.FILETYPE, entries=str(len(payload))
            )
            self.latest_snapshot = lfn
            return lfn

        return sim.spawn(run(), name=f"index-snapshot@{self.site.name}")

    # -- consuming snapshots -----------------------------------------------------
    def import_snapshot(self, lfn: str) -> Process:
        """Replicate the index file ``lfn`` (if not yet local) and merge it
        into this site's view.  Returns the number of entries merged."""
        sim = self.site.sim

        def run():
            if lfn not in self.site.server.held:
                yield self.site.client.replicate(lfn)
            stored = self.site.fs.stat(self.site.server.held[lfn])
            payload = stored.payload
            if not isinstance(payload, list):
                raise GdmpError(f"{lfn!r} does not carry an index payload")
            snapshot = GlobalObjectIndex.from_index_payload(payload)
            self.index.merge(snapshot)
            return len(payload)

        return sim.spawn(run(), name=f"index-import@{self.site.name}")

    def sync_from(self, other: "IndexService") -> Process:
        """Publish the peer's snapshot if needed, then import it."""
        sim = self.site.sim

        def run():
            lfn = other.latest_snapshot
            if lfn is None:
                lfn = yield other.publish_snapshot()
            merged = yield self.import_snapshot(lfn)
            return merged

        return sim.spawn(run(), name=f"index-sync {other.site.name}->"
                                     f"{self.site.name}")
