"""The §5.3 server resource model.

"an object replication server will need more CPU and disk I/O resources
[than] a file replication server dimensioned to saturate the same amount of
network bandwidth.  The running of the object copier tool means a
significant extra load on the operating system: it needs to process more
file system I/O calls and context switches per byte sent over the network.
Also the amount of traffic on the machine databus per network byte sent is
increased.  In situations where a single box needs to drive a very high-end
network card, a degradation in network traffic handling efficiency might
therefore be noticeable ... In that case, running the object copier tool on
a different box (connected via a fast disk server) might be necessary."

:class:`ServerResources` + :class:`ServerCostModel` turn that paragraph
into numbers: per network byte served, each mode charges CPU cycles, disk
bytes, and databus bytes; the achievable network rate is the binding
resource's limit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerResources", "ServerCostModel", "achievable_network_rate"]


@dataclass(frozen=True)
class ServerResources:
    """One server box (2001-era dual-CPU storage node by default)."""

    cpu_rate: float = 1.2e9       # useful cycles/s available to data serving
    disk_rate: float = 160e6      # bytes/s aggregate disk bandwidth
    bus_rate: float = 800e6       # bytes/s memory/databus budget
    nic_rate: float = 125e6       # bytes/s (a "very high-end" GbE card)


@dataclass(frozen=True)
class ServerCostModel:
    """Per-network-byte resource charges for one serving mode.

    File serving streams pages: ~1 disk byte and ~2 databus bytes (disk ->
    memory -> NIC) per network byte, few cycles.  Object serving adds the
    copier: the byte is read, copied into the new file, read back for the
    network — more I/O calls, more context switches, more bus crossings.
    """

    cpu_per_byte: float
    disk_per_byte: float
    bus_per_byte: float

    @classmethod
    def file_serving(cls) -> "ServerCostModel":
        return cls(cpu_per_byte=2.0, disk_per_byte=1.0, bus_per_byte=2.0)

    @classmethod
    def object_serving(cls) -> "ServerCostModel":
        # read source + write temp + read temp for send = 3 disk bytes;
        # each crossing doubles on the bus; copier loop burns extra cycles.
        return cls(cpu_per_byte=7.0, disk_per_byte=3.0, bus_per_byte=6.0)

    @classmethod
    def object_serving_split(cls) -> "ServerCostModel":
        """Copier on a separate box (fast disk server between them): the
        network-facing box sees file-serving costs again, plus a small
        coordination overhead."""
        return cls(cpu_per_byte=2.5, disk_per_byte=1.0, bus_per_byte=2.0)


def achievable_network_rate(
    resources: ServerResources, cost: ServerCostModel
) -> float:
    """The network rate (bytes/s) at which the first resource saturates."""
    return min(
        resources.nic_rate,
        resources.cpu_rate / cost.cpu_per_byte,
        resources.disk_rate / cost.disk_per_byte,
        resources.bus_rate / cost.bus_per_byte,
    )
