"""The global object-location view.

§5.2: "A global view of which objects exist where is maintained in a set of
index files.  These files are themselves maintained and replicated on
demand using file-based replication by GDMP and Globus. ... it is possible
to structure most data-intensive HEP applications in such a way that each
application run specifies up front exactly which set of objects are needed.
These objects can then be found in one single collective lookup operation."

Entries map a *logical object key* (``"<event>/<type>"``) to every
(site, file LFN, OID) replica.  The index serializes into index-file
payloads so it can ride GDMP file replication like any other file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.objectdb.oid import OID

__all__ = ["IndexEntry", "GlobalObjectIndex"]


@dataclass(frozen=True)
class IndexEntry:
    """One physical copy of a logical object."""

    logical_key: str
    site: str
    file_lfn: str
    oid: OID


class GlobalObjectIndex:
    """In-memory core of the index-file set."""

    def __init__(self) -> None:
        self._entries: dict[str, list[IndexEntry]] = {}
        self.lookups = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- updates ------------------------------------------------------------
    def record(self, logical_key: str, site: str, file_lfn: str, oid: OID) -> None:
        """Register one physical copy of a logical object."""
        entry = IndexEntry(logical_key, site, file_lfn, oid)
        copies = self._entries.setdefault(logical_key, [])
        if entry not in copies:
            copies.append(entry)

    def record_file(self, site: str, file_lfn: str, objects) -> None:
        """Index every object of a file placed at ``site``."""
        for obj in objects:
            self.record(obj.logical_key, site, file_lfn, obj.oid)

    def drop_file(self, site: str, file_lfn: str) -> None:
        """Remove all entries for a deleted file replica."""
        for key in list(self._entries):
            remaining = [
                e
                for e in self._entries[key]
                if not (e.site == site and e.file_lfn == file_lfn)
            ]
            if remaining:
                self._entries[key] = remaining
            else:
                del self._entries[key]

    # -- collective lookup ------------------------------------------------------
    def locate(self, logical_key: str) -> list[IndexEntry]:
        """All known copies of one logical object."""
        self.lookups += 1
        return list(self._entries.get(logical_key, []))

    def locate_many(self, keys: Iterable[str]) -> dict[str, list[IndexEntry]]:
        """The single collective lookup of §5.2 (counts as one operation)."""
        self.lookups += 1
        return {key: list(self._entries.get(key, [])) for key in keys}

    def missing_at(self, site: str, keys: Iterable[str]) -> list[str]:
        """Which of ``keys`` have no replica at ``site`` — step 2 of the
        object replication cycle."""
        located = self.locate_many(keys)
        return [
            key
            for key, copies in located.items()
            if not any(e.site == site for e in copies)
        ]

    def sites_holding(self, key: str) -> set[str]:
        """Sites with at least one copy of the object."""
        return {e.site for e in self._entries.get(key, [])}

    # -- index-file (de)serialization ----------------------------------------------
    def to_index_payload(self) -> list[tuple[str, str, str, str]]:
        """Flatten to the payload an index *file* carries through GDMP."""
        return [
            (e.logical_key, e.site, e.file_lfn, str(e.oid))
            for copies in self._entries.values()
            for e in copies
        ]

    @classmethod
    def from_index_payload(
        cls, payload: list[tuple[str, str, str, str]]
    ) -> "GlobalObjectIndex":
        index = cls()
        for key, site, lfn, oid_text in payload:
            index.record(key, site, lfn, OID.parse(oid_text))
        return index

    def merge(self, other: "GlobalObjectIndex") -> None:
        """Merge a replicated index file into the local view."""
        for copies in other._entries.values():
            for e in copies:
                self.record(e.logical_key, e.site, e.file_lfn, e.oid)

    @property
    def estimated_size(self) -> float:
        """Bytes an index file of this content would occupy (~96 B/entry:
        key, site, LFN, OID, framing)."""
        return 96.0 * sum(len(c) for c in self._entries.values())
