"""Sparse HEP analysis selections (§5.1's workload).

"one might start with a set of 10⁹ stored events ... and narrow this down
in a number of steps to a smaller set [of] 10⁴ events ... The subsequent
data analysis steps in such an effort will thus examine smaller and smaller
sets (10⁹ down to 10⁴) of larger and larger (100 byte to 10 MB) objects."

:class:`AnalysisChain` models exactly that funnel; each step keeps a random
fraction of the surviving events and reads a (larger) object type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["select_events", "AnalysisStep", "AnalysisChain"]


def select_events(
    event_numbers: Sequence[int],
    fraction: float,
    rng: np.random.Generator,
) -> list[int]:
    """A random sparse selection: each event survives independently with
    probability ``fraction`` (at least one event always survives, since an
    analysis step with an empty output would simply not be run)."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    events = np.asarray(event_numbers)
    mask = rng.random(len(events)) < fraction
    if not mask.any():
        mask[rng.integers(len(events))] = True
    return [int(e) for e in events[mask]]


@dataclass(frozen=True)
class AnalysisStep:
    """One funnel stage: keep ``keep_fraction`` of events, read ``type_name``."""

    name: str
    keep_fraction: float
    type_name: str

    def __post_init__(self) -> None:
        if not 0 < self.keep_fraction <= 1:
            raise ValueError(f"{self.name}: keep_fraction must be in (0, 1]")


class AnalysisChain:
    """A multi-step selection funnel over an event population."""

    #: The canonical funnel: tag skim, AOD selection, ESD studies of the
    #: final candidates — fractions scaled from the paper's 10⁹ -> 10⁴ story.
    DEFAULT_STEPS = (
        AnalysisStep("tag-skim", 0.10, "tag"),
        AnalysisStep("aod-selection", 0.10, "aod"),
        AnalysisStep("esd-candidates", 0.10, "esd"),
    )

    def __init__(
        self,
        steps: Sequence[AnalysisStep] = DEFAULT_STEPS,
        seed: int = 0,
    ):
        if not steps:
            raise ValueError("an analysis chain needs at least one step")
        self.steps = tuple(steps)
        self.rng = np.random.Generator(np.random.PCG64(seed))

    def run(self, event_numbers: Sequence[int]) -> list[tuple[AnalysisStep, list[int]]]:
        """Apply the funnel; returns (step, surviving events) per stage."""
        surviving = list(event_numbers)
        stages = []
        for step in self.steps:
            surviving = select_events(surviving, step.keep_fraction, self.rng)
            stages.append((step, surviving))
        return stages

    def survivors(self, event_numbers: Sequence[int]) -> list[int]:
        """Event numbers surviving the whole funnel."""
        return self.run(event_numbers)[-1][1]
