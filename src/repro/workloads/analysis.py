"""Analysis workload: a physicist's selection funnel plus object movement.

The §5.1 scenario end-to-end: run an :class:`AnalysisChain` over the event
store, object-replicate the surviving events' objects of the target type to
the physicist's home site, and read them there — reporting what moved, how
long it took, and what file replication would have shipped instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gdmp.grid import DataGrid
from repro.objectdb.events import EventCatalog
from repro.objectdb.persistency import ObjectReader
from repro.objectrep.analysis import compare_replication_strategies
from repro.objectrep.index import GlobalObjectIndex
from repro.objectrep.replicator import ObjectReplicator
from repro.objectrep.selection import AnalysisChain
from repro.simulation.kernel import Process

__all__ = ["AnalysisSessionReport", "AnalysisSession"]


@dataclass(frozen=True)
class AnalysisSessionReport:
    """What one analysis session did and cost."""

    home_site: str
    surviving_events: int
    objects_moved: int
    wire_bytes: float
    file_replication_bytes: float   # the §5.1 counterfactual
    duration: float
    pages_read_locally: int

    @property
    def saving(self) -> float:
        """file-replication bytes / object-replication bytes."""
        return (
            self.file_replication_bytes / self.wire_bytes
            if self.wire_bytes
            else float("inf")
        )


class AnalysisSession:
    """One physicist, one funnel, one object replication cycle."""

    def __init__(
        self,
        grid: DataGrid,
        home_site: str,
        store_site: str,
        catalog: EventCatalog,
        index: GlobalObjectIndex,
        chain: AnalysisChain | None = None,
        target_type: str = "aod",
        tags=None,
        cuts=None,
    ):
        self.grid = grid
        self.home = grid.site(home_site)
        self.store = grid.site(store_site)
        self.catalog = catalog
        self.index = index
        self.chain = chain or AnalysisChain()
        self.target_type = target_type
        #: optional physics selection: a TagDatabase plus cut strings; when
        #: given, the funnel is tag cuts instead of the random chain
        self.tags = tags
        self.cuts = cuts

    def _select(self) -> list[int]:
        events = self.catalog.event_numbers
        if self.tags is not None and self.cuts:
            passing = set(self.tags.select(self.cuts))
            return [e for e in events if e in passing]
        return self.chain.survivors(events)

    def start(self, chunk_objects: int = 500) -> Process:
        """Run the session; returns an AnalysisSessionReport."""
        sim = self.grid.sim

        def run():
            started = sim.now
            survivors = self._select()
            comparison = compare_replication_strategies(
                self.store.federation, self.catalog, survivors, self.target_type
            )
            keys = [f"{event}/{self.target_type}" for event in survivors]
            replicator = ObjectReplicator(self.grid, self.home.name, self.index)
            report = yield replicator.replicate_objects(
                keys, chunk_objects=chunk_objects, pipelined=True
            )
            # the physicist now reads every replicated object locally
            reader = ObjectReader(self.home.federation)
            for key in keys:
                obj = self.home.federation.find_by_key(key)
                reader.read(obj.oid)
            return AnalysisSessionReport(
                home_site=self.home.name,
                surviving_events=len(survivors),
                objects_moved=report.objects_moved,
                wire_bytes=report.wire_bytes,
                file_replication_bytes=comparison.file_strategy.bytes_moved,
                duration=sim.now - started,
                pages_read_locally=reader.page_reads,
            )

        return sim.spawn(run(), name=f"analysis@{self.home.name}")
