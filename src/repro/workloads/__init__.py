"""Workload generators shared by examples and benchmarks.

Two workload families from the paper's application domain (§2.1, §5.1):

* :mod:`~repro.workloads.production` — a detector/reconstruction production
  run: a site periodically creates Objectivity database files, publishes
  them to its subscribers, and archives them to its MSS;
* :mod:`~repro.workloads.analysis` — a physicist's analysis session: run a
  selection funnel over the event store, object-replicate the surviving
  objects to the home site, and read them there.
"""

from repro.workloads.analysis import AnalysisSession, AnalysisSessionReport
from repro.workloads.production import ProductionRun, ProductionReport

__all__ = [
    "AnalysisSession",
    "AnalysisSessionReport",
    "ProductionReport",
    "ProductionRun",
]
