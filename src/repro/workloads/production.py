"""Production workload: a site producing and publishing database files.

Models the §4.1 producer role: "A site produces a set of files locally and
another site wants to obtain replicas of these files."  File sizes follow a
log-normal distribution around the configured mean (production files vary
with luminosity and event counts); each published file optionally migrates
to the site's MSS, leaving the disk-pool copy as the serving cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gdmp.grid import GdmpSite
from repro.netsim.units import MB
from repro.objectdb import DatabaseFile
from repro.simulation.kernel import Process

__all__ = ["ProductionReport", "ProductionRun"]


@dataclass(frozen=True)
class ProductionReport:
    """Outcome of one production run."""

    site: str
    lfns: tuple[str, ...]
    total_bytes: float
    duration: float
    archived: int


class ProductionRun:
    """A timed sequence of produce/publish/(archive) cycles at one site."""

    def __init__(
        self,
        site: GdmpSite,
        n_files: int = 5,
        mean_file_size: float = 20 * MB,
        interval: float = 60.0,
        objects_per_file: int = 100,
        run_name: str = "run",
        archive: bool = False,
        seed: int = 0,
    ):
        if n_files < 1:
            raise ValueError("n_files must be >= 1")
        if mean_file_size <= 0 or interval < 0:
            raise ValueError("invalid size/interval")
        self.site = site
        self.n_files = n_files
        self.mean_file_size = mean_file_size
        self.interval = interval
        self.objects_per_file = objects_per_file
        self.run_name = run_name
        self.archive = archive and site.mss is not None
        self.rng = np.random.Generator(np.random.PCG64(seed))

    def _make_database(self, index: int, size: float) -> DatabaseFile:
        # db_ids are a per-simulator serial (not a module global), so
        # back-to-back runs in one process hand out identical ids
        db = DatabaseFile(
            self.site.sim.next_serial("production-db-id", 10_000),
            f"{self.run_name}.{index:04d}.db",
        )
        container = db.create_container("digis")
        object_size = size / self.objects_per_file
        for i in range(self.objects_per_file):
            db.new_object(container, "digi", object_size,
                          f"{db.name}/{i}/digi")
        return db

    def start(self) -> Process:
        """Run the production; returns a :class:`ProductionReport`."""
        sim = self.site.sim
        site = self.site

        def run():
            started = sim.now
            site.federation.declare_type("digi")
            lfns = []
            total = 0.0
            archived = 0
            for index in range(self.n_files):
                # log-normal spread around the mean (sigma=0.3)
                size = float(
                    self.mean_file_size
                    * self.rng.lognormal(mean=-0.045, sigma=0.3)
                )
                db = self._make_database(index, size)
                yield site.client.produce_and_publish(
                    db.name,
                    db.size,
                    payload=db,
                    filetype="objectivity",
                    schema="digi",
                )
                lfns.append(db.name)
                total += db.size
                if self.archive:
                    yield site.storage.archive(site.config.storage_path(db.name))
                    archived += 1
                if index < self.n_files - 1 and self.interval > 0:
                    yield sim.timeout(self.interval)
            return ProductionReport(
                site=site.name,
                lfns=tuple(lfns),
                total_bytes=total,
                duration=sim.now - started,
                archived=archived,
            )

        return sim.spawn(run(), name=f"production@{site.name}")
