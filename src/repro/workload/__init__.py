"""Claim-based workload engine: the replication path as a standing service.

The one-shot :meth:`GdmpClient.replicate` pipeline becomes a stage in a
long-lived data-management service: an open-loop arrival stream is
admitted (fair-share + token bucket) into a leased task queue on the
service bus, and standing picker/bundler/replicator/verifier components
claim, execute and audit the work — the operational shape described in
"Grid Data Management in Action", at the request volumes of the T0/T1
replication simulation studies.
"""

from repro.workload.admission import FairShareAdmission, TokenBucket
from repro.workload.arrivals import ArrivalGenerator, ArrivalProfile
from repro.workload.components import (
    Bundler,
    Picker,
    PipelineComponent,
    Replicator,
    Verifier,
)
from repro.workload.engine import WorkloadEngine
from repro.workload.queue import (
    Task,
    TaskQueue,
    TaskQueueProxy,
    TaskQueueService,
)

__all__ = [
    "ArrivalGenerator",
    "ArrivalProfile",
    "Bundler",
    "FairShareAdmission",
    "Picker",
    "PipelineComponent",
    "Replicator",
    "Task",
    "TaskQueue",
    "TaskQueueProxy",
    "TaskQueueService",
    "TokenBucket",
    "Verifier",
    "WorkloadEngine",
]
