"""Admission control: token-bucket rate limiting and per-VO fair share.

The open-loop arrival stream (the "Simulation Study for T0/T1 Data
Replication" shape) can momentarily exceed what the standing pipeline
sustains; two pure-arithmetic policies sit between arrivals and the
task queue:

* :class:`TokenBucket` — a classic leaky-token limiter evaluated lazily
  against the sim clock (no processes, no events): ``refill`` happens
  arithmetically at each ``take``, so admission cost is O(1) per batch
  regardless of the configured rate.
* :class:`FairShareAdmission` — deficit round-robin across virtual
  organisations.  Each VO has a weight and a bounded backlog; each
  drain round distributes quantum proportional to weight, so a VO with
  skewed huge demand cannot starve the small ones, and a VO with no
  backlog donates its slice to the others within the same round.

Both are deterministic by construction: no randomness, dict iteration
over sorted VO names, state advanced only by explicit calls under the
sim clock.  The fairness tests pin the drain order per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TokenBucket", "FairShareAdmission", "VOQueueStats"]


class TokenBucket:
    """Token-bucket rate limiter on the sim clock, evaluated lazily.

    ``rate`` tokens accrue per sim-second up to ``capacity``; ``take(n)``
    grants min(n, available) tokens.  All state updates happen inside
    ``take``/``available`` from the supplied current time, so the bucket
    never schedules anything.
    """

    def __init__(self, rate: float, capacity: float, *,
                 initial: Optional[float] = None):
        if rate <= 0 or capacity <= 0:
            raise ValueError("token bucket rate and capacity must be > 0")
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity if initial is None else min(initial, capacity)
        self._last = 0.0
        self.granted = 0
        self.refused = 0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(
                self.capacity, self.tokens + (now - self._last) * self.rate
            )
            self._last = now

    def available(self, now: float) -> float:
        """Tokens available at ``now`` (refills first)."""
        self._refill(now)
        return self.tokens

    def take(self, now: float, n: int = 1) -> int:
        """Grant up to ``n`` whole tokens at sim time ``now``; returns how
        many were granted (the rest are the caller's to shed or defer)."""
        self._refill(now)
        grant = min(int(n), int(self.tokens))
        if grant > 0:
            self.tokens -= grant
            self.granted += grant
        self.refused += int(n) - grant
        return grant


@dataclass
class VOQueueStats:
    """Per-VO admission accounting."""

    offered: int = 0     # requests that arrived for this VO
    admitted: int = 0    # requests released to the pipeline
    shed: int = 0        # requests dropped at the backlog cap
    backlog_peak: int = 0


class FairShareAdmission:
    """Deficit round-robin admission across virtual organisations.

    Arrivals are ``offer``-ed into per-VO backlogs (bounded by
    ``max_backlog``; overflow is shed and counted — an open-loop source
    does not wait).  ``drain(budget)`` releases up to ``budget`` requests
    using deficit round-robin: each round credits every backlogged VO
    ``quantum * weight`` deficit, then releases floor(deficit) requests
    from VOs in sorted-name order.  Weighted shares emerge over rounds
    while every VO with backlog is guaranteed progress each round —
    starvation-free regardless of how skewed the offered load is.
    """

    def __init__(self, weights: dict[str, float], *,
                 quantum: float = 4.0, max_backlog: int = 100_000):
        if not weights:
            raise ValueError("fair-share admission needs at least one VO")
        if any(w <= 0 for w in weights.values()):
            raise ValueError("VO weights must be > 0")
        self.weights = dict(sorted(weights.items()))
        self.quantum = quantum
        self.max_backlog = max_backlog
        self._backlog: dict[str, int] = {vo: 0 for vo in self.weights}
        self._deficit: dict[str, float] = {vo: 0.0 for vo in self.weights}
        self.stats: dict[str, VOQueueStats] = {
            vo: VOQueueStats() for vo in self.weights
        }

    def offer(self, vo: str, n: int = 1) -> int:
        """Add ``n`` arrivals to ``vo``'s backlog; returns how many were
        accepted (the rest shed at the cap)."""
        stats = self.stats[vo]
        stats.offered += n
        room = self.max_backlog - self._backlog[vo]
        accepted = min(n, max(0, room))
        self._backlog[vo] += accepted
        stats.shed += n - accepted
        stats.backlog_peak = max(stats.backlog_peak, self._backlog[vo])
        return accepted

    def backlog(self, vo: Optional[str] = None) -> int:
        """Backlog of one VO, or the total."""
        if vo is not None:
            return self._backlog[vo]
        return sum(self._backlog.values())

    def drain(self, budget: int) -> list[tuple[str, int]]:
        """Release up to ``budget`` requests, deficit round-robin.

        Returns ``[(vo, count), ...]`` in release order (sorted VO name
        within each round) — the deterministic drain order the pipeline
        submits tasks in.
        """
        released: list[tuple[str, int]] = []
        remaining = int(budget)
        while remaining > 0 and any(self._backlog.values()):
            progressed = False
            for vo in self.weights:                  # sorted at __init__
                if remaining <= 0:
                    break
                if self._backlog[vo] <= 0:
                    # an idle VO carries no deficit into the future:
                    # fair share is over *backlogged* VOs only
                    self._deficit[vo] = 0.0
                    continue
                self._deficit[vo] += self.quantum * self.weights[vo]
                take = min(
                    int(self._deficit[vo]), self._backlog[vo], remaining
                )
                # guarantee per-round progress even for tiny weights
                if take == 0 and self._deficit[vo] > 0:
                    take = min(1, self._backlog[vo], remaining)
                if take > 0:
                    self._deficit[vo] -= take
                    self._backlog[vo] -= take
                    self.stats[vo].admitted += take
                    remaining -= take
                    progressed = True
                    if released and released[-1][0] == vo:
                        released[-1] = (vo, released[-1][1] + take)
                    else:
                        released.append((vo, take))
            if not progressed:
                break
        return released
