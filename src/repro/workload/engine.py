"""The workload engine: queue + admission + standing pipeline on a grid.

:class:`WorkloadEngine` assembles the claim-based subsystem over an
existing :class:`~repro.gdmp.grid.DataGrid`:

* the :class:`~repro.workload.queue.TaskQueueService` is registered on
  the catalog host's request server — ``task.*`` operations live next to
  the ``catalog.*`` operations on the same authenticated endpoint (and,
  deliberately, are *not* swallowed by a ``catalog_blackhole`` fault,
  which filters on the ``catalog.`` operation prefix);
* every destination site runs one picker, bundler, replicator and
  verifier, each claiming over that site's request client — so claim
  traffic, lease renewals and completions ride the same WAN links,
  retry middleware and circuit breakers as the catalog traffic;
* one :class:`~repro.workload.arrivals.ArrivalGenerator` feeds the
  queue through fair-share admission and the token bucket.

The engine registers itself as ``grid.workload`` so the fault injector
can find components by name (``picker@anl`` …) for crash/restart
campaigns.  ``done`` fires when the generator has produced its full
request stream *and* the queue is terminal (every task done or dead, no
live claim) — the convergence point the experiments run to.
"""

from __future__ import annotations

from typing import Optional

from repro.workload.arrivals import ArrivalGenerator, ArrivalProfile
from repro.workload.components import (
    Bundler,
    Picker,
    PipelineComponent,
    Replicator,
    Verifier,
)
from repro.workload.queue import TaskQueue, TaskQueueProxy, TaskQueueService

__all__ = ["WorkloadEngine"]

COMPONENT_KINDS = (Picker, Bundler, Replicator, Verifier)


class WorkloadEngine:
    """The standing data-management service over one grid."""

    def __init__(self, grid, profile: ArrivalProfile, *,
                 lfns: list[str], total: int, rng,
                 dest_sites: Optional[list[str]] = None,
                 origin: Optional[str] = None,
                 lease: float = 60.0, poll: float = 5.0,
                 max_attempts: int = 6,
                 supervise_interval: float = 10.0):
        self.grid = grid
        self.sim = grid.sim
        self.profile = profile
        self.origin = origin or grid.catalog_host
        self.dest_sites = sorted(
            dest_sites
            if dest_sites is not None
            else [name for name in grid.sites if name != self.origin]
        )
        if not self.dest_sites:
            raise ValueError("workload engine needs at least one destination")
        self.supervise_interval = supervise_interval

        # the queue service, co-hosted with the catalog
        self.service = TaskQueueService(
            grid.sites[grid.catalog_host].request_server,
            metrics=grid.metrics,
            default_lease=lease,
            max_attempts=max_attempts,
        )
        self.proxies = {
            name: TaskQueueProxy(
                grid.sites[name].request_client, grid.catalog_host
            )
            for name in sorted(grid.sites)
        }

        # one full component set per destination site
        self.components: dict[str, PipelineComponent] = {}
        for name in self.dest_sites:
            site = grid.sites[name]
            for kind in COMPONENT_KINDS:
                component = kind(
                    self.sim, self.proxies[name], site,
                    poll=poll, lease=lease, metrics=grid.metrics,
                )
                self.components[component.name] = component

        # the arrival stream, admitted at the origin's proxy
        self.arrivals = ArrivalGenerator(
            self.sim, self.proxies[self.origin], profile,
            lfns=list(lfns), dest_sites=self.dest_sites,
            rng=rng, total=total, metrics=grid.metrics,
        )

        self.done = self.sim.event()
        self._started = False
        grid.workload = self   # fault-injector discovery point

    @property
    def queue(self) -> TaskQueue:
        """Direct (experiment-side) view of the queue state."""
        return self.service.queue

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Spawn the arrival generator, every component, and the
        supervisor that triggers ``done`` at convergence."""
        if self._started:
            raise RuntimeError("workload engine already started")
        self._started = True
        self.sim.spawn(self.arrivals.run(), name="workload-arrivals")
        for name in sorted(self.components):
            self.components[name].start()
        self.sim.spawn(self._supervise(), name="workload-supervisor")

    def component(self, name: str) -> PipelineComponent:
        """Look up a component by fault-target name (``picker@anl``)."""
        try:
            return self.components[name]
        except KeyError:
            raise KeyError(f"no workload component {name!r}") from None

    def _supervise(self):
        """Fire ``done`` once arrivals finished and the queue is terminal."""
        yield self.arrivals.done
        while True:
            if self.queue.terminal():
                break
            yield self.sim.timeout(self.supervise_interval)
        self.done.succeed()

    # -- reporting --------------------------------------------------------
    def fingerprint(self) -> str:
        """Canonical queue+admission state (the determinism gate input)."""
        lines = [self.queue.fingerprint()]
        lines.append(
            f"arrivals generated={self.arrivals.generated} "
            f"admitted={self.arrivals.admitted} ticks={self.arrivals.ticks} "
            f"picks={self.arrivals.pick_tasks}"
        )
        for vo, stats in sorted(self.arrivals.fairshare.stats.items()):
            lines.append(
                f"vo {vo} offered={stats.offered} admitted={stats.admitted} "
                f"shed={stats.shed} backlog_peak={stats.backlog_peak}"
            )
        bucket = self.arrivals.bucket
        lines.append(
            f"bucket granted={bucket.granted} refused={bucket.refused}"
        )
        for name in sorted(self.components):
            c = self.components[name]
            lines.append(
                f"component {name} claimed={c.claimed} "
                f"completed={c.completed} failed={c.failed_tasks} "
                f"errors={c.errors} crashes={c.crashes}"
            )
        return "\n".join(lines)

    def summary(self) -> dict:
        """Headline convergence numbers for reports."""
        counts = self.queue.counts()
        return {
            "generated": self.arrivals.generated,
            "admitted": self.arrivals.admitted,
            "shed": sum(
                s.shed for s in self.arrivals.fairshare.stats.values()
            ),
            "tasks": len(self.queue.tasks),
            "done": counts["done"],
            "dead": counts["dead"],
            "pending": counts["pending"],
            "claimed": counts["claimed"],
            "expired_leases": self.queue.stats.expired_leases,
            "coalesced": self.queue.stats.coalesced,
            "leaked_claims": len(self.queue.leaked_claims()),
        }
