"""Open-loop arrival generation for the workload engine.

Models the production-style request stream of the "Simulation Study for
T0/T1 Data Replication": users across virtual organisations ask for
logical files at their sites at a configured aggregate rate, optionally
modulated by a diurnal profile.  The stream is *open-loop* — arrivals do
not wait for the pipeline; they are offered to admission control and
either released (as batched ``pick`` tasks to the queue) or shed at the
per-VO backlog cap.

Scale discipline: one million requests must cost neither one million
events nor one million envelopes.  The generator ticks once per
``profile.tick`` sim-seconds; each tick draws per-VO Poisson arrival
*counts* and distributes them over (destination, file) categories with a
single multinomial draw, and each drain flushes per-destination demand
as one bulk ``pick`` task carrying an ``lfn → count`` multiplicity map.
All randomness comes from one named :class:`RandomStream`, so the whole
stream is a pure function of (seed, profile).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.workload.admission import FairShareAdmission, TokenBucket

__all__ = ["ArrivalProfile", "ArrivalGenerator"]


@dataclass(frozen=True)
class ArrivalProfile:
    """Shape of the request stream."""

    rate: float = 400.0                  # aggregate requests / sim-second
    mix: tuple = (("atlas", 3.0), ("cms", 2.0), ("alice", 1.0))
    tick: float = 30.0                   # admission tick, sim-seconds
    diurnal_amplitude: float = 0.0       # 0..1; 0 = flat rate
    diurnal_period: float = 3600.0
    popularity_alpha: float = 1.1        # Zipf exponent over the file set
    admit_rate: float = 600.0            # token-bucket refill, requests/s
    admit_burst: float = 20_000.0        # token-bucket capacity
    max_backlog: int = 200_000           # per-VO backlog cap (then shed)

    def shares(self) -> dict[str, float]:
        """Normalised VO shares, sorted by name."""
        total = sum(w for _, w in self.mix)
        return {vo: w / total for vo, w in sorted(self.mix)}

    def diurnal(self, now: float) -> float:
        """Rate multiplier at sim time ``now``."""
        if self.diurnal_amplitude <= 0.0:
            return 1.0
        return 1.0 + self.diurnal_amplitude * math.sin(
            2.0 * math.pi * now / self.diurnal_period
        )


class ArrivalGenerator:
    """The standing arrival/admission process.

    Each tick: draw per-VO Poisson arrivals, offer them to fair-share
    admission, take a token-bucket budget, drain deficit-round-robin,
    and flush the released demand to the queue as one ``pick`` task per
    destination site.  Runs until ``total`` requests have been generated
    *and* the admission backlog has drained (sheds excepted).
    """

    def __init__(self, sim, proxy, profile: ArrivalProfile, *,
                 lfns: list[str], dest_sites: list[str],
                 rng, total: int, metrics=None):
        self.sim = sim
        self.proxy = proxy
        self.profile = profile
        self.rng = rng
        self.total = int(total)
        self.metrics = metrics
        self.dest_sites = sorted(dest_sites)
        self.lfns = list(lfns)
        if not self.lfns or not self.dest_sites:
            raise ValueError("arrival generator needs files and destinations")

        self.bucket = TokenBucket(profile.admit_rate, profile.admit_burst)
        self.fairshare = FairShareAdmission(
            {vo: w for vo, w in profile.mix},
            max_backlog=profile.max_backlog,
        )
        # fixed (dest, lfn) category grid: destinations uniform, files
        # Zipf-popular by position in the supplied list
        pop = [1.0 / (rank + 1) ** profile.popularity_alpha
               for rank in range(len(self.lfns))]
        pop_total = sum(pop)
        self._categories = [
            (dest, lfn) for dest in self.dest_sites for lfn in self.lfns
        ]
        self._probs = [
            (p / pop_total) / len(self.dest_sites)
            for _ in self.dest_sites for p in pop
        ]
        #: per-VO FIFO of per-tick demand chunks ({(dest, lfn): count});
        #: fair-share releases counts, these remember what they were for
        self._chunks: dict[str, list[dict]] = {
            vo: [] for vo in self.fairshare.weights
        }
        self.generated = 0
        self.admitted = 0
        self.ticks = 0
        self.pick_tasks = 0
        self.done = sim.event()

    # -- accounting -------------------------------------------------------
    def _count(self, name: str, amount: float, **labels) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name, **labels).inc(amount)

    # -- one tick ---------------------------------------------------------
    def _draw_arrivals(self) -> None:
        """Poisson per-VO arrival counts for this tick, multinomially
        spread over the (dest, lfn) grid, offered to admission."""
        profile = self.profile
        lam = profile.rate * profile.diurnal(self.sim.now) * profile.tick
        for vo, share in profile.shares().items():
            if self.generated >= self.total:
                break
            n = int(self.rng.poisson(lam * share))
            n = min(n, self.total - self.generated)
            if n <= 0:
                continue
            self.generated += n
            self._count("workload.arrivals", n, vo=vo)
            accepted = self.fairshare.offer(vo, n)
            self._count("workload.arrivals_shed", n - accepted, vo=vo)
            if accepted <= 0:
                continue
            counts = self.rng.multinomial(accepted, self._probs)
            chunk = {
                self._categories[i]: int(c)
                for i, c in enumerate(counts) if c
            }
            self._chunks[vo].append(chunk)

    def _pop_demand(self, vo: str, n: int) -> dict:
        """Consume ``n`` released requests from ``vo``'s chunk FIFO, in
        arrival order (sorted categories within a chunk)."""
        demand: dict = {}
        fifo = self._chunks[vo]
        while n > 0 and fifo:
            chunk = fifo[0]
            for cat in sorted(chunk):
                if n <= 0:
                    break
                take = min(chunk[cat], n)
                chunk[cat] -= take
                if chunk[cat] == 0:
                    del chunk[cat]
                demand[cat] = demand.get(cat, 0) + take
                n -= take
            if not chunk:
                fifo.pop(0)
        return demand

    def _drain(self):
        """Token-bucket budget → fair-share drain → bulk pick tasks."""
        backlog = self.fairshare.backlog()
        if backlog == 0:
            return
        budget = self.bucket.take(self.sim.now, backlog)
        if budget <= 0:
            return
        released = self.fairshare.drain(budget)
        # merge all VOs' released demand into per-destination maps
        per_dest: dict[str, dict[str, int]] = {}
        for vo, count in released:
            self.admitted += count
            self._count("workload.admitted", count, vo=vo)
            for (dest, lfn), c in sorted(self._pop_demand(vo, count).items()):
                per_dest.setdefault(dest, {})
                per_dest[dest][lfn] = per_dest[dest].get(lfn, 0) + c
        if not per_dest:
            return
        tasks = []
        for dest in sorted(per_dest):
            serial = self.sim.next_serial("workload-pick")
            tasks.append({
                "type": "pick",
                "site": dest,
                "key": f"pick:{dest}:{serial}",
                "payload": {"demand": per_dest[dest]},
            })
        self.pick_tasks += len(tasks)
        yield self.proxy.submit_bulk(tasks)

    # -- the process body -------------------------------------------------
    def run(self):
        """Generator body: tick until generated == total and backlog == 0."""
        while True:
            if self.generated < self.total:
                self._draw_arrivals()
            yield from self._drain()
            self.ticks += 1
            if (self.generated >= self.total
                    and self.fairshare.backlog() == 0):
                break
            yield self.sim.timeout(self.profile.tick)
        self.done.succeed()
