"""The standing pipeline: picker → bundler → replicator → verifier.

Each component is a long-lived :class:`~repro.simulation.kernel.Process`
at one destination site, looping claim → work → complete against the
shared :mod:`~repro.workload.queue`.  The one-shot replication path is
now a *stage* of this pipeline: the replicator drives
``GdmpClient.replicate_set`` (ranked-replica failover, batched catalog
traffic) exactly as an interactive caller would, but under a claim lease
with heartbeat renewal.

Task flow (all tasks carry the destination site):

``pick``    batched user demand (``lfn → request count``) from the
            arrival generator.  The picker fans it out to keyed ``xfer``
            tasks — the key ``xfer:<lfn>@<site>`` coalesces however many
            requests (or picker re-claims after a crash) into one
            transfer obligation.
``xfer``    one file owed at one site.  The bundler claims several and
            packs them into a campaign.
``bundle``  a transfer campaign (list of lfns).  The replicator runs it
            through ``replicate_set(skip_held=True)`` and submits keyed
            ``verify`` tasks for the outcome.
``verify``  one replica to audit: bytes on disk, CRC and size against
            the catalog, location registered.  Keyed per (lfn, site), so
            re-transfers collapse into one audit.

Crash safety is leases + idempotence, not careful shutdown: a component
killed mid-task simply stops renewing; the lease expires and another
claimant re-runs the stage.  Every stage tolerates being run twice —
keyed submission coalesces, ``skip_held`` makes re-transfer a no-op,
catalog registration and the verifier's checks are idempotent — so the
pipeline is exactly-once in effect while only at-least-once in execution.
"""

from __future__ import annotations

from typing import Optional

from repro.gdmp.request_manager import GdmpError
from repro.services.bus import ServiceError
from repro.simulation.kernel import Interrupt, Process

__all__ = [
    "PipelineComponent",
    "Picker",
    "Bundler",
    "Replicator",
    "Verifier",
    "xfer_key",
    "verify_key",
]


def xfer_key(lfn: str, site: str) -> str:
    """Dedup key of the single transfer obligation for (lfn, site)."""
    return f"xfer:{lfn}@{site}"


def verify_key(lfn: str, site: str) -> str:
    """Dedup key of the single audit obligation for (lfn, site)."""
    return f"verify:{lfn}@{site}"


class PipelineComponent:
    """Base claim-loop: poll the queue for this component's task type.

    Subclasses implement ``work(task)`` as a generator; its failure modes
    split three ways — :class:`ServiceError` fails the task retryably
    (back to pending, another claim will re-run it),
    :class:`~repro.simulation.kernel.Interrupt` is a crash (the loop
    dies, leaving the claim to expire), anything else is a bug and
    propagates.
    """

    NAME = ""           # component kind (picker/bundler/...)
    TYPE = ""           # task type this component claims
    BATCH = 1           # tasks per claim

    def __init__(self, sim, proxy, site, *,
                 poll: float = 5.0, lease: float = 60.0,
                 metrics=None):
        self.sim = sim
        self.proxy = proxy
        self.site = site            # GdmpSite runtime
        self.poll = poll
        self.lease = lease
        self.metrics = metrics
        self.name = f"{self.NAME}@{site.name}"   # fault-injection target
        self.worker = self.name
        self.process: Optional[Process] = None
        self.crashes = 0
        self.claimed = 0
        self.completed = 0
        self.failed_tasks = 0
        self.errors = 0

    # -- lifecycle --------------------------------------------------------
    def start(self) -> Process:
        """(Re)spawn the claim loop."""
        self.process = self.sim.spawn(
            self._run(), name=f"workload-{self.name}"
        )
        return self.process

    def running(self) -> bool:
        return self.process is not None and self.process.is_alive

    def crash(self) -> bool:
        """Kill the claim loop mid-flight (fault injection); claims it
        holds are abandoned to lease expiry."""
        if not self.running():
            return False
        self.process.interrupt("component-crash")
        self.crashes += 1
        return True

    def _count(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "workload.component", component=self.TYPE,
                site=self.site.name, event=event,
            ).inc()

    # -- the claim loop ---------------------------------------------------
    def _run(self):
        try:
            while True:
                try:
                    tasks = yield self.proxy.claim(
                        self.worker, self.TYPE, self.site.name,
                        limit=self.BATCH, lease=self.lease,
                    )
                except ServiceError:
                    # queue unreachable (fault window): back off and retry
                    self.errors += 1
                    self._count("claim_error")
                    yield self.sim.timeout(self.poll)
                    continue
                if not tasks:
                    yield self.sim.timeout(self.poll)
                    continue
                self.claimed += len(tasks)
                yield from self._handle(tasks)
        except Interrupt:
            self._count("crashed")
            return

    def _handle(self, tasks: list[dict]):
        for task in tasks:
            try:
                result = yield from self.work(task)
            except ServiceError as exc:
                self.failed_tasks += 1
                self._count("task_failed")
                yield from self._settle(
                    self.proxy.fail(
                        task["task_id"], task["claim_token"],
                        error=str(exc), retryable=True,
                    )
                )
            else:
                self.completed += 1
                self._count("task_done")
                yield from self._settle(
                    self.proxy.complete(
                        task["task_id"], task["claim_token"], result=result
                    )
                )

    def _settle(self, call):
        """Report a verdict to the queue; a lost report is fine — the
        lease expires and the (idempotent) stage re-runs."""
        try:
            yield call
        except ServiceError:
            self.errors += 1
            self._count("settle_error")

    def work(self, task: dict):
        """Stage body; generator returning the task result."""
        raise NotImplementedError
        yield  # pragma: no cover


class Picker(PipelineComponent):
    """Demand → transfer obligations.

    A ``pick`` task carries a multiplicity map; each distinct file
    becomes one keyed ``xfer`` task (duplicate keys coalesce at the
    queue), so a million requests for a hundred files cost a hundred
    transfer tasks.
    """

    NAME = "picker"
    TYPE = "pick"
    BATCH = 4

    def work(self, task: dict):
        demand = task["payload"]["demand"]
        submit = [
            {
                "type": "xfer",
                "site": task["site"],
                "key": xfer_key(lfn, task["site"]),
                "payload": {"lfn": lfn, "requests": count},
            }
            for lfn, count in sorted(demand.items())
        ]
        if submit:
            yield self.proxy.submit_bulk(submit)
        return {"files": len(submit),
                "requests": sum(demand.values())}


class Bundler(PipelineComponent):
    """Transfer obligations → campaigns.

    Packs up to ``BATCH`` claimed ``xfer`` tasks into one ``bundle``
    task, reusing :meth:`GdmpClient.replicate_set`'s batched catalog
    envelopes downstream.  The bundle is submitted *before* the member
    ``xfer`` tasks are completed: a crash in between re-runs the members
    into a second bundle whose transfers are no-ops under ``skip_held``.
    """

    NAME = "bundler"
    TYPE = "xfer"
    BATCH = 8

    def _handle(self, tasks: list[dict]):
        lfns = sorted({t["payload"]["lfn"] for t in tasks})
        requests = sum(t["payload"].get("requests", 1) for t in tasks)
        serial = self.sim.next_serial("workload-bundle")
        try:
            yield self.proxy.submit(
                "bundle", self.site.name,
                {"lfns": lfns, "requests": requests},
                key=f"bundle:{self.site.name}:{serial}",
            )
        except ServiceError:
            # bundle never enqueued: leave the xfer claims to expire
            self.errors += 1
            self._count("task_failed")
            return
        for task in tasks:
            self.completed += 1
            self._count("task_done")
            yield from self._settle(
                self.proxy.complete(
                    task["task_id"], task["claim_token"],
                    result={"bundle": serial},
                )
            )


class Replicator(PipelineComponent):
    """Campaigns → replicas, via the existing §4.1 machinery.

    Runs ``replicate_set(skip_held=True)`` under a heartbeat that renews
    the claim lease at half-life while transfers are in flight, then
    submits one keyed ``verify`` task per file.
    """

    NAME = "replicator"
    TYPE = "bundle"
    BATCH = 1

    def work(self, task: dict):
        lfns = task["payload"]["lfns"]
        heartbeat = self.sim.spawn(
            self._heartbeat(task), name=f"workload-{self.name}-heartbeat"
        )
        try:
            reports = yield self.site.client.replicate_set(
                lfns, skip_held=True
            )
        finally:
            if heartbeat.is_alive:
                heartbeat.interrupt("work-finished")
        yield self.proxy.submit_bulk([
            {
                "type": "verify",
                "site": task["site"],
                "key": verify_key(lfn, task["site"]),
                "payload": {"lfn": lfn},
            }
            for lfn in lfns
        ])
        return {"transferred": len(reports), "skipped": len(lfns) - len(reports)}

    def _heartbeat(self, task: dict):
        try:
            while True:
                yield self.sim.timeout(self.lease / 2.0)
                try:
                    yield self.proxy.renew(
                        task["task_id"], task["claim_token"],
                        lease=self.lease,
                    )
                except ServiceError:
                    self.errors += 1
        except Interrupt:
            return


class Verifier(PipelineComponent):
    """Independent exactly-once audit of each produced replica.

    Checks, per file: locally held, bytes on disk, CRC and size equal to
    the catalog's record, and this site present in the catalog's
    location set.  Any discrepancy fails the task retryably — if the
    replica is genuinely missing (e.g. verification of a crashed
    campaign raced ahead of the re-transfer) a later attempt passes once
    the pipeline converges, and ``max_attempts`` turns a permanent
    discrepancy into a visible ``dead`` task.
    """

    NAME = "verifier"
    TYPE = "verify"
    BATCH = 8

    def work(self, task: dict):
        lfn = task["payload"]["lfn"]
        site = self.site
        info = yield site.client.catalog.info(lfn)
        path = site.server.held.get(lfn)
        if path is None or not site.fs.exists(path):
            raise GdmpError(f"{lfn!r} not held at {site.name}")
        stored = site.fs.stat(path)
        if stored.crc != info.crc or stored.size != info.size:
            raise GdmpError(
                f"{lfn!r} corrupt at {site.name}: "
                f"crc {stored.crc}!={info.crc} size {stored.size}!={info.size}"
            )
        locations = {loc["location"] for loc in info.locations}
        if site.name not in locations:
            raise GdmpError(f"{lfn!r} not registered for {site.name}")
        return {"crc": stored.crc, "size": stored.size}
