"""The claim-based work queue: leases, idempotent ops, per-state counters.

Production grids do not call ``replicate()``; they run standing
components that *claim* work from a shared queue, renew their claim
while working, and mark it complete — the LTA picker/bundler pattern
("Grid Data Management in Action" describes exactly this operational
shape).  This module provides the queue in three layers:

* :class:`Task` / :class:`TaskQueue` — the in-memory state machine.
  Tasks move ``pending → claimed → done | failed-pending-retry → dead``.
  A claim carries a *lease*: a deadline after which the task silently
  becomes claimable again, so a crashed worker's work is re-dispatched
  without any failure detector — lease expiry is evaluated lazily at
  claim/inspection time, purely from the sim clock.
* :class:`TaskQueueService` — the bus half: ``task.*`` operations
  registered on a :class:`~repro.gdmp.request_manager.RequestServer`
  (next to the ``catalog.*`` operations), every write idempotent under
  transport retries via the same ``txn`` replay scheme the catalog uses.
  Lease deadlines therefore compose with the resilience middleware: a
  retried ``claim`` replays the original claim instead of double-claiming,
  and a retried ``complete`` replays the stored verdict.
* :class:`TaskQueueProxy` — the site-side client: each method returns a
  :class:`~repro.simulation.kernel.Process` for one authenticated round
  trip, with envelope sizes scaled per item like the bulk catalog ops.

Completing or failing a task requires the *claim token* issued at claim
time.  A worker that lost its lease (the task was re-claimed by someone
else) gets ``stale`` back instead of corrupting the new owner's state —
the duplicated work itself must be idempotent one layer down, which the
replication stages are (``replicate_set(skip_held=True)``, idempotent
catalog registration, keyed task submission).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.gdmp.request_manager import (
    REQUEST_MESSAGE_SIZE,
    AuthenticatedRequest,
    GdmpError,
    RequestClient,
    RequestServer,
)
from repro.simulation.kernel import Process, Simulator

__all__ = ["Task", "TaskQueue", "TaskQueueService", "TaskQueueProxy"]

#: task lifecycle states (``failed`` is transient: a retryable failure
#: puts the task straight back to ``pending``; ``dead`` is terminal)
STATES = ("pending", "claimed", "done", "dead")

#: wire-size increment per task in a bulk envelope (submit/claim replies)
TASK_ITEM_SIZE = 128

#: histogram bounds for queue latencies (sim-seconds)
_AGE_BOUNDS = (
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0,
)


@dataclass
class Task:
    """One unit of pipeline work."""

    task_id: int
    type: str                      # pipeline stage that consumes it
    site: str                      # destination site the stage runs at
    payload: dict                  # stage-specific work description
    key: Optional[str] = None      # dedup key; resubmission coalesces
    state: str = "pending"
    attempts: int = 0              # claims so far (leases + failures)
    failures: int = 0              # explicit retryable fail() calls
    claimant: str = ""             # worker holding the live claim
    claim_token: int = 0           # current claim's token (0 = none)
    lease_deadline: float = 0.0
    submitted_at: float = 0.0
    first_claimed_at: Optional[float] = None
    claimed_at: float = 0.0
    finished_at: Optional[float] = None
    result: Any = None
    error: str = ""

    def public(self) -> dict:
        """The claim-reply view a worker receives."""
        return {
            "task_id": self.task_id,
            "type": self.type,
            "site": self.site,
            "payload": self.payload,
            "key": self.key,
            "attempts": self.attempts,
            "claim_token": self.claim_token,
            "lease_deadline": self.lease_deadline,
        }


@dataclass
class _QueueStats:
    submitted: int = 0
    coalesced: int = 0
    claims: int = 0
    completed: int = 0
    failed: int = 0
    dead: int = 0
    expired_leases: int = 0
    stale_ops: int = 0
    renews: int = 0


class TaskQueue:
    """The deterministic in-memory queue state machine.

    Claim order is strict FIFO by task id within a ``(type, site)``
    lane, which makes the drain order a pure function of the submission
    order — the workload fingerprint depends on it.
    """

    def __init__(self, sim: Simulator, *,
                 default_lease: float = 30.0,
                 max_attempts: int = 6):
        self.sim = sim
        self.default_lease = default_lease
        self.max_attempts = max_attempts
        self.tasks: dict[int, Task] = {}
        #: (type, site) -> FIFO of pending task ids
        self._pending: dict[tuple[str, str], list[int]] = {}
        #: claimed task ids, checked for lease expiry lazily
        self._claimed: set[int] = set()
        #: dedup key -> task id (live tasks only; done/dead keys stay
        #: recorded so a re-submitted key coalesces onto the finished task)
        self._by_key: dict[str, int] = {}
        self.stats = _QueueStats()

    # -- submission -------------------------------------------------------
    def submit(self, type: str, site: str, payload: dict,
               key: Optional[str] = None) -> int:
        """Enqueue one task; a duplicate ``key`` coalesces (returns the
        existing task's id) instead of enqueuing twice — this is what
        makes picker re-claims after a crash exactly-once."""
        if key is not None:
            existing = self._by_key.get(key)
            if existing is not None:
                self.stats.coalesced += 1
                return existing
        task_id = self.sim.next_serial("workload-task")
        task = Task(
            task_id=task_id, type=type, site=site, payload=payload,
            key=key, submitted_at=self.sim.now,
        )
        self.tasks[task_id] = task
        self._pending.setdefault((type, site), []).append(task_id)
        if key is not None:
            self._by_key[key] = task_id
        self.stats.submitted += 1
        return task_id

    # -- lease bookkeeping ------------------------------------------------
    def _expire_leases(self) -> int:
        """Return claimed-but-expired tasks to their pending lanes."""
        now = self.sim.now
        expired = [
            tid for tid in self._claimed
            if self.tasks[tid].lease_deadline <= now
        ]
        for tid in sorted(expired):
            task = self.tasks[tid]
            self._claimed.discard(tid)
            task.state = "pending"
            task.claimant = ""
            task.claim_token = 0
            self._pending.setdefault((task.type, task.site), []).append(tid)
            self.stats.expired_leases += 1
        return len(expired)

    # -- claiming ---------------------------------------------------------
    def claim(self, worker: str, type: str, site: str,
              limit: int = 1, lease: Optional[float] = None) -> list[Task]:
        """Hand up to ``limit`` pending tasks of one lane to ``worker``."""
        self._expire_leases()
        lane = self._pending.get((type, site))
        claimed: list[Task] = []
        lease = lease if lease is not None else self.default_lease
        while lane and len(claimed) < limit:
            tid = lane.pop(0)
            task = self.tasks[tid]
            task.state = "claimed"
            task.attempts += 1
            task.claimant = worker
            task.claim_token = self.sim.next_serial("workload-claim")
            task.claimed_at = self.sim.now
            if task.first_claimed_at is None:
                task.first_claimed_at = self.sim.now
            task.lease_deadline = self.sim.now + lease
            self._claimed.add(tid)
            claimed.append(task)
        if claimed:
            self.stats.claims += 1
        return claimed

    def _owned(self, task_id: int, token: int) -> Optional[Task]:
        """The task if ``token`` still owns it, else None (stale)."""
        task = self.tasks.get(task_id)
        if task is None or task.state != "claimed":
            return None
        if task.claim_token != token or task.lease_deadline <= self.sim.now:
            return None
        return task

    # -- claim-holder operations -----------------------------------------
    def renew(self, task_id: int, token: int,
              lease: Optional[float] = None) -> Optional[float]:
        """Extend a live claim's lease; None when the claim is stale."""
        task = self._owned(task_id, token)
        if task is None:
            self.stats.stale_ops += 1
            return None
        task.lease_deadline = self.sim.now + (
            lease if lease is not None else self.default_lease
        )
        self.stats.renews += 1
        return task.lease_deadline

    def complete(self, task_id: int, token: int, result: Any = None) -> bool:
        """Mark a claimed task done; False when the claim is stale."""
        task = self._owned(task_id, token)
        if task is None:
            self.stats.stale_ops += 1
            return False
        self._claimed.discard(task_id)
        task.state = "done"
        task.result = result
        task.finished_at = self.sim.now
        task.claimant = ""
        self.stats.completed += 1
        return True

    def fail(self, task_id: int, token: int, error: str = "",
             retryable: bool = True) -> Optional[str]:
        """Fail a claimed task: back to pending while attempts remain (and
        the failure is retryable), else dead.  Returns the resulting state,
        or None when the claim is stale."""
        task = self._owned(task_id, token)
        if task is None:
            self.stats.stale_ops += 1
            return None
        self._claimed.discard(task_id)
        task.error = error
        task.failures += 1
        task.claimant = ""
        task.claim_token = 0
        self.stats.failed += 1
        if retryable and task.attempts < self.max_attempts:
            task.state = "pending"
            self._pending.setdefault((task.type, task.site), []).append(task_id)
        else:
            task.state = "dead"
            task.finished_at = self.sim.now
            self.stats.dead += 1
        return task.state

    # -- inspection -------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Per-state task counts (lease expiry applied first)."""
        self._expire_leases()
        counts = {state: 0 for state in STATES}
        for task in self.tasks.values():
            counts[task.state] += 1
        return counts

    def depth(self, type: str, site: str) -> int:
        """Pending backlog of one lane."""
        self._expire_leases()
        return len(self._pending.get((type, site), ()))

    def terminal(self) -> bool:
        """True when no task is pending or claimed (leases expired first)."""
        self._expire_leases()
        if self._claimed:
            return False
        return all(not lane for lane in self._pending.values())

    def leaked_claims(self) -> list[int]:
        """Claimed task ids whose lease is still live (should be empty
        once the pipeline has shut down)."""
        self._expire_leases()
        return sorted(self._claimed)

    def fingerprint(self) -> str:
        """Canonical queue-state text: every task's terminal facts in id
        order plus the op counters.  Byte-identical across same-seed runs;
        diffed by the workload determinism gates."""
        lines = [
            f"queue tasks={len(self.tasks)} "
            + " ".join(
                f"{k}={v}" for k, v in sorted(vars(self.stats).items())
            )
        ]
        for tid in sorted(self.tasks):
            t = self.tasks[tid]
            lines.append(
                f"{tid} {t.type}@{t.site} {t.state} attempts={t.attempts} "
                f"failures={t.failures} key={t.key or '-'} "
                f"submitted={t.submitted_at:.6f} "
                f"finished={-1.0 if t.finished_at is None else t.finished_at:.6f}"
            )
        return "\n".join(lines)


class TaskQueueService:
    """``task.*`` operations hosted on a site's request server.

    Lives next to the ``catalog.*`` handlers on the same authenticated
    bus endpoint; every mutating operation accepts a client-minted
    ``txn`` and replays the stored result on retry, exactly like the
    catalog's write plumbing — so the retry middleware can safely
    re-issue a claim or completion whose reply was lost.
    """

    def __init__(self, server: RequestServer,
                 queue: Optional[TaskQueue] = None, *,
                 metrics=None,
                 default_lease: float = 30.0,
                 max_attempts: int = 6):
        self.queue = queue or TaskQueue(
            server.sim, default_lease=default_lease,
            max_attempts=max_attempts,
        )
        self.server = server
        self.metrics = metrics
        self._applied: dict[str, object] = {}
        for op in ("submit", "submit_bulk", "claim", "renew", "complete",
                   "fail", "counts"):
            server.register(f"task.{op}", getattr(self, f"_op_{op}"))
        if metrics is not None:
            metrics.add_collector(self._collect)

    # -- telemetry --------------------------------------------------------
    def _count(self, event: str, type: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "workload.tasks", event=event, type=type
            ).inc(amount)

    def _observe_age(self, name: str, type: str, age: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(
                f"workload.{name}", bounds=_AGE_BOUNDS, type=type
            ).observe(age)

    def _collect(self, registry) -> None:
        """Scrape queue depth per state into gauges at export time."""
        for state, value in sorted(self.queue.counts().items()):
            registry.gauge("workload.queue.depth", state=state).set(value)
        registry.gauge("workload.queue.expired_leases").set(
            self.queue.stats.expired_leases
        )
        registry.gauge("workload.queue.stale_ops").set(
            self.queue.stats.stale_ops
        )

    # -- txn replay plumbing ---------------------------------------------
    def _seen(self, payload) -> tuple[Optional[str], bool]:
        txn = payload.get("txn") if isinstance(payload, dict) else None
        if txn is not None and txn in self._applied:
            if self.metrics is not None:
                self.metrics.counter("workload.txn_replays").inc()
            return txn, True
        return txn, False

    # -- handlers ---------------------------------------------------------
    def _op_submit(self, request: AuthenticatedRequest):
        p = request.payload
        txn, seen = self._seen(p)
        if seen:
            return self._applied[txn]
        task_id = self.queue.submit(
            p["type"], p["site"], p.get("payload") or {}, key=p.get("key")
        )
        self._count("submitted", p["type"])
        if txn is not None:
            self._applied[txn] = task_id
        return task_id
        yield  # pragma: no cover - generator marker

    def _op_submit_bulk(self, request: AuthenticatedRequest):
        p = request.payload
        txn, seen = self._seen(p)
        if seen:
            return self._applied[txn]
        ids = []
        for item in p["tasks"]:
            ids.append(self.queue.submit(
                item["type"], item["site"], item.get("payload") or {},
                key=item.get("key"),
            ))
            self._count("submitted", item["type"])
        if txn is not None:
            self._applied[txn] = ids
        return ids
        yield  # pragma: no cover

    def _op_claim(self, request: AuthenticatedRequest):
        p = request.payload
        txn, seen = self._seen(p)
        if seen:
            return self._applied[txn]
        now = self.server.sim.now
        tasks = self.queue.claim(
            p["worker"], p["type"], p["site"],
            limit=p.get("limit", 1), lease=p.get("lease"),
        )
        for task in tasks:
            self._count("claimed", task.type)
            if task.first_claimed_at == now and task.attempts == 1:
                self._observe_age(
                    "claim_age", task.type, now - task.submitted_at
                )
        result = [task.public() for task in tasks]
        if txn is not None:
            self._applied[txn] = result
        return result
        yield  # pragma: no cover

    def _op_renew(self, request: AuthenticatedRequest):
        p = request.payload
        txn, seen = self._seen(p)
        if seen:
            return self._applied[txn]
        deadline = self.queue.renew(
            p["task_id"], p["claim_token"], lease=p.get("lease")
        )
        if txn is not None:
            self._applied[txn] = deadline
        return deadline
        yield  # pragma: no cover

    def _op_complete(self, request: AuthenticatedRequest):
        p = request.payload
        txn, seen = self._seen(p)
        if seen:
            return self._applied[txn]
        task = self.queue.tasks.get(p["task_id"])
        ok = self.queue.complete(
            p["task_id"], p["claim_token"], result=p.get("result")
        )
        if ok and task is not None:
            self._count("completed", task.type)
            self._observe_age(
                "stage_latency", task.type,
                self.server.sim.now - task.claimed_at,
            )
        elif task is not None:
            self._count("stale", task.type)
        if txn is not None:
            self._applied[txn] = ok
        return ok
        yield  # pragma: no cover

    def _op_fail(self, request: AuthenticatedRequest):
        p = request.payload
        txn, seen = self._seen(p)
        if seen:
            return self._applied[txn]
        task = self.queue.tasks.get(p["task_id"])
        state = self.queue.fail(
            p["task_id"], p["claim_token"],
            error=p.get("error", ""),
            retryable=p.get("retryable", True),
        )
        if task is not None:
            if state is None:
                self._count("stale", task.type)
            else:
                self._count("failed", task.type)
                if state == "dead":
                    self._count("dead", task.type)
        if txn is not None:
            self._applied[txn] = state
        return state
        yield  # pragma: no cover

    def _op_counts(self, request: AuthenticatedRequest):
        return self.queue.counts()
        yield  # pragma: no cover


class TaskQueueProxy:
    """Site-side client of the queue service (one RPC per method)."""

    def __init__(self, client: RequestClient, queue_host: str):
        self.client = client
        self.queue_host = queue_host

    def _txn(self) -> str:
        sim = self.client.sim
        return f"{self.client.host.name}:{sim.next_serial('workload-txn')}"

    def _call(self, operation: str, payload: dict,
              n_items: int = 0) -> Process:
        return self.client.call(
            self.queue_host,
            operation,
            payload,
            size=REQUEST_MESSAGE_SIZE + TASK_ITEM_SIZE * n_items,
        )

    def submit(self, type: str, site: str, payload: dict,
               key: Optional[str] = None) -> Process:
        return self._call("task.submit", {
            "type": type, "site": site, "payload": payload, "key": key,
            "txn": self._txn(),
        })

    def submit_bulk(self, tasks: list[dict]) -> Process:
        """Enqueue a batch in one envelope.  Each item: ``type``,
        ``site``, ``payload``, optional ``key``."""
        return self._call(
            "task.submit_bulk",
            {"tasks": list(tasks), "txn": self._txn()},
            n_items=len(tasks),
        )

    def claim(self, worker: str, type: str, site: str, *,
              limit: int = 1, lease: Optional[float] = None) -> Process:
        return self._call(
            "task.claim",
            {
                "worker": worker, "type": type, "site": site,
                "limit": limit, "lease": lease, "txn": self._txn(),
            },
            n_items=limit,
        )

    def renew(self, task_id: int, claim_token: int,
              lease: Optional[float] = None) -> Process:
        return self._call("task.renew", {
            "task_id": task_id, "claim_token": claim_token, "lease": lease,
            "txn": self._txn(),
        })

    def complete(self, task_id: int, claim_token: int,
                 result=None) -> Process:
        return self._call("task.complete", {
            "task_id": task_id, "claim_token": claim_token,
            "result": result, "txn": self._txn(),
        })

    def fail(self, task_id: int, claim_token: int, error: str = "",
             retryable: bool = True) -> Process:
        return self._call("task.fail", {
            "task_id": task_id, "claim_token": claim_token,
            "error": error, "retryable": retryable, "txn": self._txn(),
        })

    def counts(self) -> Process:
        return self._call("task.counts", {})
