"""The labelled metrics registry: the grid's one source of numbers.

The paper's GridFTP ships "integrated instrumentation, for monitoring
ongoing transfer performance", and the operational follow-ups (Stockinger
et al., *Grid Data Management in Action*) make clear that a production
grid lives or dies by uniform visibility into transfers, catalogs, and
storage.  :class:`MetricsRegistry` is the simulation-side answer: one
sim-time-aware registry per grid, holding four instrument kinds —

* :class:`Counter` — monotone accumulators (``bytes``, ``drops``);
* :class:`Gauge` — last-write-wins values (``occupancy``);
* :class:`Histogram` — fixed, deterministic bucket bounds (``latency``);
* :class:`TimeSeries` — time-weighted samples stamped with sim time
  (``queue depth``), whose mean weights each value by how long it held.

Every instrument supports label dimensions: ``registry.counter(
"gridftp.stream.bytes", host="cern", stream=3)`` names one child of the
``gridftp.stream.bytes`` family.  Children are identified by their sorted
label items, so the spelling order of keyword arguments never matters.

Determinism contract: instruments record *simulation* facts only (counts,
sim-time stamps); the registry never reads wall clocks or draws random
numbers, so two identical simulations produce byte-identical
:meth:`MetricsRegistry.snapshot` documents — the determinism gate diffs
them.  *Collectors* (callbacks registered with
:meth:`MetricsRegistry.add_collector`) let passive state (pool occupancy,
catalog cache counters) be scraped into gauges right before a snapshot or
export, Prometheus-style, keeping the owning hot paths untouched.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
]

#: Default histogram bounds for durations in simulated seconds: half-decade
#: steps from 1 ms to 1000 s.  Fixed and shared so latency histograms from
#: different subsystems are comparable (and deterministic across runs).
DEFAULT_LATENCY_BOUNDS = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
    300.0, 1000.0,
)

#: Default histogram bounds for sizes in bytes: decades from 1 KiB to 1 TiB.
DEFAULT_SIZE_BOUNDS = (
    1024.0, 1024.0 ** 2, 10 * 1024.0 ** 2, 100 * 1024.0 ** 2,
    1024.0 ** 3, 10 * 1024.0 ** 3, 100 * 1024.0 ** 3, 1024.0 ** 4,
)


def _label_key(labels: dict[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical child identity: sorted ``(key, str(value))`` items."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotone accumulator."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]):
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("labels", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...]):
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Counts of observations against fixed, deterministic bucket bounds.

    ``bounds`` are the *upper* edges of the finite buckets; an implicit
    +Inf bucket catches everything above the last bound.  An observation
    ``v`` lands in the first bucket with ``v <= bound`` (Prometheus ``le``
    semantics).  ``bucket_counts`` are per-bucket (non-cumulative); the
    Prometheus exporter accumulates them into cumulative ``le`` series.
    """

    __slots__ = ("labels", "bounds", "bucket_counts", "count", "total")

    def __init__(
        self,
        labels: tuple[tuple[str, str], ...],
        bounds: tuple[float, ...],
    ):
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class TimeSeries:
    """Sim-time-stamped samples of a stepwise-constant value.

    The registry stamps each :meth:`observe` with the current simulation
    time.  :meth:`time_average` weights each sample by how long it held —
    the right mean for occupancies and queue depths.
    """

    __slots__ = ("labels", "times", "values")

    def __init__(self, labels: tuple[tuple[str, str], ...]):
        self.labels = labels
        self.times: list[float] = []
        self.values: list[float] = []

    def _sample(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("samples must be time-ordered")
        self.times.append(time)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def time_average(self) -> float:
        """Mean of the step function: each value weighted by its duration
        (the final sample gets zero weight; a single sample is its own
        average)."""
        if not self.times:
            return 0.0
        if len(self.times) == 1:
            return self.values[0]
        total = 0.0
        for i in range(len(self.times) - 1):
            total += self.values[i] * (self.times[i + 1] - self.times[i])
        span = self.times[-1] - self.times[0]
        return total / span if span > 0 else self.values[0]


class _Family:
    """All children of one metric name, plus the family's fixed shape."""

    __slots__ = ("name", "kind", "bounds", "children")

    def __init__(self, name: str, kind: str, bounds=None):
        self.name = name
        self.kind = kind
        self.bounds = bounds
        self.children: dict[tuple, Any] = {}


class MetricsRegistry:
    """One grid's labelled instruments, stamped with simulation time.

    ``clock`` is any zero-argument callable returning the current sim time;
    passing a :class:`~repro.simulation.kernel.Simulator` uses its ``now``.
    """

    def __init__(self, clock: Any = None):
        if clock is None:
            self._clock: Callable[[], float] = lambda: 0.0
        elif callable(clock):
            self._clock = clock
        else:  # a Simulator (or anything exposing .now)
            self._clock = lambda: clock.now
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time as seen by the registry."""
        return self._clock()

    # -- instrument access -----------------------------------------------
    def _child(self, name: str, kind: str, labels: dict, bounds=None):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind, bounds)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        elif kind == "histogram" and bounds is not None \
                and bounds != family.bounds:
            raise ValueError(
                f"histogram {name!r} already has bounds {family.bounds}"
            )
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            if kind == "counter":
                child = Counter(key)
            elif kind == "gauge":
                child = Gauge(key)
            elif kind == "histogram":
                child = Histogram(key, family.bounds)
            else:
                child = TimeSeries(key)
            family.children[key] = child
        return child

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter child of ``name`` for these labels (created lazily)."""
        return self._child(name, "counter", labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge child of ``name`` for these labels (created lazily)."""
        return self._child(name, "gauge", labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS,
        **labels: Any,
    ) -> Histogram:
        """The histogram child of ``name``; ``bounds`` fixes the family's
        bucket upper edges on first use (later mismatching bounds raise)."""
        bounds = tuple(sorted(float(b) for b in bounds))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        return self._child(name, "histogram", labels, bounds=bounds)

    def series(self, name: str, **labels: Any) -> TimeSeries:
        """The time series child of ``name`` for these labels."""
        return self._child(name, "series", labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Sample ``value`` into the named time series at the current
        simulation time (the one-call form of ``series(...)._sample``)."""
        self.series(name, **labels)._sample(self._clock(), value)

    # -- collectors -------------------------------------------------------
    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run (in registration order) by
        :meth:`collect` before every snapshot/export; collectors scrape
        passive state into gauges so hot paths stay uninstrumented."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run all registered collectors once."""
        for collector in self._collectors:
            collector(self)

    # -- introspection ----------------------------------------------------
    def families(self) -> list[str]:
        """All family names, sorted."""
        return sorted(self._families)

    def children(self, name: str) -> Iterator[Any]:
        """The children of one family in sorted label order."""
        family = self._families.get(name)
        if family is None:
            return iter(())
        return iter(
            family.children[key] for key in sorted(family.children)
        )

    def kind(self, name: str) -> Optional[str]:
        """The instrument kind of a family (None when absent)."""
        family = self._families.get(name)
        return family.kind if family is not None else None

    def value(self, name: str, **labels: Any) -> float:
        """Shortcut: the value of a counter/gauge child (0 when absent)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        child = family.children.get(_label_key(labels))
        return child.value if child is not None else 0.0

    def __len__(self) -> int:
        return sum(len(f.children) for f in self._families.values())

    # -- export -----------------------------------------------------------
    def snapshot(self) -> dict:
        """A deterministic, JSON-friendly document of everything recorded:
        families sorted by name, children sorted by labels.  Runs the
        collectors first.  Two identical simulations produce equal
        snapshots — the determinism gate diffs these."""
        self.collect()
        out: dict[str, Any] = {}
        for name in sorted(self._families):
            family = self._families[name]
            children = []
            for key in sorted(family.children):
                child = family.children[key]
                record: dict[str, Any] = {"labels": dict(child.labels)}
                if family.kind in ("counter", "gauge"):
                    record["value"] = child.value
                elif family.kind == "histogram":
                    record["buckets"] = list(child.bucket_counts)
                    record["count"] = child.count
                    record["sum"] = child.total
                else:
                    record["samples"] = list(zip(child.times, child.values))
                children.append(record)
            entry: dict[str, Any] = {"kind": family.kind, "children": children}
            if family.kind == "histogram":
                entry["bounds"] = list(family.bounds)
            out[name] = entry
        return out
