"""The terminal "grid health report": one page an operator reads.

The GDMP operational papers are blunt that monitoring was the difference
between a demo and a service; this renderer is the ten-second version of
that monitoring.  Given a grid's :class:`MetricsRegistry` and
:class:`TraceLog` it prints:

* a per-subsystem metrics table (subsystem = the first dotted segment of
  the family name: ``netsim``, ``gridftp``, ``rpc``, ``catalog``,
  ``storage``, ...), one row per labelled child, with a kind-appropriate
  digest (counter value, gauge value, histogram count/mean, series
  last/avg/max);
* a "grid weather" table when the observatory is attached: one row per
  observed (source, destination) pair joining the ``weather.pair.*``
  gauges — predicted throughput, samples, failures, staleness,
  confidence, congestion — plus the top-N most-congested pairs (the
  paths an operator should reroute around);
* a per-host span summary (how much traced work each host did, and how
  much of it failed);
* the top-N slowest finished spans — where the simulated time went;
* every span still ``in_progress`` — work the simulation ended inside,
  which would otherwise silently export ``end: null``.

Everything is sorted, so the report is deterministic for a given run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.services.tracelog import TraceLog
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["render_health_report", "print_health_report"]


def _table(headers: Sequence[str], rows: list[Sequence[str]]) -> list[str]:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    head = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines = [head, "-" * len(head)]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _labels_text(labels: tuple[tuple[str, str], ...]) -> str:
    return ",".join(f"{k}={v}" for k, v in labels) or "-"


def _digest(kind: str, child) -> str:
    if kind in ("counter", "gauge"):
        return _fmt(child.value)
    if kind == "histogram":
        if not child.count:
            return "n=0"
        return f"n={child.count} mean={_fmt(child.mean)}"
    if not len(child):
        return "no samples"
    return (
        f"last={_fmt(child.last)} avg={_fmt(child.time_average())} "
        f"max={_fmt(child.maximum())}"
    )


#: the per-pair gauge families the grid-weather table joins on (src, dst)
_WEATHER_PAIR_PREFIX = "weather.pair."

#: the chunk-durability families pulled out of the per-subsystem tables
#: into their own scrub/repair section
_SCRUB_FAMILIES = frozenset({
    "chunks.scrub",
    "chunks.scrub_passes",
    "chunks.scrub_backlog",
    "chunks.repair",
    "chunks.repair_backlog",
})


def _weather_rows(registry: MetricsRegistry) -> dict:
    """(src, dst) -> {metric suffix: value} from the weather.pair gauges."""
    pairs: dict[tuple[str, str], dict] = {}
    for name in registry.families():
        if not name.startswith(_WEATHER_PAIR_PREFIX):
            continue
        suffix = name[len(_WEATHER_PAIR_PREFIX):]
        for child in registry.children(name):
            labels = dict(child.labels)
            key = (labels.get("src", "-"), labels.get("dst", "-"))
            pairs.setdefault(key, {})[suffix] = child.value
    return pairs


def _weather_section(registry: MetricsRegistry, top_n: int) -> list[str]:
    """The grid-weather table plus the congested-pair ranking."""
    pairs = _weather_rows(registry)
    if not pairs:
        return []
    lines = ["", "-- grid weather --"]

    def row(key, values) -> tuple:
        throughput = values.get("throughput")
        return (
            f"{key[0]}->{key[1]}",
            f"{throughput / 1e6:.2f}" if throughput is not None else "-",
            _fmt(values.get("samples", 0)),
            _fmt(values.get("failures", 0)),
            f"{values.get('staleness_seconds', 0.0):.1f}",
            f"{values.get('confidence', 0.0):.2f}",
            (f"{values['congestion']:.2f}"
             if "congestion" in values else "-"),
        )

    lines.extend(
        _table(
            ("pair", "pred MB/s", "samples", "failures", "stale (s)",
             "confidence", "congestion"),
            [row(key, pairs[key]) for key in sorted(pairs)],
        )
    )
    congested = sorted(
        (
            (values["congestion"], key)
            for key, values in pairs.items()
            if values.get("congestion", 0.0) > 0.0
        ),
        key=lambda item: (-item[0], item[1]),
    )[:top_n]
    if congested:
        lines.append("")
        lines.append(
            f"-- top {len(congested)} congested pairs (1 = starved) --"
        )
        lines.extend(
            _table(
                ("congestion", "pair"),
                [
                    (f"{congestion:.2f}", f"{key[0]}->{key[1]}")
                    for congestion, key in congested
                ],
            )
        )
    return lines


def _chunks_section(registry: MetricsRegistry) -> list[str]:
    """The scrub/repair table: probe outcomes, repair work, and the
    backlog gauges an operator watches for a repair loop falling
    behind its damage rate."""
    rows = []
    for name in sorted(_SCRUB_FAMILIES):
        for child in registry.children(name):
            rows.append((name, _labels_text(child.labels),
                         _fmt(child.value)))
    if not rows:
        return []
    lines = ["", "-- scrub/repair --"]
    lines.extend(_table(("metric", "labels", "value"), rows))
    backlog = (
        registry.value("chunks.scrub_backlog")
        + registry.value("chunks.repair_backlog")
    )
    if backlog:
        lines.append(
            f"!! scrub/repair backlog: {_fmt(backlog)} tasks outstanding"
        )
    return lines


def render_health_report(
    registry: Optional[MetricsRegistry],
    tracelog: Optional[TraceLog] = None,
    top_n: int = 10,
) -> str:
    """The whole report as one printable string."""
    lines: list[str] = []
    now = registry.now if registry is not None else (
        tracelog.sim.now if tracelog is not None else 0.0
    )
    n_children = len(registry) if registry is not None else 0
    n_spans = len(tracelog) if tracelog is not None else 0
    lines.append(
        f"=== grid health report — t={now:.3f}s, {n_children} metric "
        f"series, {n_spans} spans ==="
    )

    if registry is not None and len(registry):
        registry.collect()
        by_subsystem: dict[str, list[Sequence[str]]] = {}
        for name in registry.families():
            if name.startswith(_WEATHER_PAIR_PREFIX):
                continue  # joined into the grid-weather table below
            if name in _SCRUB_FAMILIES:
                continue  # rendered in the scrub/repair section below
            kind = registry.kind(name)
            subsystem = name.split(".", 1)[0]
            for child in registry.children(name):
                by_subsystem.setdefault(subsystem, []).append(
                    (name, _labels_text(child.labels), kind,
                     _digest(kind, child))
                )
        for subsystem in sorted(by_subsystem):
            lines.append("")
            lines.append(f"-- {subsystem} --")
            lines.extend(
                _table(
                    ("metric", "labels", "kind", "value"),
                    by_subsystem[subsystem],
                )
            )
        lines.extend(_weather_section(registry, top_n))
        lines.extend(_chunks_section(registry))

    if tracelog is not None and len(tracelog):
        finished = [s for s in tracelog.spans() if s.end is not None]
        per_host: dict[str, list[int]] = {}
        for span in tracelog.spans():
            host = span.host or "-"
            counts = per_host.setdefault(host, [0, 0, 0])
            counts[0] += 1
            if span.status == "error":
                counts[1] += 1
            if span.end is None:
                counts[2] += 1
        lines.append("")
        lines.append("-- spans per host --")
        lines.extend(
            _table(
                ("host", "spans", "errors", "open"),
                [
                    (host, str(c[0]), str(c[1]), str(c[2]))
                    for host, c in sorted(per_host.items())
                ],
            )
        )

        slowest = sorted(
            finished, key=lambda s: (-(s.end - s.start), s.span_id)
        )[:top_n]
        if slowest:
            lines.append("")
            lines.append(f"-- top {len(slowest)} slowest spans --")
            lines.extend(
                _table(
                    ("duration (s)", "name", "host", "service", "status",
                     "trace"),
                    [
                        (f"{s.end - s.start:.4f}", s.name, s.host or "-",
                         s.service or "-", s.status, s.trace_id)
                        for s in slowest
                    ],
                )
            )

        open_spans = tracelog.open_spans()
        if open_spans:
            lines.append("")
            lines.append(
                f"-- WARNING: {len(open_spans)} spans still in progress at "
                "simulation end --"
            )
            lines.extend(
                _table(
                    ("started (s)", "name", "host", "service", "trace"),
                    [
                        (f"{s.start:.4f}", s.name, s.host or "-",
                         s.service or "-", s.trace_id)
                        for s in open_spans
                    ],
                )
            )
    return "\n".join(lines)


def print_health_report(
    registry: Optional[MetricsRegistry],
    tracelog: Optional[TraceLog] = None,
    top_n: int = 10,
) -> None:
    """Render and print the report followed by a blank line."""
    print(render_health_report(registry, tracelog, top_n=top_n))
    print()
