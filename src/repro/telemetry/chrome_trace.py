"""Chrome trace-event export of a :class:`TraceLog` (Perfetto-loadable).

Renders the grid's request spans in the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev:

* one *process* row per host (spans with no host land on a synthetic
  ``grid`` row), named with ``process_name`` metadata events;
* one *thread* row per service within a host, named with ``thread_name``
  metadata events;
* every finished span becomes a complete (``"X"``) event — sim seconds
  are exported as microseconds, the format's native unit;
* spans still in progress become instant (``"i"``) events so an aborted
  simulation remains inspectable instead of silently dropping work;
* each parent/child edge that crosses hosts becomes a flow arrow
  (``"s"``/``"f"`` pair keyed by the child's span id), so a ``replicate``
  request can be followed hop by hop: RPC -> GridFTP control -> transfer
  flows -> catalog update.

All ordering is the trace log's span order plus sorted host/service
tables, so two identical simulations export byte-identical JSON.
"""

from __future__ import annotations

import json

from repro.services.tracelog import Span, TraceLog

__all__ = ["chrome_trace_events", "to_chrome_trace_json", "dump_chrome_trace"]

#: Process row for spans recorded without a host (grid-level work).
GRID_PROCESS = "grid"


def _rows(spans: list[Span]) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
    """Stable pid/tid assignment: hosts sorted (pid from 1), services
    sorted within each host (tid from 1)."""
    hosts = sorted({span.host or GRID_PROCESS for span in spans})
    pids = {host: i + 1 for i, host in enumerate(hosts)}
    tids: dict[tuple[str, str], int] = {}
    by_host: dict[str, set[str]] = {}
    for span in spans:
        host = span.host or GRID_PROCESS
        by_host.setdefault(host, set()).add(span.service or span.kind)
    for host in hosts:
        for i, service in enumerate(sorted(by_host[host])):
            tids[(host, service)] = i + 1
    return pids, tids


def _span_args(span: Span) -> dict:
    args = {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "status": span.status,
    }
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    if span.detail:
        args["detail"] = span.detail
    for key, value in span.attrs.items():
        if not isinstance(value, (str, int, float, bool)) and value is not None:
            value = str(value)
        args[key] = value
    return args


def _numeric_id(span_id: str) -> int:
    """A span's flow-arrow id: the numeric tail of ``s000123``."""
    digits = "".join(c for c in span_id if c.isdigit())
    return int(digits) if digits else abs(hash(span_id)) % (1 << 31)


def chrome_trace_events(tracelog: TraceLog) -> list[dict]:
    """The trace log as a list of Chrome trace-event dicts."""
    spans = tracelog.spans()
    pids, tids = _rows(spans)
    events: list[dict] = []
    for host in sorted(pids):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pids[host],
            "tid": 0,
            "args": {"name": host},
        })
    for (host, service) in sorted(tids):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pids[host],
            "tid": tids[(host, service)],
            "args": {"name": service},
        })
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        host = span.host or GRID_PROCESS
        pid = pids[host]
        tid = tids[(host, span.service or span.kind)]
        ts = span.start * 1e6
        if span.end is None:
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "i",
                "s": "t",       # thread-scoped instant
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "args": _span_args(span),
            })
        else:
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": ts,
                "dur": (span.end - span.start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": _span_args(span),
            })
        parent = by_id.get(span.parent_id) if span.parent_id else None
        if parent is not None:
            parent_host = parent.host or GRID_PROCESS
            if parent_host != host:
                flow_id = _numeric_id(span.span_id)
                events.append({
                    "name": span.name,
                    "cat": "flow",
                    "ph": "s",
                    "id": flow_id,
                    "ts": parent.start * 1e6,
                    "pid": pids[parent_host],
                    "tid": tids[(parent_host, parent.service or parent.kind)],
                })
                events.append({
                    "name": span.name,
                    "cat": "flow",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                })
    return events


def to_chrome_trace_json(tracelog: TraceLog, indent: int = 1) -> str:
    """The whole log as a Chrome trace JSON document."""
    return json.dumps(
        {
            "traceEvents": chrome_trace_events(tracelog),
            "displayTimeUnit": "ms",
        },
        indent=indent,
        sort_keys=True,
    )


def dump_chrome_trace(tracelog: TraceLog, path: str, indent: int = 1) -> None:
    """Write :func:`to_chrome_trace_json` to a file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_chrome_trace_json(tracelog, indent=indent))
        fh.write("\n")
