"""Unified telemetry: labelled metrics, exporters, and the health report.

The grid's observability subsystem (see DESIGN.md "Telemetry"):

* :mod:`repro.telemetry.metrics` — the sim-time-aware
  :class:`MetricsRegistry` of labelled counters, gauges, histograms, and
  time-weighted series that every instrumented subsystem records into;
* :mod:`repro.telemetry.prometheus` — Prometheus text-format export;
* :mod:`repro.telemetry.chrome_trace` — Chrome trace-event JSON export of
  a :class:`~repro.services.tracelog.TraceLog` (Perfetto-loadable, with
  per-host process rows and cross-host flow arrows);
* :mod:`repro.telemetry.report` — the terminal grid health report.
"""

from repro.telemetry.chrome_trace import (  # noqa: F401
    chrome_trace_events,
    dump_chrome_trace,
    to_chrome_trace_json,
)
from repro.telemetry.metrics import (  # noqa: F401
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_SIZE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.telemetry.prometheus import (  # noqa: F401
    dump_prometheus,
    to_prometheus_text,
)
from repro.telemetry.report import (  # noqa: F401
    print_health_report,
    render_health_report,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "chrome_trace_events",
    "dump_chrome_trace",
    "dump_prometheus",
    "print_health_report",
    "render_health_report",
    "to_chrome_trace_json",
    "to_prometheus_text",
]
