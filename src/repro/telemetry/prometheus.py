"""Prometheus text-format export of a :class:`MetricsRegistry`.

Produces the classic exposition format (text/plain version 0.0.4): one
``# TYPE`` line per family, then one sample line per child, labels sorted,
families sorted — so two identical simulations dump byte-identical text.

Mapping of the registry's instrument kinds:

* counters -> ``counter`` samples (name suffixed ``_total``);
* gauges -> ``gauge`` samples;
* histograms -> cumulative ``_bucket{le="..."}`` series plus ``_sum`` and
  ``_count`` (standard Prometheus histogram layout);
* time series -> three gauge samples per child: ``_last``, ``_avg``
  (time-weighted), and ``_max`` — the scrapeable digest of a
  stepwise-constant signal.

Dotted metric names (``gridftp.stream.bytes``) become underscore names
(``gridftp_stream_bytes``), the only transformation applied.
"""

from __future__ import annotations

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["to_prometheus_text", "dump_prometheus"]


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric name: dots and dashes to underscores."""
    return "".join(
        c if (c.isalnum() or c in "_:") else "_" for c in name
    )


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*labels, *extra]
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    """Integral floats print as integers; everything else as repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The whole registry as a Prometheus exposition document."""
    registry.collect()
    lines: list[str] = []
    for name in registry.families():
        kind = registry.kind(name)
        base = _sanitize(name)
        if kind == "counter":
            lines.append(f"# TYPE {base}_total counter")
            for child in registry.children(name):
                lines.append(
                    f"{base}_total{_labels_text(child.labels)} "
                    f"{_format_value(child.value)}"
                )
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            for child in registry.children(name):
                lines.append(
                    f"{base}{_labels_text(child.labels)} "
                    f"{_format_value(child.value)}"
                )
        elif kind == "histogram":
            lines.append(f"# TYPE {base} histogram")
            for child in registry.children(name):
                cumulative = 0
                for bound, count in zip(child.bounds, child.bucket_counts):
                    cumulative += count
                    le = _format_value(bound)
                    lines.append(
                        f"{base}_bucket"
                        f"{_labels_text(child.labels, (('le', le),))} "
                        f"{cumulative}"
                    )
                cumulative += child.bucket_counts[-1]
                lines.append(
                    f"{base}_bucket"
                    f"{_labels_text(child.labels, (('le', '+Inf'),))} "
                    f"{cumulative}"
                )
                lines.append(
                    f"{base}_sum{_labels_text(child.labels)} "
                    f"{_format_value(child.total)}"
                )
                lines.append(
                    f"{base}_count{_labels_text(child.labels)} {child.count}"
                )
        else:  # time series digest
            children = list(registry.children(name))
            for suffix, reader in (
                ("last", lambda c: c.last),
                ("avg", lambda c: c.time_average()),
                ("max", lambda c: c.maximum()),
            ):
                lines.append(f"# TYPE {base}_{suffix} gauge")
                for child in children:
                    lines.append(
                        f"{base}_{suffix}{_labels_text(child.labels)} "
                        f"{_format_value(reader(child))}"
                    )
    return "\n".join(lines) + ("\n" if lines else "")


def dump_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Write :func:`to_prometheus_text` to a file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_prometheus_text(registry))
