"""repro — a from-scratch reproduction of GDMP (HPDC 2001).

Top-level package for the reproduction of *File and Object Replication in
Data Grids*.  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for the reproduced figures and claims.

The most common entry points are re-exported here::

    from repro import DataGrid, GdmpConfig
    grid = DataGrid([GdmpConfig("cern"), GdmpConfig("anl")])
"""

from repro.gdmp.config import GdmpConfig
from repro.gdmp.grid import DataGrid, GdmpSite

__version__ = "1.0.0"

__all__ = ["DataGrid", "GdmpConfig", "GdmpSite", "__version__"]
