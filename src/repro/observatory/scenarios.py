"""Background-traffic scenarios: diurnal load and flash crowds.

The Legrand et al. T0/T1 simulation study stresses replica selection
with *time-varying* background load: production transfers follow the
sun (diurnal congestion waves), and a hot dataset announcement turns
one source site into a flash crowd.  This module generates those as
pre-computed scripts of real competing transfers:

* build time — all randomness is drawn from named
  :class:`~repro.simulation.randomness.RandomStreams` streams into an
  immutable :class:`ScenarioScript` whose :meth:`ScenarioScript.
  schedule_repr` fingerprints the whole schedule;
* run time — :class:`ScenarioDriver` replays the script verbatim,
  opening each transfer on the flow engine at its scripted instant.

The traffic is *real* elastic flows, not cross-traffic constants: it
shares bottleneck links with replication transfers, which is exactly
what instantaneous ``pipechar`` probes cannot see (they report capacity
minus constant cross-traffic) and transfer *history* can.  That gap is
the mechanism EXP-WEATHER measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..netsim.engine import TransferAborted
from ..netsim.topology import RouteError

__all__ = [
    "TrafficEvent",
    "ScenarioScript",
    "diurnal_scenario",
    "flash_crowd_scenario",
    "ScenarioDriver",
]


@dataclass(frozen=True)
class TrafficEvent:
    """One scripted background transfer."""

    time: float      # seconds after driver start the transfer opens
    src: str         # source site/host
    dst: str         # destination site/host
    size: float      # bytes
    streams: int     # parallel TCP streams
    kind: str        # "diurnal" | "crowd" | ... (metrics label)


@dataclass(frozen=True)
class ScenarioScript:
    """A pre-computed, immutable background-traffic schedule."""

    name: str
    horizon: float
    events: Tuple[TrafficEvent, ...]

    def schedule_repr(self) -> str:
        """Canonical textual schedule — the determinism fingerprint."""
        lines = [f"scenario {self.name} horizon={self.horizon:.3f} "
                 f"events={len(self.events)}"]
        for e in self.events:
            lines.append(
                f"{e.time:.6f} {e.src}->{e.dst} "
                f"{e.size:.0f}B x{e.streams} {e.kind}"
            )
        return "\n".join(lines)


def _draw_pair(
    rng,
    sites: Sequence[str],
    sources: Optional[Sequence[str]] = None,
    destinations: Optional[Sequence[str]] = None,
) -> Tuple[str, str]:
    """A distinct ordered (src, dst) pair: src uniform over ``sources``
    (default: all sites), dst uniform over ``destinations`` (default:
    all sites) minus the source."""
    pool = sources if sources is not None else sites
    src = pool[int(rng.integers(len(pool)))]
    sinks = destinations if destinations is not None else sites
    others = [s for s in sinks if s != src]
    if not others:
        raise ValueError("no destination distinct from the source")
    return src, others[int(rng.integers(len(others)))]


def _draw_size(rng, mean_size: float, sigma: float) -> float:
    """Lognormal transfer size with the given *linear* mean."""
    # mean of lognormal(mu, sigma) is exp(mu + sigma^2/2); solve for mu
    mu = math.log(mean_size) - 0.5 * sigma * sigma
    return float(rng.lognormal(mu, sigma))


def diurnal_scenario(
    streams,
    sites: Sequence[str],
    *,
    horizon: float = 600.0,
    period: float = 300.0,
    base_rate: float = 0.02,
    peak_rate: float = 0.25,
    mean_size: float = 200e6,
    sigma: float = 0.6,
    streams_per_transfer: int = 2,
    slot: float = 5.0,
    sources: Optional[Sequence[str]] = None,
    destinations: Optional[Sequence[str]] = None,
    name: str = "diurnal",
) -> ScenarioScript:
    """Sun-following background load: arrival rate swings between
    ``base_rate`` and ``peak_rate`` transfers/s on a ``sin^2`` wave of
    the given ``period``.  Sources and destinations default to all
    ``sites``, or are confined to the given pools — e.g. T0 sources and
    T1 destinations model the MONARC production-export waves, which
    congest the backbones while leaving the regional tails clear.  All
    draws come from ``streams[f"scenario.{name}"]``.
    """
    if len(sites) < 2:
        raise ValueError("a traffic scenario needs at least two sites")
    rng = streams[f"scenario.{name}"]
    events = []
    t = 0.0
    while t < horizon:
        phase = math.sin(math.pi * t / period)
        rate = base_rate + (peak_rate - base_rate) * phase * phase
        width = min(slot, horizon - t)
        for _ in range(int(rng.poisson(rate * width))):
            src, dst = _draw_pair(rng, sites, sources, destinations)
            events.append(TrafficEvent(
                time=t + float(rng.random()) * width,
                src=src,
                dst=dst,
                size=_draw_size(rng, mean_size, sigma),
                streams=streams_per_transfer,
                kind=name,
            ))
        t += width
    events.sort(key=lambda e: (e.time, e.src, e.dst, e.size))
    return ScenarioScript(name=name, horizon=horizon, events=tuple(events))


def flash_crowd_scenario(
    streams,
    sites: Sequence[str],
    *,
    hot_site: Optional[str] = None,
    horizon: float = 600.0,
    crowd_start: float = 180.0,
    crowd_duration: float = 120.0,
    crowd_arrivals: int = 30,
    base_rate: float = 0.02,
    mean_size: float = 200e6,
    sigma: float = 0.6,
    streams_per_transfer: int = 2,
    name: str = "flash_crowd",
) -> ScenarioScript:
    """A hot-dataset announcement: every site starts pulling from one
    source inside ``[crowd_start, crowd_start + crowd_duration)``, on
    top of a steady background trickle.  The crowd drains ``hot_site``'s
    uplinks, so history-based selection learns to route around it while
    probes keep reporting an idle pipe.
    """
    if len(sites) < 2:
        raise ValueError("a traffic scenario needs at least two sites")
    rng = streams[f"scenario.{name}"]
    hot = hot_site if hot_site is not None else sites[0]
    if hot not in sites:
        raise ValueError(f"hot site {hot!r} is not in the site list")
    events = []
    # steady trickle over the whole horizon
    for _ in range(int(rng.poisson(base_rate * horizon))):
        src, dst = _draw_pair(rng, sites)
        events.append(TrafficEvent(
            time=float(rng.random()) * horizon,
            src=src,
            dst=dst,
            size=_draw_size(rng, mean_size, sigma),
            streams=streams_per_transfer,
            kind=name,
        ))
    # the crowd: everyone pulls from the hot source
    others = [s for s in sites if s != hot]
    for _ in range(crowd_arrivals):
        dst = others[int(rng.integers(len(others)))]
        events.append(TrafficEvent(
            time=crowd_start + float(rng.random()) * crowd_duration,
            src=hot,
            dst=dst,
            size=_draw_size(rng, mean_size, sigma),
            streams=streams_per_transfer,
            kind=f"{name}.crowd",
        ))
    events.sort(key=lambda e: (e.time, e.src, e.dst, e.size))
    return ScenarioScript(name=name, horizon=horizon, events=tuple(events))


class ScenarioDriver:
    """Replays a :class:`ScenarioScript` on the flow engine, verbatim.

    Event times are *relative to driver start* (anchored at the sim-time
    :meth:`start`'s process begins, exactly as fault campaigns are), so
    a schedule is independent of how long the workload's setup phase
    took.  Purely a playback head: it draws no random numbers at run
    time, so the schedule fingerprint plus the seed pins the whole
    simulation.  Transfers aborted mid-flight (severed links during
    fault campaigns) are swallowed and counted — background traffic
    never errors a run.
    """

    def __init__(self, sim, engine, script: ScenarioScript, metrics=None):
        self.sim = sim
        self.engine = engine
        self.script = script
        self.metrics = metrics
        self.process = None
        self.stats = {
            "launched": 0,
            "completed": 0,
            "aborted": 0,
            "unroutable": 0,
            "bytes_offered": 0,
        }

    def start(self):
        if self.process is None:
            self.process = self.sim.spawn(
                self._run(), name=f"scenario:{self.script.name}"
            )
        return self.process

    def _run(self):
        started = self.sim.now
        for event in self.script.events:
            target = started + event.time
            if target > self.sim.now:
                yield self.sim.timeout(target - self.sim.now)
            try:
                pool = self.engine.open_transfer(
                    event.src,
                    event.dst,
                    nbytes=event.size,
                    streams=event.streams,
                    name=f"bg:{event.kind}",
                )
            except (RouteError, KeyError):
                # partitioned by a fault window at launch instant
                self.stats["unroutable"] += 1
                continue
            self.stats["launched"] += 1
            self.stats["bytes_offered"] += int(event.size)
            if self.metrics is not None:
                self.metrics.counter(
                    "scenario.transfers", kind=event.kind
                ).inc()
            self.sim.spawn(
                self._watch(pool), name=f"bg-watch:{event.kind}"
            )

    def _watch(self, pool):
        try:
            yield pool.done
        except TransferAborted:
            self.stats["aborted"] += 1
        else:
            self.stats["completed"] += 1
