"""Streaming transfer estimators: the math under the grid weather service.

"Replica Selection in the Globus Data Grid" (Vazhkudai, Tuecke, Foster)
predicts a pair's transfer throughput from its *history* rather than an
instantaneous probe, because probes see the pipe, not the competition:
``pipechar`` reports capacity minus constant cross-traffic, but the
bandwidth a new TCP transfer actually achieves is set by the elastic
flows already sharing the bottleneck.  History sees exactly that.

Everything here is a pure streaming computation over observed samples —
no ring scans on the query path, no random numbers, no scheduled events
— so the observatory can ride along any simulation without perturbing
it, and two identical sample streams always produce byte-identical
estimates.

* :class:`Ewma` — constant-alpha exponentially weighted moving average;
* :class:`DecayedStats` — time-decayed mean/variance with a half-life,
  so idle pairs "forget" (their weight decays toward zero);
* :class:`ThroughputRegressor` — the Vazhkudai refinement: throughput
  binned by log2(file size), because small transfers never leave TCP
  slow start and report much lower rates than bulk ones;
* :class:`PairHistory` — one (source, destination) pair's ring buffer
  plus all of the above, answering :meth:`PairHistory.forecast`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Ewma",
    "DecayedStats",
    "ThroughputRegressor",
    "TransferSample",
    "Forecast",
    "PairHistory",
]


class Ewma:
    """Exponentially weighted moving average with constant ``alpha``."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value: Optional[float] = None
        self.n = 0

    def update(self, x: float) -> float:
        self.n += 1
        if self.value is None:
            self.value = float(x)
        else:
            self.value += self.alpha * (float(x) - self.value)
        return self.value


class DecayedStats:
    """Time-decayed weighted mean and variance.

    Every observation carries weight 1 at its own time and half that
    weight one ``half_life`` later — the continuous analogue of "recent
    transfers matter more".  The decayed total weight doubles as the
    *evidence* behind the estimate: it is what confidence scoring reads.
    """

    def __init__(self, half_life: float = 120.0):
        if half_life <= 0:
            raise ValueError(f"half_life must be positive, got {half_life}")
        self.half_life = half_life
        self._weight = 0.0
        self._mean = 0.0
        self._m2 = 0.0          # decayed sum of squared deviations
        self._as_of: Optional[float] = None

    def _decay_to(self, t: float) -> float:
        """Decay factor from the last update time to ``t`` (>= as_of)."""
        if self._as_of is None:
            return 1.0
        dt = t - self._as_of
        if dt <= 0:
            return 1.0
        return 0.5 ** (dt / self.half_life)

    def update(self, t: float, x: float) -> None:
        decay = self._decay_to(t)
        self._weight *= decay
        self._m2 *= decay
        self._as_of = t if self._as_of is None else max(self._as_of, t)
        # standard weighted Welford step with the new sample at weight 1
        self._weight += 1.0
        delta = float(x) - self._mean
        self._mean += delta / self._weight
        self._m2 += delta * (float(x) - self._mean)

    def weight(self, t: Optional[float] = None) -> float:
        """Decayed evidence behind the estimate at time ``t``."""
        if self._as_of is None:
            return 0.0
        return self._weight * (
            self._decay_to(t) if t is not None else 1.0
        )

    @property
    def mean(self) -> Optional[float]:
        return self._mean if self._as_of is not None else None

    @property
    def variance(self) -> float:
        """Decayed population variance (0 until two samples exist)."""
        if self._as_of is None or self._weight <= 1.0:
            return 0.0
        return max(0.0, self._m2 / self._weight)


class ThroughputRegressor:
    """Log-size-binned throughput predictor (Vazhkudai et al. §4).

    Observed throughputs land in bins keyed by ``floor(log2(size /
    base_size))``, clamped to ``[0, bins)`` — one decayed estimator per
    bin.  Prediction for a size picks its own bin when it has evidence,
    else the nearest populated bin (smaller sizes first on ties, since
    underestimating throughput is the safe direction), else nothing.
    """

    def __init__(self, bins: int = 8, base_size: float = 1e6,
                 half_life: float = 120.0, min_weight: float = 0.5):
        if bins < 1:
            raise ValueError(f"need at least one bin, got {bins}")
        if base_size <= 0:
            raise ValueError(f"base_size must be positive, got {base_size}")
        self.bins = bins
        self.base_size = base_size
        self.min_weight = min_weight
        self._stats = [DecayedStats(half_life) for _ in range(bins)]

    def bin_index(self, size: float) -> int:
        if size <= self.base_size:
            return 0
        return min(self.bins - 1, int(math.log2(size / self.base_size)))

    def observe(self, t: float, size: float, throughput: float) -> None:
        self._stats[self.bin_index(size)].update(t, throughput)

    def predict(self, size: float, now: float) -> Optional[float]:
        home = self.bin_index(size)
        for distance in range(self.bins):
            for idx in (home - distance, home + distance):
                if 0 <= idx < self.bins:
                    stats = self._stats[idx]
                    if stats.weight(now) >= self.min_weight:
                        return stats.mean
        return None

    def bin_means(self, now: float) -> list[Optional[float]]:
        """Per-bin decayed means (None where evidence decayed away) —
        the payload a forecast digest carries."""
        return [
            s.mean if s.weight(now) >= self.min_weight else None
            for s in self._stats
        ]


@dataclass(frozen=True)
class TransferSample:
    """One retired transfer as the observatory saw it."""

    time: float          # sim-time the transfer finished (or died)
    size: float          # bytes the transfer set out to move
    duration: float      # seconds start -> retirement
    throughput: float    # achieved bytes/s (delivered over duration)
    ok: bool             # False: aborted (fault, cancel) before draining


@dataclass(frozen=True)
class Forecast:
    """A pair's predicted transfer behaviour, with its provenance.

    ``confidence`` in [0, 1] folds together evidence (how many recent
    samples), freshness (how stale the newest one is) and stability
    (how noisy the pair has been); 0 means "you know nothing, probe".
    """

    throughput: float    # predicted achieved bytes/s for the asked size
    rtt: Optional[float]  # smoothed control-channel RTT (None: never seen)
    confidence: float
    samples: int         # lifetime samples behind the estimate
    staleness: float     # seconds since the newest sample (inf: none)

    def fresh(self, horizon: float) -> bool:
        return self.staleness <= horizon


class PairHistory:
    """Everything the observatory knows about one (src, dst) pair."""

    def __init__(self, ring_size: int = 64, ewma_alpha: float = 0.3,
                 half_life: float = 120.0, bins: int = 8,
                 base_size: float = 1e6):
        self.ring: deque[TransferSample] = deque(maxlen=ring_size)
        self.ewma = Ewma(ewma_alpha)
        self.stats = DecayedStats(half_life)
        self.regressor = ThroughputRegressor(
            bins=bins, base_size=base_size, half_life=half_life
        )
        self.rtt = Ewma(ewma_alpha)
        self.half_life = half_life
        self.samples = 0
        self.failures = 0
        self.last_sample_at: Optional[float] = None
        self._failure_decay = DecayedStats(half_life)

    # -- feeding -----------------------------------------------------------
    def observe(self, sample: TransferSample) -> None:
        self.ring.append(sample)
        self.last_sample_at = sample.time
        if not sample.ok:
            # an aborted transfer teaches nothing about throughput but
            # plenty about trust: it weighs on confidence until it decays
            self.failures += 1
            self._failure_decay.update(sample.time, 1.0)
            return
        self.samples += 1
        self.ewma.update(sample.throughput)
        self.stats.update(sample.time, sample.throughput)
        self.regressor.observe(sample.time, sample.size, sample.throughput)

    def observe_rtt(self, rtt: float) -> None:
        self.rtt.update(rtt)

    # -- asking ------------------------------------------------------------
    def staleness(self, now: float) -> float:
        if self.last_sample_at is None:
            return float("inf")
        return max(0.0, now - self.last_sample_at)

    def confidence(self, now: float) -> float:
        """Evidence x freshness x stability, each in [0, 1]."""
        weight = self.stats.weight(now)
        if weight <= 0.0:
            return 0.0
        evidence = weight / (weight + 2.0)
        staleness = self.staleness(now)
        freshness = 0.5 ** (staleness / self.half_life)
        mean = self.stats.mean or 0.0
        if mean <= 0.0:
            return 0.0
        stability = mean * mean / (mean * mean + self.stats.variance)
        fail_weight = self._failure_decay.weight(now)
        trust = 1.0 / (1.0 + fail_weight)
        return evidence * freshness * stability * trust

    def forecast(self, size: float, now: float) -> Optional[Forecast]:
        """Predicted throughput for ``size`` bytes, or None without data."""
        predicted = self.regressor.predict(size, now)
        if predicted is None:
            predicted = self.ewma.value
        if predicted is None or predicted <= 0.0:
            return None
        return Forecast(
            throughput=predicted,
            rtt=self.rtt.value,
            confidence=self.confidence(now),
            samples=self.samples,
            staleness=self.staleness(now),
        )
