"""repro.observatory — the grid weather service.

A standing observation plane over the flow engine: every retired
transfer becomes per-(source, destination) history (ring buffers +
streaming estimators), forecast digests are pushed to sites RLS-style,
and the rewritten replica selector blends predicted transfer time with
confidence — falling back to instantaneous probes when history is
missing or stale.  Plus the tiered-topology traffic scenarios that make
the difference measurable (EXP-WEATHER).
"""

from .estimators import (
    DecayedStats,
    Ewma,
    Forecast,
    PairHistory,
    ThroughputRegressor,
    TransferSample,
)
from .scenarios import (
    ScenarioDriver,
    ScenarioScript,
    TrafficEvent,
    diurnal_scenario,
    flash_crowd_scenario,
)
from .service import (
    WEATHER_OP_PREFIX,
    ForecastPusher,
    WeatherRuntime,
    WeatherService,
    WeatherSubscriber,
    forecast_wire_size,
)
from .station import SiteWeather, WeatherConfig, WeatherStation

__all__ = [
    "Ewma",
    "DecayedStats",
    "ThroughputRegressor",
    "TransferSample",
    "Forecast",
    "PairHistory",
    "WeatherConfig",
    "WeatherStation",
    "SiteWeather",
    "WEATHER_OP_PREFIX",
    "WeatherService",
    "WeatherSubscriber",
    "ForecastPusher",
    "WeatherRuntime",
    "forecast_wire_size",
    "TrafficEvent",
    "ScenarioScript",
    "diurnal_scenario",
    "flash_crowd_scenario",
    "ScenarioDriver",
]
