"""The grid weather service on the bus, and its forecast push plane.

:class:`WeatherService` hosts the :class:`~repro.observatory.station.
WeatherStation` behind ``weather.*`` operations on the weather host's
existing GDMP request server (the endpoint pattern every other control
plane here uses):

* ``weather.report`` — pull one site's current inbound forecast digest
  (experiments and tools use this to probe availability; selection
  never does — it reads the pushed site cache synchronously).
* ``weather.push_digest`` — registered on every *subscriber* site's
  server; the station's pushers deliver forecast digests here.
* ``weather.stats`` — observation counters for telemetry scrapes.

Because all ``weather.*`` operations share the GDMP service endpoint,
fault campaigns can black-hole the whole weather plane with the prefix
``weather.`` (the ``weather_blackhole`` fault kind) without touching
co-hosted ``catalog.*``/``task.*``/``rli.*`` traffic — pushes are then
lost, site caches age past the staleness horizon, and replica selection
silently degrades to the probe ladder until the restore reconverges it.

:class:`ForecastPusher` mirrors the RLS :class:`~repro.rls.runtime.
DigestPusher` soft-state discipline: one standing process per
subscriber, staggered phases, lost pushes just folded into the next
period (each digest is a full snapshot, so nothing needs replaying).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..gdmp.request_manager import (
    REQUEST_MESSAGE_SIZE,
    AuthenticatedRequest,
    RequestClient,
    RequestServer,
)
from ..simulation.kernel import Interrupt, Process, Simulator
from .station import SiteWeather, WeatherConfig, WeatherStation

__all__ = [
    "WEATHER_OP_PREFIX",
    "WeatherService",
    "WeatherSubscriber",
    "ForecastPusher",
    "WeatherRuntime",
    "forecast_wire_size",
]

#: operation prefix covering the whole weather plane (blackhole target)
WEATHER_OP_PREFIX = "weather."

#: modelled wire cost of one per-source forecast entry (bins + scalars)
_ENTRY_WIRE_BYTES = 96
_DIGEST_HEADER_BYTES = 64


def forecast_wire_size(payload: dict) -> int:
    """Modelled wire size of a forecast digest, in bytes."""
    return _DIGEST_HEADER_BYTES + _ENTRY_WIRE_BYTES * len(payload["sources"])


class WeatherService:
    """Hosts the weather station behind ``weather.*`` operations."""

    def __init__(
        self,
        server: RequestServer,
        station: WeatherStation,
        metrics=None,
    ) -> None:
        self.server = server
        self.sim = server.sim
        self.station = station
        self.metrics = metrics
        for op in ("report", "stats"):
            server.register(f"weather.{op}", getattr(self, f"_op_{op}"))

    # Handlers are generators (the request manager spawns them); the
    # station itself is in-memory and immediate.

    def _op_report(self, request: AuthenticatedRequest):
        site = request.payload["site"]
        if self.metrics is not None:
            self.metrics.counter("weather.reports", site=site).inc()
        return self.station.digest_for(site, self.sim.now)
        yield  # pragma: no cover - marks this function as a generator

    def _op_stats(self, request: AuthenticatedRequest):
        return {
            "pairs": len(self.station.pairs),
            **self.station.stats,
        }
        yield  # pragma: no cover - marks this function as a generator


class WeatherSubscriber:
    """One site's ``weather.push_digest`` receiver feeding its cache."""

    def __init__(
        self,
        server: RequestServer,
        site_weather: SiteWeather,
        metrics=None,
    ) -> None:
        self.server = server
        self.site_weather = site_weather
        self.metrics = metrics
        server.register("weather.push_digest", self._op_push_digest)

    def _op_push_digest(self, request: AuthenticatedRequest):
        applied = self.site_weather.apply_digest(request.payload)
        if self.metrics is not None:
            self.metrics.counter(
                "weather.digests", site=self.site_weather.site,
                outcome="applied" if applied else "stale",
            ).inc()
        return {"applied": applied}
        yield  # pragma: no cover - marks this function as a generator


class ForecastPusher:
    """Standing process pushing forecast digests to one subscriber site.

    Soft state, exactly as the RLS digest pushers: a lost push (black-
    holed weather plane, dropped message) costs nothing but staleness at
    the subscriber, because every digest is a full snapshot of that
    site's inbound forecasts — the next period's push carries everything
    this one did.
    """

    def __init__(
        self,
        sim: Simulator,
        client: RequestClient,
        station: WeatherStation,
        site: str,
        site_host: str,
        phase: float = 0.0,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.client = client
        self.station = station
        self.site = site
        self.site_host = site_host
        self.phase = phase
        self.metrics = metrics
        self.process: Optional[Process] = None
        self.stats = {"pushes": 0, "pushes_lost": 0, "bytes_pushed": 0}

    def start(self) -> Process:
        self.process = self.sim.spawn(
            self._run(), name=f"weather-pusher@{self.site}"
        )
        return self.process

    def stop(self) -> None:
        if self.process is not None and self.process.is_alive:
            self.process.interrupt("weather-shutdown")

    def running(self) -> bool:
        return self.process is not None and self.process.is_alive

    def push_once(self):
        """Generator: build and push one forecast digest."""
        payload = self.station.digest_for(self.site, self.sim.now)
        size = forecast_wire_size(payload)
        period = self.station.config.push_period
        try:
            yield self.client.call(
                self.site_host,
                "weather.push_digest",
                payload,
                size=REQUEST_MESSAGE_SIZE + size,
                timeout=max(period * 0.5, 1.0),
            )
        except Interrupt:
            raise
        except Exception:
            # lost push (down/black-holed weather plane): the subscriber
            # just ages toward its staleness horizon until one lands
            self.stats["pushes_lost"] += 1
            self._count("lost")
            return False
        self.stats["pushes"] += 1
        self.stats["bytes_pushed"] += size
        self._count("pushed", size)
        return True

    def _run(self):
        try:
            if self.phase > 0:
                yield self.sim.timeout(self.phase)
            while True:
                yield from self.push_once()
                yield self.sim.timeout(self.station.config.push_period)
        except Interrupt:
            return

    def _count(self, outcome: str, size: int = 0) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "weather.pushes", site=self.site, outcome=outcome
        ).inc()
        if size:
            self.metrics.counter(
                "weather.push_bytes", site=self.site
            ).inc(size)


class WeatherRuntime:
    """Everything the grid assembled for weather mode, in one place."""

    def __init__(
        self,
        config: WeatherConfig,
        weather_host: str,
        station: WeatherStation,
        service: WeatherService,
    ) -> None:
        self.config = config
        self.weather_host = weather_host
        self.station = station
        self.service = service
        #: site name -> that site's pushed-forecast cache
        self.site_weather: Dict[str, SiteWeather] = {}
        self.subscribers: Dict[str, WeatherSubscriber] = {}
        self.pushers: Dict[str, ForecastPusher] = {}
        self.started = False

    def start(self) -> None:
        """Spawn the standing forecast pushers (idempotent)."""
        if self.started:
            return
        self.started = True
        for pusher in self.pushers.values():
            pusher.start()

    def stop(self) -> None:
        for pusher in self.pushers.values():
            pusher.stop()
        self.started = False

    def push_stats(self) -> Dict[str, int]:
        totals = {"pushes": 0, "pushes_lost": 0, "bytes_pushed": 0}
        for pusher in self.pushers.values():
            for key in totals:
                totals[key] += pusher.stats[key]
        return totals

    def selection_stats(self) -> Dict[str, int]:
        totals = {
            "digests_applied": 0,
            "digests_stale": 0,
            "history_selections": 0,
            "probe_fallbacks": 0,
        }
        for weather in self.site_weather.values():
            for key in totals:
                totals[key] += weather.stats[key]
        return totals

    def fingerprint(self) -> str:
        """Deterministic digest of station state + push accounting."""
        pushes = ",".join(
            f"{site}:{self.pushers[site].stats['pushes']}"
            f"/{self.pushers[site].stats['pushes_lost']}"
            for site in sorted(self.pushers)
        )
        selection = ",".join(
            f"{site}:{w.stats['history_selections']}"
            f"/{w.stats['probe_fallbacks']}"
            for site, w in sorted(self.site_weather.items())
        )
        return (
            self.station.fingerprint() + "##" + pushes + "##" + selection
        )
