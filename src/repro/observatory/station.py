"""The weather station: grid-wide transfer history, per pair.

:class:`WeatherStation` is the standing observation plane.  It hangs off
the network engine's transfer-retirement hook (every pool that drains or
dies reports ``(src, dst, bytes, duration, ok)``) and folds each report
into that pair's :class:`~repro.observatory.estimators.PairHistory`.
Physically this models the observatory tailing every site's GridFTP
transfer logs — the NWS-style sensor network of [VTF01].

:class:`SiteWeather` is the *site-local* soft-state view the replica
selector actually reads: a cache of per-source forecast digests pushed
by the station (see :mod:`repro.observatory.service`), consulted
synchronously during ranking.  Its staleness contract mirrors the RLS
digests: a fresh entry predicts, a stale or missing entry silently
degrades the ranking to the instantaneous probe path, and reconvergence
is just the next digest landing — no retries, no escalation.

Both classes are purely observational: they draw no random numbers and
schedule no events, so attaching the observatory changes no simulated
outcome, and identical runs yield byte-identical station fingerprints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.netsim.tools import ping
from repro.netsim.topology import RouteError
from repro.observatory.estimators import Forecast, PairHistory, TransferSample

__all__ = ["WeatherConfig", "WeatherStation", "SiteWeather"]


@dataclass(frozen=True)
class WeatherConfig:
    """Opt-in configuration for the grid weather service."""

    #: per-pair ring-buffer depth (oldest samples fall off)
    ring_size: int = 64
    #: EWMA smoothing constant for throughput and RTT
    ewma_alpha: float = 0.3
    #: half-life (sim seconds) of the decayed estimators — idle pairs
    #: lose evidence and confidence at this rate
    half_life: float = 120.0
    #: log2 size bins of the throughput regressor, from ``base_size``
    bins: int = 8
    base_size: float = 1e6
    #: a site-cached forecast older than this is not consulted at all:
    #: selection falls through to the probe ladder
    staleness_horizon: float = 90.0
    #: minimum forecast confidence for history to drive the ranking;
    #: below it the probe estimate wins (the forecast still blends in
    #: proportionally to its confidence)
    min_confidence: float = 0.2
    #: forecast digest push cadence (and stagger base) per subscriber
    push_period: float = 15.0
    #: host carrying the station (defaults to the grid's catalog host)
    weather_host: Optional[str] = None
    #: stagger first pushes across subscribers (fraction of a period)
    stagger: bool = True

    def __post_init__(self):
        if self.push_period <= 0:
            raise ValueError("push_period must be positive")
        if self.staleness_horizon <= 0:
            raise ValueError("staleness_horizon must be positive")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError("min_confidence must be in [0, 1]")


def bin_index(size: float, base_size: float, bins: int) -> int:
    """The regressor's bin for ``size`` (shared with digest readers)."""
    if size <= base_size:
        return 0
    return min(bins - 1, int(math.log2(size / base_size)))


class WeatherStation:
    """Turns transfer retirements into per-pair forecastable history."""

    def __init__(self, config: WeatherConfig, sim, topology=None):
        self.config = config
        self.sim = sim
        #: optional topology for control-channel RTT sightings: each
        #: observed transfer also smooths the pair's current ping (a
        #: passive read of link queues — no events, no draws)
        self.topology = topology
        self.pairs: Dict[Tuple[str, str], PairHistory] = {}
        self.stats = {"observations": 0, "failures": 0}

    def _pair(self, src: str, dst: str) -> PairHistory:
        history = self.pairs.get((src, dst))
        if history is None:
            c = self.config
            history = PairHistory(
                ring_size=c.ring_size, ewma_alpha=c.ewma_alpha,
                half_life=c.half_life, bins=c.bins, base_size=c.base_size,
            )
            self.pairs[(src, dst)] = history
        return history

    # -- feeding (the engine's transfer-retirement hook) -------------------
    def on_transfer(self, src: str, dst: str, nbytes: float,
                    started_at: Optional[float], completed_at: float,
                    ok: bool) -> None:
        duration = (
            completed_at - started_at if started_at is not None else 0.0
        )
        throughput = nbytes / duration if duration > 0 else 0.0
        history = self._pair(src, dst)
        history.observe(TransferSample(
            time=completed_at, size=nbytes, duration=duration,
            throughput=throughput, ok=ok,
        ))
        if ok:
            self.stats["observations"] += 1
            if self.topology is not None:
                try:
                    history.observe_rtt(ping(self.topology, src, dst).rtt)
                except (RouteError, KeyError):
                    pass  # partitioned mid-run; throughput still counts
        else:
            self.stats["failures"] += 1

    # -- asking ------------------------------------------------------------
    def forecast(self, src: str, dst: str, size: float) -> Optional[Forecast]:
        history = self.pairs.get((src, dst))
        if history is None:
            return None
        return history.forecast(size, self.sim.now)

    def digest_for(self, site: str, now: float) -> dict:
        """The forecast digest pushed to one subscriber: every pair
        *inbound* to the site (that is what its replica selector ranks),
        as per-bin means plus the smoothed fallbacks."""
        sources = {}
        for (src, dst) in sorted(self.pairs):
            if dst != site:
                continue
            history = self.pairs[(src, dst)]
            if history.samples == 0:
                continue
            sources[src] = {
                "bins": history.regressor.bin_means(now),
                "ewma": history.ewma.value,
                "rtt": history.rtt.value,
                "confidence": history.confidence(now),
                "samples": history.samples,
            }
        return {"site": site, "as_of": now, "sources": sources}

    def congestion(self, src: str, dst: str) -> Optional[float]:
        """How far below its own best this pair is running, in [0, 1]:
        0 = at peak, 1 = fully starved.  The health report's ranking."""
        history = self.pairs.get((src, dst))
        if history is None or history.ewma.value is None:
            return None
        peak = max((s.throughput for s in history.ring if s.ok), default=0.0)
        if peak <= 0.0:
            return None
        return max(0.0, min(1.0, 1.0 - history.ewma.value / peak))

    def fingerprint(self) -> str:
        """Canonical textual station state — the determinism anchor."""
        lines = [f"weather pairs={len(self.pairs)}"]
        for (src, dst) in sorted(self.pairs):
            h = self.pairs[(src, dst)]
            ewma = f"{h.ewma.value:.3f}" if h.ewma.value is not None else "-"
            lines.append(
                f"{src}->{dst} n={h.samples} fail={h.failures} ewma={ewma}"
            )
        return "\n".join(lines)


class SiteWeather:
    """One site's pushed-forecast cache, read synchronously by ranking."""

    def __init__(self, site: str, config: WeatherConfig, sim):
        self.site = site
        self.config = config
        self.sim = sim
        #: source site -> last applied digest entry, plus its as_of
        self._sources: Dict[str, dict] = {}
        self._as_of: Optional[float] = None
        self.stats = {
            "digests_applied": 0,
            "digests_stale": 0,
            "history_selections": 0,
            "probe_fallbacks": 0,
        }

    # -- feeding (the weather.push_digest handler) -------------------------
    def apply_digest(self, payload: dict) -> bool:
        """Apply one pushed forecast digest; False if out of order."""
        as_of = payload["as_of"]
        if self._as_of is not None and as_of <= self._as_of:
            self.stats["digests_stale"] += 1
            return False
        self._as_of = as_of
        self._sources = dict(payload["sources"])
        self.stats["digests_applied"] += 1
        return True

    # -- asking (synchronous, from inside rank_replicas) -------------------
    @property
    def as_of(self) -> Optional[float]:
        return self._as_of

    def staleness(self) -> float:
        if self._as_of is None:
            return float("inf")
        return max(0.0, self.sim.now - self._as_of)

    def predict(self, src: str, dst: str, size: float) -> Optional[Forecast]:
        """A forecast for pulling ``size`` bytes from ``src``, or None
        when the cache is cold/stale for the pair (probe instead)."""
        if dst != self.site:
            return None  # this cache only covers inbound transfers
        if self.staleness() > self.config.staleness_horizon:
            return None
        entry = self._sources.get(src)
        if entry is None:
            return None
        throughput = self._bin_throughput(entry, size)
        if throughput is None or throughput <= 0.0:
            return None
        # the push itself ages: decay the station-side confidence by the
        # time the digest has been sitting in this cache
        age = self.staleness()
        confidence = entry["confidence"] * (
            0.5 ** (age / self.config.half_life)
        )
        return Forecast(
            throughput=throughput,
            rtt=entry.get("rtt"),
            confidence=confidence,
            samples=entry["samples"],
            staleness=age,
        )

    def _bin_throughput(self, entry: dict, size: float) -> Optional[float]:
        bins = entry["bins"]
        home = bin_index(size, self.config.base_size, self.config.bins)
        for distance in range(len(bins)):
            for idx in (home - distance, home + distance):
                if 0 <= idx < len(bins) and bins[idx] is not None:
                    return bins[idx]
        return entry.get("ewma")

    def note_selection(self, basis: str) -> None:
        """Ranking provenance counters (the degradation signal)."""
        if basis == "history":
            self.stats["history_selections"] += 1
        else:
            self.stats["probe_fallbacks"] += 1
