"""User, host, and proxy credentials.

A :class:`Credential` bundles a certificate chain with the private key of
the leaf certificate.  ``create_proxy`` implements GSI single sign-on: a
short-lived key pair is generated and its certificate is signed by the
current leaf, so subsequent authentications never touch the long-lived key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.security.ca import (
    Certificate,
    CertificateAuthority,
    CertificateError,
    _make_cert,
    verify_chain,
)
from repro.security.keys import KeyPair

__all__ = ["Credential", "ProxyCredential", "CredentialError", "new_user_credential"]

DEFAULT_PROXY_LIFETIME = 12 * 3600.0  # grid-proxy-init default: 12 hours


class CredentialError(Exception):
    """Credential misuse (expired proxy, missing key, ...)."""


@dataclass
class Credential:
    """A certificate chain plus the leaf private key."""

    chain: list[Certificate]
    keys: KeyPair

    @property
    def certificate(self) -> Certificate:
        return self.chain[0]

    @property
    def subject(self) -> str:
        return self.chain[0].subject

    @property
    def identity(self) -> str:
        """The end-entity DN, regardless of proxy depth."""
        return self.chain[-1].subject

    def check(self, now: float) -> None:
        """Raise CertificateError unless every chain link is valid at ``now``."""
        for cert in self.chain:
            cert.check_validity(now)

    def create_proxy(
        self,
        now: float,
        lifetime: float = DEFAULT_PROXY_LIFETIME,
    ) -> "ProxyCredential":
        """Single sign-on: derive a short-lived proxy credential."""
        self.check(now)
        proxy_keys = KeyPair.generate()
        proxy_cert = _make_cert(
            subject=self.certificate.subject + "/CN=proxy",
            public_key=proxy_keys.public,
            issuer_dn=self.certificate.subject,
            issuer_keys=self.keys,
            valid_from=now,
            valid_until=now + lifetime,
            is_proxy=True,
        )
        return ProxyCredential(chain=[proxy_cert, *self.chain], keys=proxy_keys)


@dataclass
class ProxyCredential(Credential):
    """A delegatable short-lived credential (the product of proxy init)."""

    delegation_depth: int = field(default=1)

    def delegate(self, now: float, lifetime: float | None = None) -> "ProxyCredential":
        """Create a further-restricted proxy for a remote service (GSI
        delegation: the lifetime can never exceed the parent proxy's)."""
        remaining = self.certificate.valid_until - now
        if remaining <= 0:
            raise CredentialError("cannot delegate from an expired proxy")
        lifetime = remaining if lifetime is None else min(lifetime, remaining)
        child = self.create_proxy(now, lifetime)
        return ProxyCredential(
            chain=child.chain,
            keys=child.keys,
            delegation_depth=self.delegation_depth + 1,
        )


def new_user_credential(
    ca: CertificateAuthority,
    subject: str,
    now: float = 0.0,
    lifetime: float = 365 * 86400.0,
) -> Credential:
    """Issue a fresh long-lived end-entity credential from ``ca``."""
    keys = KeyPair.generate()
    cert = ca.issue(subject, keys.public, valid_from=now, lifetime=lifetime)
    return Credential(chain=[cert], keys=keys)


def authenticate_chain(
    credential_chain: list[Certificate],
    trusted_cas: list[CertificateAuthority],
    now: float,
) -> str:
    """Verify a presented chain; returns the authenticated identity DN."""
    try:
        return verify_chain(credential_chain, trusted_cas, now)
    except CertificateError:
        raise
