"""GSI mutual authentication (the GSS-API handshake, abstracted).

The handshake exchanges certificate chains and challenge signatures in both
directions.  On success each side learns the *authenticated identity* of its
peer.  The wire cost is two round trips (``HANDSHAKE_ROUND_TRIPS``), which
the request manager and GridFTP control channel charge against the
simulated network — this is part of the per-transfer setup overhead that
flattens the 1 MB curve in Figure 5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.security.ca import CertificateAuthority, CertificateError, verify_chain
from repro.security.credentials import Credential
from repro.security.keys import verify

__all__ = [
    "AuthenticationError",
    "SecurityContext",
    "mutual_authenticate",
    "HANDSHAKE_ROUND_TRIPS",
]

#: Control-channel round trips consumed by the GSI handshake.
HANDSHAKE_ROUND_TRIPS = 2

_challenge_counter = itertools.count(1)


class AuthenticationError(Exception):
    """Mutual authentication failed."""


@dataclass(frozen=True)
class SecurityContext:
    """An established, mutually-authenticated security context."""

    local_subject: str
    peer_subject: str
    peer_identity: str
    established_at: float

    def sign(self, credential: Credential, message: str) -> str:
        """Sign a message with the local credential of this context."""
        if credential.subject != self.local_subject:
            raise AuthenticationError("signing with a foreign credential")
        return credential.keys.sign(message)


def _authenticate_one_side(
    presenter: Credential,
    verifier_trust: list[CertificateAuthority],
    now: float,
) -> str:
    """One direction of the handshake: chain check + proof of possession."""
    try:
        identity = verify_chain(presenter.chain, verifier_trust, now)
    except CertificateError as exc:
        raise AuthenticationError(str(exc)) from exc
    challenge = f"challenge-{next(_challenge_counter)}"
    signature = presenter.keys.sign(challenge)
    if not verify(presenter.certificate.public_key, challenge, signature):
        raise AuthenticationError(
            f"{presenter.subject!r} failed proof of key possession"
        )
    return identity


def mutual_authenticate(
    initiator: Credential,
    acceptor: Credential,
    trusted_cas: list[CertificateAuthority],
    now: float,
) -> tuple[SecurityContext, SecurityContext]:
    """Run the handshake; returns (initiator_context, acceptor_context).

    Both sides trust the same CA list here (one virtual organization);
    raising :class:`AuthenticationError` on any chain or possession failure.
    """
    acceptor_identity = _authenticate_one_side(acceptor, trusted_cas, now)
    initiator_identity = _authenticate_one_side(initiator, trusted_cas, now)
    initiator_ctx = SecurityContext(
        local_subject=initiator.subject,
        peer_subject=acceptor.subject,
        peer_identity=acceptor_identity,
        established_at=now,
    )
    acceptor_ctx = SecurityContext(
        local_subject=acceptor.subject,
        peer_subject=initiator.subject,
        peer_identity=initiator_identity,
        established_at=now,
    )
    return initiator_ctx, acceptor_ctx
