"""Certificate authority and X.509-style certificates."""

from __future__ import annotations

from dataclasses import dataclass
from repro.security.keys import KeyPair, verify

__all__ = ["Certificate", "CertificateAuthority", "CertificateError"]


class CertificateError(Exception):
    """Invalid, expired, or untrusted certificate."""


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject DN to a public key.

    ``issuer`` is the signer's DN; ``issuer_public`` its public key, so a
    verifier can walk the chain without a directory lookup.  Validity is in
    simulation seconds.
    """

    subject: str
    public_key: str
    issuer: str
    issuer_public: str
    valid_from: float
    valid_until: float
    signature: str
    is_proxy: bool = False

    def signed_payload(self) -> str:
        """The canonical string the signature covers."""
        return "|".join(
            [
                self.subject,
                self.public_key,
                self.issuer,
                f"{self.valid_from:.6f}",
                f"{self.valid_until:.6f}",
                "proxy" if self.is_proxy else "eec",
            ]
        )

    def check_signature(self) -> bool:
        """Whether the issuer's signature verifies."""
        return verify(self.issuer_public, self.signed_payload(), self.signature)

    def check_validity(self, now: float) -> None:
        """Raise CertificateError unless signed and within validity at ``now``."""
        if not self.check_signature():
            raise CertificateError(f"bad signature on {self.subject!r}")
        if now < self.valid_from:
            raise CertificateError(f"certificate for {self.subject!r} not yet valid")
        if now > self.valid_until:
            raise CertificateError(f"certificate for {self.subject!r} expired")


def _make_cert(
    subject: str,
    public_key: str,
    issuer_dn: str,
    issuer_keys: KeyPair,
    valid_from: float,
    valid_until: float,
    is_proxy: bool,
) -> Certificate:
    unsigned = Certificate(
        subject=subject,
        public_key=public_key,
        issuer=issuer_dn,
        issuer_public=issuer_keys.public,
        valid_from=valid_from,
        valid_until=valid_until,
        signature="",
        is_proxy=is_proxy,
    )
    return Certificate(
        **{**unsigned.__dict__, "signature": issuer_keys.sign(unsigned.signed_payload())}
    )


class CertificateAuthority:
    """A root of trust that issues end-entity certificates."""

    def __init__(self, name: str = "/C=CH/O=TestGrid/CN=Grid CA"):
        self.name = name
        self.keys = KeyPair.generate()
        self.certificate = _make_cert(
            subject=name,
            public_key=self.keys.public,
            issuer_dn=name,
            issuer_keys=self.keys,
            valid_from=0.0,
            valid_until=float("inf"),
            is_proxy=False,
        )

    def issue(
        self,
        subject: str,
        public_key: str,
        valid_from: float = 0.0,
        lifetime: float = 365 * 86400.0,
    ) -> Certificate:
        """Issue an end-entity certificate for a subject's public key."""
        if not subject.startswith("/"):
            raise ValueError(f"subject DN must start with '/': {subject!r}")
        return _make_cert(
            subject=subject,
            public_key=public_key,
            issuer_dn=self.name,
            issuer_keys=self.keys,
            valid_from=valid_from,
            valid_until=valid_from + lifetime,
            is_proxy=False,
        )

    def issue_proxy_cert(
        self,
        parent_cert: Certificate,
        parent_keys: KeyPair,
        proxy_public: str,
        valid_from: float,
        lifetime: float,
    ) -> Certificate:
        """Sign a proxy certificate with the *parent's* key (not the CA's) —
        this is what makes GSI proxies single-sign-on: no CA involvement."""
        return _make_cert(
            subject=parent_cert.subject + "/CN=proxy",
            public_key=proxy_public,
            issuer_dn=parent_cert.subject,
            issuer_keys=parent_keys,
            valid_from=valid_from,
            valid_until=valid_from + lifetime,
            is_proxy=True,
        )


def verify_chain(
    chain: list[Certificate],
    trusted_cas: list[CertificateAuthority],
    now: float,
) -> str:
    """Validate a certificate chain ``[leaf, ..., end-entity]`` and return
    the authenticated *identity* DN (the end-entity subject — proxies
    inherit the identity of the credential that signed them).

    Raises :class:`CertificateError` on any failure.
    """
    if not chain:
        raise CertificateError("empty certificate chain")
    trusted = {ca.name: ca.keys.public for ca in trusted_cas}
    for cert in chain:
        cert.check_validity(now)
    for child, parent in zip(chain, chain[1:]):
        if child.issuer != parent.subject or child.issuer_public != parent.public_key:
            raise CertificateError(
                f"broken chain: {child.subject!r} not issued by {parent.subject!r}"
            )
        if not child.is_proxy:
            raise CertificateError(
                f"non-proxy certificate {child.subject!r} issued by a non-CA"
            )
    root = chain[-1]
    if trusted.get(root.issuer) != root.issuer_public:
        raise CertificateError(f"issuer {root.issuer!r} is not a trusted CA")
    if root.is_proxy:
        raise CertificateError("chain terminates in a proxy, not an end entity")
    return root.subject
