"""Grid Security Infrastructure (GSI) substrate.

The paper: "Every client request to a GDMP server is authenticated and
authorized by a security service.  GDMP uses the Globus Security
Infrastructure (GSI), which provides single sign-on capabilities for Grid
resources."

This package reproduces GSI *semantics* — certificate chains rooted in
trusted CAs, short-lived proxy credentials created from a user credential
(single sign-on), proxy-to-proxy delegation, mutual authentication, and
gridmap-file authorization — over a simulated public-key scheme (see
:mod:`repro.security.keys`; no real cryptography, by design).
"""

from repro.security.ca import Certificate, CertificateAuthority, CertificateError
from repro.security.credentials import (
    Credential,
    CredentialError,
    ProxyCredential,
    new_user_credential,
)
from repro.security.gridmap import AuthorizationError, GridMap
from repro.security.gsi import (
    AuthenticationError,
    SecurityContext,
    mutual_authenticate,
)
from repro.security.keys import KeyPair, sign, verify

__all__ = [
    "AuthenticationError",
    "AuthorizationError",
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "Credential",
    "CredentialError",
    "GridMap",
    "KeyPair",
    "ProxyCredential",
    "SecurityContext",
    "mutual_authenticate",
    "new_user_credential",
    "sign",
    "verify",
]
