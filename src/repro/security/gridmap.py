"""Gridmap-file authorization: DN -> local account mapping.

After GSI authentication establishes *who* the peer is, the gridmap decides
*whether* (and as which local account) they may use the service — exactly
the authorization step every GDMP client request passes through.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["AuthorizationError", "GridMap"]


class AuthorizationError(Exception):
    """Subject is not authorized for the requested service."""


class GridMap:
    """An in-memory gridmap file."""

    def __init__(self, entries: Optional[dict[str, str]] = None):
        self._entries: dict[str, str] = dict(entries or {})

    def add(self, subject_dn: str, local_user: str) -> None:
        """Map a subject DN to a local account."""
        if not subject_dn.startswith("/"):
            raise ValueError(f"subject DN must start with '/': {subject_dn!r}")
        self._entries[subject_dn] = local_user

    def remove(self, subject_dn: str) -> None:
        """Remove a subject's mapping (no-op when absent)."""
        self._entries.pop(subject_dn, None)

    def authorize(self, identity_dn: str) -> str:
        """Map an authenticated identity to a local account, or raise."""
        try:
            return self._entries[identity_dn]
        except KeyError:
            raise AuthorizationError(
                f"identity {identity_dn!r} not present in gridmap"
            ) from None

    def is_authorized(self, identity_dn: str) -> bool:
        """Whether the identity has a mapping."""
        return identity_dn in self._entries

    @property
    def subjects(self) -> tuple[str, ...]:
        return tuple(self._entries)

    @classmethod
    def parse(cls, text: str) -> "GridMap":
        """Parse classic gridmap syntax: ``"/DN" account`` per line."""
        gridmap = cls()
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            if not line.startswith('"'):
                raise ValueError(f"malformed gridmap line: {raw_line!r}")
            closing = line.index('"', 1)
            dn = line[1:closing]
            account = line[closing + 1 :].strip()
            if not account:
                raise ValueError(f"missing account in gridmap line: {raw_line!r}")
            gridmap.add(dn, account)
        return gridmap
