"""Simulated public-key scheme.

NOT CRYPTOGRAPHY.  The simulation needs public-key *semantics* — only the
private key can produce a signature, anyone holding the public key can check
it — without shipping real crypto.  We model the underlying mathematics with
a module-level registry mapping each public key to its private counterpart:
``verify`` consults the registry the way real verification consults number
theory.  Code under test only ever holds the public half, so the access
pattern (and therefore every protocol bug we could make) matches real GSI.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass

__all__ = ["KeyPair", "sign", "verify"]

#: The "mathematics": public key -> private key.  Populated at key
#: generation; consulted only by :func:`verify`.
_KEYSPACE: dict[str, str] = {}


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@dataclass(frozen=True)
class KeyPair:
    """A simulated asymmetric key pair."""

    public: str
    private: str

    @classmethod
    def generate(cls) -> "KeyPair":
        private = secrets.token_hex(16)
        public = _digest("public-of", private)
        _KEYSPACE[public] = private
        return cls(public=public, private=private)

    def sign(self, data: str) -> str:
        """Signature over ``data`` with this pair's private key."""
        return sign(self.private, data)


def sign(private_key: str, data: str) -> str:
    """Produce a signature over ``data`` with ``private_key``."""
    return _digest("signature", private_key, data)


def verify(public_key: str, data: str, signature: str) -> bool:
    """Check ``signature`` over ``data`` against ``public_key``.

    Returns False for unknown keys, tampered data, or forged signatures.
    """
    private = _KEYSPACE.get(public_key)
    if private is None:
        return False
    return signature == _digest("signature", private, data)
