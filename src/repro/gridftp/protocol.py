"""GridFTP control-channel protocol: commands, replies, features.

The extension commands are the real ones: ``SBUF`` (set socket buffer,
RFC draft / GridFTP spec), ``OPTS RETR Parallelism=n`` (parallel streams),
``REST`` (restart offset), ``ERET``/``ESTO`` (partial transfer), ``SPAS``/
``SPOR`` (striped data channels), plus classic FTP verbs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ProtocolError", "Command", "Reply", "FEATURES", "CONTROL_MESSAGE_SIZE"]

#: Bytes per control message on the wire (commands and replies are short).
CONTROL_MESSAGE_SIZE = 128

#: FEAT response of our server — the paper's feature list.
FEATURES = (
    "AUTH GSSAPI",
    "PARALLEL",
    "SBUF",
    "REST STREAM",
    "ERET",
    "ESTO",
    "SPAS",
    "SPOR",
    "MDTM",
    "SIZE",
    "PERF",
    "DCAU",
)

KNOWN_COMMANDS = {
    "AUTH",
    "ADAT",
    "USER",
    "PASS",
    "FEAT",
    "SBUF",
    "OPTS",
    "PASV",
    "SPAS",
    "PORT",
    "SPOR",
    "REST",
    "RETR",
    "STOR",
    "ERET",
    "ESTO",
    "SIZE",
    "MDTM",
    "CKSM",
    "DELE",
    "ABOR",
    "QUIT",
}


class ProtocolError(Exception):
    """Malformed command or protocol-violating sequence."""


@dataclass(frozen=True)
class Command:
    """One control-channel command."""

    verb: str
    argument: str = ""
    session: str = ""
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.verb not in KNOWN_COMMANDS:
            raise ProtocolError(f"unknown command verb {self.verb!r}")

    def __str__(self) -> str:
        return f"{self.verb} {self.argument}".strip()


@dataclass(frozen=True)
class Reply:
    """One control-channel reply: three-digit code plus text/payload."""

    code: int
    text: str = ""
    payload: Any = None

    @property
    def is_preliminary(self) -> bool:
        return 100 <= self.code < 200

    @property
    def is_success(self) -> bool:
        return 200 <= self.code < 300

    @property
    def is_intermediate(self) -> bool:
        return 300 <= self.code < 400

    @property
    def is_transient_error(self) -> bool:
        return 400 <= self.code < 500

    @property
    def is_error(self) -> bool:
        return self.code >= 400

    def __str__(self) -> str:
        return f"{self.code} {self.text}"


# Common replies, named for readability at call sites.
def ready() -> Reply:
    """220: service ready banner."""
    return Reply(220, "GridFTP server ready (GSI)")


def auth_ok(subject: str) -> Reply:
    """235: GSSAPI authentication succeeded."""
    return Reply(235, f"GSSAPI authentication succeeded for {subject}")


def auth_continue() -> Reply:
    """335: more ADAT data required."""
    return Reply(335, "ADAT continue")


def logged_in(account: str) -> Reply:
    """230: user mapped and logged in."""
    return Reply(230, f"User {account} logged in")


def opening(text: str = "Opening data connection") -> Reply:
    """150: preliminary reply, data connection opening."""
    return Reply(150, text)


def ok(text: str = "Command okay", payload: Any = None) -> Reply:
    """200: command okay."""
    return Reply(200, text, payload)


def closing(payload: Any = None) -> Reply:
    """226: transfer complete, closing data connection."""
    return Reply(226, "Transfer complete", payload)


def aborted(text: str, payload: Any = None) -> Reply:
    """426: data connection closed, transfer aborted."""
    return Reply(426, text, payload)


def denied(text: str) -> Reply:
    """530: authentication/authorization failure."""
    return Reply(530, text)


def not_found(text: str) -> Reply:
    """550: requested file unavailable."""
    return Reply(550, text)


def bad_sequence(text: str) -> Reply:
    """503: command out of sequence (e.g. no session)."""
    return Reply(503, text)
