"""gsiftp:// URL handling and the ``globus_url_copy`` scripting tool.

§3.2: "A full-featured command line tool appropriate for scripting called
globus_url_copy is provided."  Here it is a simulation coroutine that
connects, negotiates buffers/streams, transfers, and disconnects — the same
sequence the real tool drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gridftp.client import GridFTPClient, TransferError, TransferResult
from repro.simulation.kernel import Process

__all__ = ["GridFTPUrl", "parse_url", "globus_url_copy"]

DEFAULT_PORT = 2811


@dataclass(frozen=True)
class GridFTPUrl:
    """A parsed ``gsiftp://host[:port]/path`` or ``file:///path`` URL."""

    scheme: str
    host: str
    port: int
    path: str

    def __str__(self) -> str:
        if self.scheme == "file":
            return f"file://{self.path}"
        return f"{self.scheme}://{self.host}:{self.port}{self.path}"


def parse_url(url: str) -> GridFTPUrl:
    """Parse a gsiftp:// or file:// URL; raises ValueError when malformed."""
    if "://" not in url:
        raise ValueError(f"not a URL: {url!r}")
    scheme, rest = url.split("://", 1)
    if scheme == "file":
        if not rest.startswith("/"):
            raise ValueError(f"file URL must carry an absolute path: {url!r}")
        return GridFTPUrl(scheme="file", host="", port=0, path=rest)
    if scheme != "gsiftp":
        raise ValueError(f"unsupported scheme {scheme!r}")
    if "/" not in rest:
        raise ValueError(f"missing path in {url!r}")
    authority, path = rest.split("/", 1)
    path = "/" + path
    if ":" in authority:
        host, port_text = authority.split(":", 1)
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"bad port in {url!r}") from None
    else:
        host, port = authority, DEFAULT_PORT
    if not host:
        raise ValueError(f"missing host in {url!r}")
    return GridFTPUrl(scheme="gsiftp", host=host, port=port, path=path)


def globus_url_copy(
    client: GridFTPClient,
    src_url: str,
    dst_url: str,
    streams: int = 1,
    tcp_buffer: Optional[int] = None,
) -> Process:
    """Copy ``src_url`` to ``dst_url``; returns a process yielding a
    :class:`TransferResult`.

    Supported forms (as with the real tool):

    * ``gsiftp://A/p  ->  file:///q``    — get to the client's site
    * ``file:///p     ->  gsiftp://B/q`` — put from the client's site
    * ``gsiftp://A/p  ->  gsiftp://B/q`` — third-party transfer
    """
    src = parse_url(src_url)
    dst = parse_url(dst_url)
    sim = client.sim

    def run():
        if src.scheme == "gsiftp" and dst.scheme == "file":
            session = yield client.connect(src.host)
            try:
                if tcp_buffer is not None:
                    yield client.set_buffer(session, tcp_buffer)
                if streams != 1:
                    yield client.set_parallelism(session, streams)
                result = yield client.get(session, src.path, dst.path)
            finally:
                yield client.quit(session)
            return result
        if src.scheme == "file" and dst.scheme == "gsiftp":
            session = yield client.connect(dst.host)
            try:
                if tcp_buffer is not None:
                    yield client.set_buffer(session, tcp_buffer)
                if streams != 1:
                    yield client.set_parallelism(session, streams)
                result = yield client.put(session, src.path, dst.path)
            finally:
                yield client.quit(session)
            return result
        if src.scheme == "gsiftp" and dst.scheme == "gsiftp":
            src_session = yield client.connect(src.host)
            dst_session = yield client.connect(dst.host)
            try:
                if tcp_buffer is not None:
                    yield client.set_buffer(src_session, tcp_buffer)
                if streams != 1:
                    yield client.set_parallelism(src_session, streams)
                result = yield client.third_party_transfer(
                    src_session, dst_session, src.path, dst.path
                )
            finally:
                yield client.quit(src_session)
                yield client.quit(dst_session)
            return result
        raise TransferError(f"unsupported URL pair {src_url!r} -> {dst_url!r}")

    return sim.spawn(run(), name=f"globus-url-copy {src_url}")
