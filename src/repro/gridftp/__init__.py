"""GridFTP: the secure, high-performance transfer substrate (§3.2).

Protocol features reproduced from the paper's list:

* GSI security on the control channel;
* third-party control of data transfer;
* parallel data transfer (one host to one host, multiple TCP streams);
* striped data transfer (m hosts to n hosts);
* partial file transfer;
* (automatic) negotiation of TCP buffer/window sizes;
* reliable and restartable data transfer (restart markers);
* integrated instrumentation (performance markers).

:class:`~repro.gridftp.server.GridFTPServer` runs one wuftpd-style daemon
per site; :class:`~repro.gridftp.client.GridFTPClient` is the
``globus_ftp_client`` equivalent, and :func:`~repro.gridftp.url.globus_url_copy`
the scripting tool.
"""

from repro.gridftp.client import GridFTPClient, TransferError, TransferResult
from repro.gridftp.markers import PerfMarker, RangeSet, RestartMarker
from repro.gridftp.protocol import (
    FEATURES,
    Command,
    ProtocolError,
    Reply,
)
from repro.gridftp.server import FailureInjector, GridFTPServer
from repro.gridftp.transfer import open_striped_transfer
from repro.gridftp.url import GridFTPUrl, globus_url_copy, parse_url

__all__ = [
    "Command",
    "FEATURES",
    "FailureInjector",
    "GridFTPClient",
    "GridFTPServer",
    "GridFTPUrl",
    "PerfMarker",
    "ProtocolError",
    "RangeSet",
    "Reply",
    "RestartMarker",
    "TransferError",
    "TransferResult",
    "globus_url_copy",
    "open_striped_transfer",
    "parse_url",
]
