"""The GridFTP server daemon (the wuftpd-derived server of §3.2).

One server runs per site.  The control channel is a mailbox on the site's
message network; each client session is GSI-authenticated and
gridmap-authorized before any file command is accepted.  Data transfers run
as parallel TCP flows on the shared :class:`~repro.netsim.engine.NetworkEngine`,
with restart/performance markers streamed back as preliminary replies.

A :class:`FailureInjector` can abort a transfer after N delivered bytes or
corrupt the next transfer of a path — the failure modes GDMP's data mover
must recover from (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gridftp import protocol
from repro.gridftp.markers import PerfMarker, RangeSet, RestartMarker
from repro.gridftp.protocol import CONTROL_MESSAGE_SIZE, Command, Reply
from repro.netsim.channels import Envelope, MessageNetwork
from repro.netsim.engine import NetworkEngine, TransferAborted
from repro.netsim.tcp import TcpParams
from repro.netsim.topology import Host
from repro.netsim.units import KiB
from repro.security.ca import CertificateAuthority, CertificateError, verify_chain
from repro.security.credentials import Credential
from repro.security.gridmap import AuthorizationError, GridMap
from repro.simulation.kernel import Simulator
from repro.simulation.monitor import Monitor
from repro.storage.filesystem import FileSystem, StorageError

__all__ = ["GridFTPServer", "FailureInjector", "TransferDescriptor"]

#: How often the server emits performance markers during a transfer.
PERF_MARKER_INTERVAL = 5.0


@dataclass(frozen=True)
class TransferDescriptor:
    """What the data channel delivers (content identity, not raw bytes)."""

    path: str
    size: float
    content_id: str
    crc: int
    payload: object = None
    attrs: dict = field(default_factory=dict)


@dataclass
class _Session:
    session_id: str
    client_host: str
    reply_service: str
    subject: str = ""
    identity: str = ""
    account: str = ""
    authenticated: bool = False
    auth_started: bool = False
    buffer: int = 64 * KiB
    parallelism: int = 1
    restart: RangeSet = field(default_factory=RangeSet)
    client_write_rate: float = float("inf")


class FailureInjector:
    """Deterministic failure injection for a server's transfers."""

    def __init__(self) -> None:
        self._abort_after: dict[str, float] = {}
        self._corrupt_next: set[str] = set()

    def abort_after_bytes(self, path: str, nbytes: float) -> None:
        """One-shot: the next transfer of ``path`` dies after ``nbytes``."""
        self._abort_after[path] = nbytes

    def corrupt_next(self, path: str) -> None:
        """One-shot: the next transfer of ``path`` arrives corrupted."""
        self._corrupt_next.add(path)

    def take_abort(self, path: str) -> Optional[float]:
        """Consume a pending abort threshold for a path, if armed."""
        return self._abort_after.pop(path, None)

    def take_corruption(self, path: str) -> bool:
        """Consume a pending corruption for a path, if armed."""
        if path in self._corrupt_next:
            self._corrupt_next.remove(path)
            return True
        return False


class GridFTPServer:
    """A site's GridFTP daemon."""

    SERVICE = "gridftp"

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        engine: NetworkEngine,
        host: Host,
        filesystem: FileSystem,
        credential: Credential,
        trusted_cas: list[CertificateAuthority],
        gridmap: GridMap,
        default_buffer: int = 64 * KiB,
        max_parallelism: int = 16,
        data_nodes: tuple[str, ...] = (),
    ):
        self.sim = sim
        self.msgnet = msgnet
        self.engine = engine
        self.host = host
        self.fs = filesystem
        self.credential = credential
        self.trusted_cas = trusted_cas
        self.gridmap = gridmap
        self.default_buffer = default_buffer
        self.max_parallelism = max_parallelism
        #: additional stripe hosts sharing this server's filesystem (SPAS
        #: mode: "striped data transfer (m hosts to n hosts)"); data
        #: channels are opened from every stripe host in parallel.
        self.data_nodes = tuple(data_nodes)
        self.failures = FailureInjector()
        self.monitor = Monitor()
        self._sessions: dict[str, _Session] = {}
        self._session_counter = 0
        self._mailbox = msgnet.register(host, self.SERVICE)
        sim.spawn(self._serve(), name=f"gridftpd@{host.name}")

    # -- main loop -----------------------------------------------------------
    def _serve(self):
        while True:
            envelope = yield self._mailbox.get()
            self.sim.spawn(
                self._handle(envelope), name=f"gridftp-req@{self.host.name}"
            )

    def _reply(self, session: _Session, request_id: int, reply: Reply):
        return self.msgnet.send(
            self.host,
            session.client_host,
            session.reply_service,
            payload=(request_id, reply),
            size=CONTROL_MESSAGE_SIZE,
        )

    def _handle(self, envelope: Envelope):
        request_id, command = envelope.payload
        assert isinstance(command, Command)
        self.monitor.count(f"cmd_{command.verb}")
        if command.verb == "AUTH":
            yield from self._cmd_auth(envelope, request_id, command)
            return
        session = self._sessions.get(command.session)
        if session is None:
            # No session: reply straight to the envelope's return address.
            self.msgnet.send(
                self.host,
                envelope.src,
                command.extras.get("reply_service", "gridftp-client"),
                payload=(request_id, protocol.bad_sequence("no such session")),
                size=CONTROL_MESSAGE_SIZE,
            )
            return
        if command.verb == "ADAT":
            yield from self._cmd_adat(session, request_id, command)
            return
        if not session.authenticated:
            yield self._reply(
                session, request_id, protocol.denied("authenticate first")
            )
            return
        handler = getattr(self, f"_cmd_{command.verb.lower()}", None)
        if handler is None:
            yield self._reply(
                session, request_id, Reply(502, f"{command.verb} not implemented")
            )
            return
        yield from handler(session, request_id, command)

    # -- authentication ----------------------------------------------------------
    def _cmd_auth(self, envelope: Envelope, request_id: int, command: Command):
        """AUTH GSSAPI: allocate a session, ask for ADAT (round trip 1)."""
        self._session_counter += 1
        session = _Session(
            session_id=f"{self.host.name}-{self._session_counter}",
            client_host=envelope.src,
            reply_service=command.extras["reply_service"],
        )
        session.auth_started = True
        self._sessions[session.session_id] = session
        yield self.msgnet.send(
            self.host,
            session.client_host,
            session.reply_service,
            payload=(
                request_id,
                Reply(334, "ADAT must follow", payload=session.session_id),
            ),
            size=CONTROL_MESSAGE_SIZE,
        )

    def _cmd_adat(self, session: _Session, request_id: int, command: Command):
        """ADAT <chain>: verify the client chain, authorize, log in (RT 2)."""
        chain = command.extras.get("chain")
        try:
            if chain is None:
                raise CertificateError("no credential presented")
            identity = verify_chain(chain, self.trusted_cas, self.sim.now)
            account = self.gridmap.authorize(identity)
        except (CertificateError, AuthorizationError) as exc:
            self.monitor.count("auth_failures")
            del self._sessions[session.session_id]
            yield self._reply(session, request_id, protocol.denied(str(exc)))
            return
        session.subject = chain[0].subject
        session.identity = identity
        session.account = account
        session.authenticated = True
        session.buffer = self.default_buffer
        self.monitor.count("auth_successes")
        yield self._reply(
            session,
            request_id,
            Reply(
                235,
                f"GSSAPI authentication succeeded; user {account} logged in",
                payload={"session": session.session_id, "account": account,
                         "server_subject": self.credential.subject},
            ),
        )

    # -- simple commands ------------------------------------------------------------
    def _cmd_feat(self, session: _Session, request_id: int, command: Command):
        yield self._reply(
            session, request_id, Reply(211, "Extensions supported",
                                       payload=protocol.FEATURES)
        )

    def _cmd_sbuf(self, session: _Session, request_id: int, command: Command):
        try:
            size = int(command.argument)
            if size < 1460:
                raise ValueError
        except ValueError:
            yield self._reply(session, request_id, Reply(501, "bad buffer size"))
            return
        session.buffer = size
        yield self._reply(session, request_id, protocol.ok(f"SBUF {size}"))

    def _cmd_opts(self, session: _Session, request_id: int, command: Command):
        arg = command.argument.strip()
        if arg.upper().startswith("RETR PARALLELISM="):
            try:
                n = int(arg.split("=", 1)[1].rstrip(";"))
                if not 1 <= n <= self.max_parallelism:
                    raise ValueError
            except ValueError:
                yield self._reply(session, request_id, Reply(501, "bad parallelism"))
                return
            session.parallelism = n
            yield self._reply(session, request_id, protocol.ok(f"Parallelism={n}"))
            return
        yield self._reply(session, request_id, Reply(501, f"unknown OPTS {arg!r}"))

    def _cmd_rest(self, session: _Session, request_id: int, command: Command):
        try:
            session.restart = RangeSet.from_rest_argument(command.argument)
        except ValueError as exc:
            yield self._reply(session, request_id, Reply(501, str(exc)))
            return
        yield self._reply(
            session, request_id, Reply(350, "Restart marker accepted")
        )

    def _cmd_size(self, session: _Session, request_id: int, command: Command):
        try:
            stored = self.fs.stat(command.argument)
        except StorageError as exc:
            yield self._reply(session, request_id, protocol.not_found(str(exc)))
            return
        yield self._reply(
            session, request_id, Reply(213, f"{stored.size:.0f}", payload=stored.size)
        )

    def _cmd_mdtm(self, session: _Session, request_id: int, command: Command):
        try:
            stored = self.fs.stat(command.argument)
        except StorageError as exc:
            yield self._reply(session, request_id, protocol.not_found(str(exc)))
            return
        yield self._reply(
            session, request_id,
            Reply(213, f"{stored.created_at:.6f}", payload=stored.created_at),
        )

    def _cmd_cksm(self, session: _Session, request_id: int, command: Command):
        """CKSM CRC32 — the extra end-to-end check GDMP layers on TCP."""
        try:
            stored = self.fs.stat(command.argument)
        except StorageError as exc:
            yield self._reply(session, request_id, protocol.not_found(str(exc)))
            return
        yield self._reply(
            session, request_id, Reply(213, f"{stored.crc}", payload=stored.crc)
        )

    def _cmd_abor(self, session: _Session, request_id: int, command: Command):
        yield self._reply(session, request_id, Reply(226, "ABOR processed"))

    def _cmd_quit(self, session: _Session, request_id: int, command: Command):
        self._sessions.pop(session.session_id, None)
        yield self._reply(session, request_id, Reply(221, "Goodbye"))

    # -- data transfer ------------------------------------------------------------
    def _cmd_retr(self, session: _Session, request_id: int, command: Command):
        yield from self._send_file(
            session, request_id, command, offset=0.0, length=None
        )

    def _cmd_eret(self, session: _Session, request_id: int, command: Command):
        """Partial file transfer: ERET P <offset> <length> <path>."""
        offset = float(command.extras.get("offset", 0.0))
        length = command.extras.get("length")
        if length is not None:
            length = float(length)
        yield from self._send_file(session, request_id, command, offset, length)

    def _send_file(self, session, request_id, command, offset, length):
        path = command.argument
        try:
            stored = self.fs.stat(path)
        except StorageError as exc:
            yield self._reply(session, request_id, protocol.not_found(str(exc)))
            return
        if offset < 0 or offset > stored.size:
            yield self._reply(session, request_id, Reply(501, "bad offset"))
            return
        total = stored.size - offset if length is None else min(
            length, stored.size - offset
        )
        already = session.restart.total
        remaining = max(total - already, 0.0)
        session.restart = RangeSet()  # REST applies to one transfer only

        content_id = stored.content_id
        if self.failures.take_corruption(path):
            content_id = "corrupted:" + content_id
            self.monitor.count("corrupted_transfers")
        if offset > 0 or (length is not None and total < stored.size):
            content_id = f"{content_id}#{offset:.0f}+{total:.0f}"
        descriptor = TransferDescriptor(
            path=path,
            size=total,
            content_id=content_id,
            crc=stored.crc,
            payload=stored.payload,
            attrs=dict(stored.attrs),
        )
        dest = command.extras.get("dest_host", session.client_host)
        yield self._reply(session, request_id, protocol.opening(f"RETR {path}"))
        if remaining <= 0:
            # restart marker already covered everything
            yield self._reply(
                session, request_id,
                protocol.closing(payload={"descriptor": descriptor, "sent": 0.0}),
            )
            return
        rate_cap = min(
            self.fs.read_rate,
            command.extras.get("write_rate", session.client_write_rate),
        )
        # one stripe per server data node (SPAS), each with the session's
        # parallelism; the single-host case degenerates to a plain transfer
        stripe_hosts = (self.host.name, *self.data_nodes)
        pool = self.engine.new_pool(remaining)
        for stripe_index, stripe_host in enumerate(stripe_hosts):
            for i in range(session.parallelism):
                self.engine.open_flow(
                    stripe_host,
                    dest,
                    pool=pool,
                    tcp=TcpParams(buffer=session.buffer),
                    rate_cap=rate_cap,
                    name=f"retr:{path}[{stripe_index}.{i}]",
                )
        abort_at = self.failures.take_abort(path)
        if abort_at is not None:
            self.sim.spawn(
                self._abort_watchdog(pool, abort_at),
                name=f"abort-watchdog:{path}",
            )
        yield from self._stream_markers(session, request_id, pool, already)
        try:
            yield pool.done
        except TransferAborted as exc:
            self.monitor.count("aborted_transfers")
            marker = RestartMarker(RangeSet([(0.0, already + exc.delivered)]))
            yield self._reply(
                session,
                request_id,
                protocol.aborted(
                    "Data connection closed",
                    payload={"restart_marker": marker, "descriptor": descriptor},
                ),
            )
            return
        self.monitor.count("bytes_sent", remaining)
        self.monitor.count("files_sent")
        yield self._reply(
            session,
            request_id,
            protocol.closing(
                payload={
                    "descriptor": descriptor,
                    "sent": remaining,
                    "duration": pool.completed_at - pool.started_at,
                }
            ),
        )

    def _abort_watchdog(self, pool, abort_at: float):
        while not pool.done.triggered:
            if pool.delivered >= abort_at:
                self.engine.cancel_pool(pool, reason="injected failure")
                return
            yield self.sim.timeout(0.05)

    def _stream_markers(self, session, request_id, pool, base_offset):
        """Spawn the per-transfer marker emitter (111/112 preliminary replies)."""

        def emitter(sim=self.sim):
            while not pool.done.triggered:
                yield sim.timeout(PERF_MARKER_INTERVAL)
                if pool.done.triggered:
                    return
                perf = PerfMarker(
                    timestamp=sim.now, bytes_transferred=pool.delivered
                )
                restart = RestartMarker(
                    RangeSet([(0.0, base_offset + pool.delivered)])
                )
                self._reply(
                    session,
                    request_id,
                    Reply(112, "Perf Marker", payload=perf),
                )
                self._reply(
                    session,
                    request_id,
                    Reply(111, "Range Marker", payload=restart),
                )

        self.sim.spawn(emitter(), name="marker-emitter")
        return iter(())  # nothing to wait for here

    def _cmd_esto(self, session: _Session, request_id: int, command: Command):
        """ESTO A <path>: materialize a descriptor whose bytes were already
        delivered to this host by a third-party RETR (the receiving half of
        third-party control of data transfer)."""
        descriptor: TransferDescriptor = command.extras["descriptor"]
        path = command.argument
        if self.fs.exists(path):
            yield self._reply(session, request_id, Reply(553, "file exists"))
            return
        try:
            self.fs.create(
                path,
                descriptor.size,
                content_id=descriptor.content_id,
                now=self.sim.now,
                payload=descriptor.payload,
                **descriptor.attrs,
            )
        except StorageError as exc:
            yield self._reply(session, request_id, Reply(452, str(exc)))
            return
        self.monitor.count("files_received")
        yield self._reply(
            session, request_id,
            protocol.closing(payload={"received": descriptor.size}),
        )

    def _cmd_stor(self, session: _Session, request_id: int, command: Command):
        """STOR: receive a file from the client (upload)."""
        descriptor: TransferDescriptor = command.extras["descriptor"]
        path = command.argument
        if self.fs.exists(path):
            yield self._reply(session, request_id, Reply(553, "file exists"))
            return
        if descriptor.size > self.fs.free:
            yield self._reply(session, request_id, Reply(452, "no space"))
            return
        yield self._reply(session, request_id, protocol.opening(f"STOR {path}"))
        pool = self.engine.open_transfer(
            session.client_host,
            self.host.name,
            nbytes=descriptor.size,
            streams=session.parallelism,
            tcp=TcpParams(buffer=session.buffer),
            rate_cap=min(self.fs.write_rate, command.extras.get("read_rate",
                                                               float("inf"))),
            name=f"stor:{path}",
        )
        try:
            yield pool.done
        except TransferAborted as exc:
            yield self._reply(
                session, request_id,
                protocol.aborted("Data connection closed",
                                 payload={"received": exc.delivered}),
            )
            return
        self.fs.create(
            path,
            descriptor.size,
            content_id=descriptor.content_id,
            now=self.sim.now,
            payload=descriptor.payload,
            **descriptor.attrs,
        )
        self.monitor.count("bytes_received", descriptor.size)
        self.monitor.count("files_received")
        yield self._reply(
            session, request_id,
            protocol.closing(payload={"received": descriptor.size}),
        )
