"""The GridFTP server daemon (the wuftpd-derived server of §3.2).

One server runs per site.  The control channel is a :class:`ServiceEndpoint`
on the shared service bus (:mod:`repro.services`): each FTP verb is a bus
operation, the session/login state machine is a middleware, and GSI
authentication (ADAT) goes through the same :class:`GsiAuthenticator` the
GDMP Request Manager uses.  Protocol errors fault with a
:class:`~repro.gridftp.protocol.Reply` carrying the FTP code, and
preliminary replies (150 opening, 111/112 markers) stream back as non-final
bus replies.  Data transfers run as parallel TCP flows on the shared
:class:`~repro.netsim.engine.NetworkEngine`.

A :class:`FailureInjector` can abort a transfer after N delivered bytes or
corrupt the next transfer of a path — the failure modes GDMP's data mover
must recover from (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.gridftp import protocol
from repro.gridftp.markers import PerfMarker, RangeSet, RestartMarker
from repro.gridftp.protocol import CONTROL_MESSAGE_SIZE, Command, Reply
from repro.netsim.channels import MessageNetwork
from repro.netsim.engine import NetworkEngine, TransferAborted
from repro.netsim.tcp import TcpParams
from repro.netsim.topology import Host
from repro.netsim.units import KiB
from repro.security.ca import CertificateAuthority, CertificateError
from repro.security.credentials import Credential
from repro.security.gridmap import AuthorizationError, GridMap
from repro.services.bus import ServiceEndpoint, ServiceFault, ServiceRequest
from repro.services.middleware import (
    GsiAuthenticator,
    MetricsMiddleware,
    ServerMonitorMiddleware,
)
from repro.services.tracelog import TraceLog
from repro.simulation.kernel import Simulator
from repro.simulation.monitor import Monitor
from repro.storage.filesystem import FileSystem, StorageError
from repro.storage.integrity import corrupt_content_id, partial_content_id

__all__ = ["GridFTPServer", "FailureInjector", "TransferDescriptor"]

#: How often the server emits performance markers during a transfer.
PERF_MARKER_INTERVAL = 5.0

#: Histogram bounds for parallel-stream fan-out (streams x stripes).
_FANOUT_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: The FTP verbs this daemon implements, each a bus operation.
VERBS = (
    "AUTH", "ADAT", "FEAT", "SBUF", "OPTS", "REST", "SIZE", "MDTM",
    "CKSM", "ABOR", "QUIT", "RETR", "ERET", "ESTO", "STOR", "DELE",
)


@dataclass(frozen=True)
class TransferDescriptor:
    """What the data channel delivers (content identity, not raw bytes)."""

    path: str
    size: float
    content_id: str
    crc: int
    payload: object = None
    attrs: dict = field(default_factory=dict)


@dataclass
class _Session:
    session_id: str
    client_host: str
    subject: str = ""
    identity: str = ""
    account: str = ""
    authenticated: bool = False
    auth_started: bool = False
    buffer: int = 64 * KiB
    parallelism: int = 1
    restart: RangeSet = field(default_factory=RangeSet)
    client_write_rate: float = float("inf")


class FailureInjector:
    """Deterministic failure injection for a server's transfers."""

    def __init__(self) -> None:
        self._abort_after: dict[str, float] = {}
        self._corrupt_next: set[str] = set()

    def abort_after_bytes(self, path: str, nbytes: float) -> None:
        """One-shot: the next transfer of ``path`` dies after ``nbytes``."""
        self._abort_after[path] = nbytes

    def corrupt_next(self, path: str) -> None:
        """One-shot: the next transfer of ``path`` arrives corrupted."""
        self._corrupt_next.add(path)

    def take_abort(self, path: str) -> Optional[float]:
        """Consume a pending abort threshold for a path, if armed."""
        return self._abort_after.pop(path, None)

    def take_corruption(self, path: str) -> bool:
        """Consume a pending corruption for a path, if armed."""
        if path in self._corrupt_next:
            self._corrupt_next.remove(path)
            return True
        return False


class GridFTPServer:
    """A site's GridFTP daemon: an FTP protocol profile over the bus."""

    SERVICE = "gridftp"

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        engine: NetworkEngine,
        host: Host,
        filesystem: FileSystem,
        credential: Credential,
        trusted_cas: list[CertificateAuthority],
        gridmap: GridMap,
        default_buffer: int = 64 * KiB,
        max_parallelism: int = 16,
        data_nodes: tuple[str, ...] = (),
        tracelog: Optional[TraceLog] = None,
        metrics=None,
    ):
        self.sim = sim
        self.msgnet = msgnet
        self.engine = engine
        self.host = host
        self.fs = filesystem
        self.credential = credential
        self.trusted_cas = trusted_cas
        self.gridmap = gridmap
        self.default_buffer = default_buffer
        self.max_parallelism = max_parallelism
        #: additional stripe hosts sharing this server's filesystem (SPAS
        #: mode: "striped data transfer (m hosts to n hosts)"); data
        #: channels are opened from every stripe host in parallel.
        self.data_nodes = tuple(data_nodes)
        self.failures = FailureInjector()
        self.monitor = Monitor()
        self.tracelog = tracelog
        #: optional MetricsRegistry; per-stream throughput, marker counts,
        #: and fan-out are recorded per transfer (never per tick)
        self.metrics = metrics
        self.authenticator = GsiAuthenticator(trusted_cas, gridmap)
        self._sessions: dict[str, _Session] = {}
        self._session_counter = 0
        middlewares = [
            ServerMonitorMiddleware(self.monitor, prefix="cmd_"),
            self._session_gate,
        ]
        if metrics is not None:
            middlewares.insert(
                0, MetricsMiddleware(metrics, service=self.SERVICE)
            )
        self.bus = ServiceEndpoint(
            sim,
            msgnet,
            host,
            self.SERVICE,
            middlewares=tuple(middlewares),
            tracelog=tracelog,
            monitor=self.monitor,
            message_size=CONTROL_MESSAGE_SIZE,
            unknown_operation=lambda request: ServiceFault(
                Reply(502, f"{request.operation} not implemented")
            ),
            process_name=f"gridftpd@{host.name}",
        )
        for verb in VERBS:
            self.bus.register(verb, getattr(self, f"_cmd_{verb.lower()}"))

    # -- session/login state machine -----------------------------------------
    def _session_gate(self, request: ServiceRequest, call_next):
        """Middleware enforcing the FTP conversation order: AUTH allocates a
        session, ADAT logs it in, everything else requires a login."""
        verb = request.operation
        if verb != "AUTH":
            command: Command = request.payload
            session = self._sessions.get(command.session)
            if session is None:
                raise ServiceFault(protocol.bad_sequence("no such session"))
            request.state["session"] = session
            if verb != "ADAT" and not session.authenticated:
                raise ServiceFault(protocol.denied("authenticate first"))
        result = yield from call_next(request)
        return result

    def drop_sessions(self) -> int:
        """Crash semantics for fault injection: forget every control
        session, as a restarted daemon would.  Clients holding a session
        id see ``503 bad sequence`` on their next command and must
        re-authenticate; in-flight transfer descriptors are gone, so
        recovery rests entirely on client-side restart markers."""
        count = len(self._sessions)
        self._sessions.clear()
        if count:
            self.monitor.count("sessions_dropped", count)
        return count

    # -- authentication ----------------------------------------------------------
    def _cmd_auth(self, request: ServiceRequest):
        """AUTH GSSAPI: allocate a session, ask for ADAT (round trip 1)."""
        self._session_counter += 1
        session = _Session(
            session_id=f"{self.host.name}-{self._session_counter}",
            client_host=request.caller_host,
        )
        session.auth_started = True
        self._sessions[session.session_id] = session
        return Reply(334, "ADAT must follow", payload=session.session_id)

    def _cmd_adat(self, request: ServiceRequest):
        """ADAT <chain>: verify the client chain, authorize, log in (RT 2)."""
        session: _Session = request.state["session"]
        command: Command = request.payload
        try:
            auth = self.authenticator.authenticate(
                command.extras.get("chain"), self.sim.now
            )
        except (CertificateError, AuthorizationError) as exc:
            self.monitor.count("auth_failures")
            del self._sessions[session.session_id]
            raise ServiceFault(protocol.denied(str(exc))) from exc
        session.subject = auth.subject
        session.identity = auth.identity
        session.account = auth.account
        session.authenticated = True
        session.buffer = self.default_buffer
        self.monitor.count("auth_successes")
        return Reply(
            235,
            f"GSSAPI authentication succeeded; user {auth.account} logged in",
            payload={"session": session.session_id, "account": auth.account,
                     "server_subject": self.credential.subject},
        )

    # -- simple commands ------------------------------------------------------------
    def _cmd_feat(self, request: ServiceRequest):
        return Reply(211, "Extensions supported", payload=protocol.FEATURES)

    def _cmd_sbuf(self, request: ServiceRequest):
        session: _Session = request.state["session"]
        command: Command = request.payload
        try:
            size = int(command.argument)
            if size < 1460:
                raise ValueError
        except ValueError:
            raise ServiceFault(Reply(501, "bad buffer size")) from None
        session.buffer = size
        return protocol.ok(f"SBUF {size}")

    def _cmd_opts(self, request: ServiceRequest):
        session: _Session = request.state["session"]
        arg = request.payload.argument.strip()
        if arg.upper().startswith("RETR PARALLELISM="):
            try:
                n = int(arg.split("=", 1)[1].rstrip(";"))
                if not 1 <= n <= self.max_parallelism:
                    raise ValueError
            except ValueError:
                raise ServiceFault(Reply(501, "bad parallelism")) from None
            session.parallelism = n
            return protocol.ok(f"Parallelism={n}")
        raise ServiceFault(Reply(501, f"unknown OPTS {arg!r}"))

    def _cmd_rest(self, request: ServiceRequest):
        session: _Session = request.state["session"]
        try:
            session.restart = RangeSet.from_rest_argument(
                request.payload.argument
            )
        except ValueError as exc:
            raise ServiceFault(Reply(501, str(exc))) from exc
        return Reply(350, "Restart marker accepted")

    def _stat_or_fault(self, path: str):
        try:
            return self.fs.stat(path)
        except StorageError as exc:
            raise ServiceFault(protocol.not_found(str(exc))) from exc

    def _cmd_size(self, request: ServiceRequest):
        stored = self._stat_or_fault(request.payload.argument)
        return Reply(213, f"{stored.size:.0f}", payload=stored.size)

    def _cmd_mdtm(self, request: ServiceRequest):
        stored = self._stat_or_fault(request.payload.argument)
        return Reply(
            213, f"{stored.created_at:.6f}", payload=stored.created_at
        )

    def _cmd_cksm(self, request: ServiceRequest):
        """CKSM CRC32 — the extra end-to-end check GDMP layers on TCP."""
        stored = self._stat_or_fault(request.payload.argument)
        return Reply(213, f"{stored.crc}", payload=stored.crc)

    def _cmd_abor(self, request: ServiceRequest):
        return Reply(226, "ABOR processed")

    def _cmd_dele(self, request: ServiceRequest):
        """DELE: remove a remote file (the repair daemon's tool for
        evicting a corrupt chunk replica before re-uploading it)."""
        stored = self._stat_or_fault(request.payload.argument)
        self.fs.delete(stored.path)
        self.monitor.count("files_deleted")
        return Reply(250, f"{stored.path} deleted")

    def _cmd_quit(self, request: ServiceRequest):
        session: _Session = request.state["session"]
        self._sessions.pop(session.session_id, None)
        return Reply(221, "Goodbye")

    # -- data transfer ------------------------------------------------------------
    def _cmd_retr(self, request: ServiceRequest):
        result = yield from self._send_file(request, offset=0.0, length=None)
        return result

    def _cmd_eret(self, request: ServiceRequest):
        """Partial file transfer: ERET P <offset> <length> <path>."""
        command: Command = request.payload
        offset = float(command.extras.get("offset", 0.0))
        length = command.extras.get("length")
        if length is not None:
            length = float(length)
        result = yield from self._send_file(request, offset, length)
        return result

    def _send_file(self, request: ServiceRequest, offset, length):
        session: _Session = request.state["session"]
        command: Command = request.payload
        path = command.argument
        stored = self._stat_or_fault(path)
        if offset < 0 or offset > stored.size:
            raise ServiceFault(Reply(501, "bad offset"))
        total = stored.size - offset if length is None else min(
            length, stored.size - offset
        )
        already = session.restart.total
        remaining = max(total - already, 0.0)
        session.restart = RangeSet()  # REST applies to one transfer only

        content_id = stored.content_id
        if self.failures.take_corruption(path):
            content_id = corrupt_content_id(content_id)
            self.monitor.count("corrupted_transfers")
        if offset > 0 or (length is not None and total < stored.size):
            content_id = partial_content_id(content_id, offset, total)
        descriptor = TransferDescriptor(
            path=path,
            size=total,
            content_id=content_id,
            crc=stored.crc,
            payload=stored.payload,
            attrs=dict(stored.attrs),
        )
        dest = command.extras.get("dest_host", session.client_host)
        yield request.preliminary(protocol.opening(f"RETR {path}"))
        if remaining <= 0:
            # restart marker already covered everything
            return protocol.closing(
                payload={"descriptor": descriptor, "sent": 0.0}
            )
        rate_cap = min(
            self.fs.read_rate,
            command.extras.get("write_rate", session.client_write_rate),
        )
        # The transfer gets its own span; flows inherit it via the pool's
        # context, so the trace covers RPC -> control channel -> data flows.
        span = None
        if self.tracelog is not None:
            span = self.tracelog.begin(
                "gridftp:transfer",
                parent=request.context,
                kind="transfer",
                host=self.host.name,
                service=self.SERVICE,
                path=path,
                dest=dest,
            )
            self.sim.active_process.context = span.context
        # one stripe per server data node (SPAS), each with the session's
        # parallelism; the single-host case degenerates to a plain transfer
        stripe_hosts = (self.host.name, *self.data_nodes)
        pool = self.engine.new_pool(remaining)
        flows = []
        for stripe_index, stripe_host in enumerate(stripe_hosts):
            for i in range(session.parallelism):
                flows.append(self.engine.open_flow(
                    stripe_host,
                    dest,
                    pool=pool,
                    tcp=TcpParams(buffer=session.buffer),
                    rate_cap=rate_cap,
                    name=f"retr:{path}[{stripe_index}.{i}]",
                ))
        metrics = self.metrics
        if metrics is not None:
            metrics.histogram(
                "gridftp.transfer.fanout",
                bounds=_FANOUT_BOUNDS,
                host=self.host.name,
            ).observe(len(flows))
            if already > 0:
                metrics.counter(
                    "gridftp.transfer.restarts", host=self.host.name
                ).inc()
        abort_at = self.failures.take_abort(path)
        if abort_at is not None:
            self.sim.spawn(
                self._abort_watchdog(pool, abort_at),
                name=f"abort-watchdog:{path}",
            )
        self._stream_markers(request, pool, already)
        try:
            yield pool.done
        except TransferAborted as exc:
            self.monitor.count("aborted_transfers")
            if metrics is not None:
                metrics.counter(
                    "gridftp.transfers_aborted", host=self.host.name
                ).inc()
            if span is not None:
                self.tracelog.finish(span, "error", detail="aborted")
            marker = RestartMarker(RangeSet([(0.0, already + exc.delivered)]))
            raise ServiceFault(
                protocol.aborted(
                    "Data connection closed",
                    payload={"restart_marker": marker, "descriptor": descriptor},
                )
            ) from exc
        if span is not None:
            self.tracelog.finish(span, "ok")
        self.monitor.count("bytes_sent", remaining)
        self.monitor.count("files_sent")
        if metrics is not None:
            metrics.counter("gridftp.bytes_sent", host=self.host.name).inc(
                remaining
            )
            metrics.counter("gridftp.files_sent", host=self.host.name).inc()
            elapsed = pool.completed_at - pool.started_at
            for i, flow in enumerate(flows):
                metrics.counter(
                    "gridftp.stream.bytes", host=self.host.name, stream=i
                ).inc(flow.delivered)
                if elapsed > 0:
                    metrics.observe(
                        "gridftp.stream.throughput",
                        flow.delivered / elapsed,
                        host=self.host.name,
                        stream=i,
                    )
        return protocol.closing(
            payload={
                "descriptor": descriptor,
                "sent": remaining,
                "duration": pool.completed_at - pool.started_at,
            }
        )

    def _abort_watchdog(self, pool, abort_at: float):
        while not pool.done.triggered:
            if pool.delivered >= abort_at:
                self.engine.cancel_pool(pool, reason="injected failure")
                return
            yield self.sim.timeout(0.05)

    def _stream_markers(self, request: ServiceRequest, pool, base_offset):
        """Spawn the per-transfer marker emitter (111/112 preliminary replies)."""

        metrics = self.metrics
        host = self.host.name

        def emitter(sim=self.sim):
            while not pool.done.triggered:
                yield sim.timeout(PERF_MARKER_INTERVAL)
                if pool.done.triggered:
                    return
                perf = PerfMarker(
                    timestamp=sim.now, bytes_transferred=pool.delivered
                )
                restart = RestartMarker(
                    RangeSet([(0.0, base_offset + pool.delivered)])
                )
                request.preliminary(Reply(112, "Perf Marker", payload=perf))
                request.preliminary(Reply(111, "Range Marker", payload=restart))
                if metrics is not None:
                    metrics.counter(
                        "gridftp.markers_emitted", host=host, type="perf"
                    ).inc()
                    metrics.counter(
                        "gridftp.markers_emitted", host=host, type="range"
                    ).inc()

        self.sim.spawn(emitter(), name="marker-emitter")

    def _cmd_esto(self, request: ServiceRequest):
        """ESTO A <path>: materialize a descriptor whose bytes were already
        delivered to this host by a third-party RETR (the receiving half of
        third-party control of data transfer)."""
        command: Command = request.payload
        descriptor: TransferDescriptor = command.extras["descriptor"]
        path = command.argument
        if self.fs.exists(path):
            raise ServiceFault(Reply(553, "file exists"))
        try:
            self.fs.create(
                path,
                descriptor.size,
                content_id=descriptor.content_id,
                now=self.sim.now,
                payload=descriptor.payload,
                **descriptor.attrs,
            )
        except StorageError as exc:
            raise ServiceFault(Reply(452, str(exc))) from exc
        self.monitor.count("files_received")
        return protocol.closing(payload={"received": descriptor.size})

    def _cmd_stor(self, request: ServiceRequest):
        """STOR: receive a file from the client (upload)."""
        session: _Session = request.state["session"]
        command: Command = request.payload
        descriptor: TransferDescriptor = command.extras["descriptor"]
        path = command.argument
        if self.fs.exists(path):
            raise ServiceFault(Reply(553, "file exists"))
        if descriptor.size > self.fs.free:
            raise ServiceFault(Reply(452, "no space"))
        yield request.preliminary(protocol.opening(f"STOR {path}"))
        span = None
        if self.tracelog is not None:
            span = self.tracelog.begin(
                "gridftp:transfer",
                parent=request.context,
                kind="transfer",
                host=self.host.name,
                service=self.SERVICE,
                path=path,
                dest=self.host.name,
            )
            self.sim.active_process.context = span.context
        pool = self.engine.open_transfer(
            session.client_host,
            self.host.name,
            nbytes=descriptor.size,
            streams=session.parallelism,
            tcp=TcpParams(buffer=session.buffer),
            rate_cap=min(self.fs.write_rate, command.extras.get("read_rate",
                                                               float("inf"))),
            name=f"stor:{path}",
        )
        try:
            yield pool.done
        except TransferAborted as exc:
            if self.metrics is not None:
                self.metrics.counter(
                    "gridftp.transfers_aborted", host=self.host.name
                ).inc()
            if span is not None:
                self.tracelog.finish(span, "error", detail="aborted")
            raise ServiceFault(
                protocol.aborted("Data connection closed",
                                 payload={"received": exc.delivered})
            ) from exc
        if span is not None:
            self.tracelog.finish(span, "ok")
        if self.metrics is not None:
            self.metrics.counter(
                "gridftp.bytes_received", host=self.host.name
            ).inc(descriptor.size)
            self.metrics.counter(
                "gridftp.files_received", host=self.host.name
            ).inc()
        self.fs.create(
            path,
            descriptor.size,
            content_id=descriptor.content_id,
            now=self.sim.now,
            payload=descriptor.payload,
            **descriptor.attrs,
        )
        self.monitor.count("bytes_received", descriptor.size)
        self.monitor.count("files_received")
        return protocol.closing(payload={"received": descriptor.size})
