"""Striped data movement: m source hosts to n destination hosts.

§3.2's feature list includes "striped data transfer (m hosts to n hosts,
possibly using multiple TCP streams if also parallel)".  A striped transfer
shares one byte pool across flows opened between every (source, destination)
pair — the extended-block-mode semantics where any stripe may carry any
block, so stripes on faster paths naturally carry more bytes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.netsim.engine import NetworkEngine, SharedBytePool
from repro.netsim.tcp import TcpParams

__all__ = ["open_striped_transfer"]


def open_striped_transfer(
    engine: NetworkEngine,
    src_hosts: Sequence[str],
    dst_hosts: Sequence[str],
    nbytes: float,
    streams_per_pair: int = 1,
    tcp: Optional[TcpParams] = None,
    rate_cap: float = float("inf"),
    name: str = "striped",
) -> SharedBytePool:
    """Open an m x n striped transfer; returns the shared pool whose ``done``
    event fires on completion."""
    if not src_hosts or not dst_hosts:
        raise ValueError("need at least one source and one destination host")
    if streams_per_pair < 1:
        raise ValueError("streams_per_pair must be >= 1")
    pool = engine.new_pool(nbytes)
    for src in src_hosts:
        for dst in dst_hosts:
            for i in range(streams_per_pair):
                engine.open_flow(
                    src,
                    dst,
                    pool=pool,
                    tcp=tcp,
                    rate_cap=rate_cap,
                    name=f"{name}:{src}->{dst}[{i}]",
                )
    return pool
