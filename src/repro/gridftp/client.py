"""The GridFTP client library (``globus_ftp_client`` equivalent).

All operations are simulation coroutines: each public method returns a
:class:`~repro.simulation.kernel.Process`, so calling code (itself a
process) writes::

    session = yield client.connect("cern")
    result = yield client.get(session, "/store/f1", "/pool/f1")

The control-channel conversation — AUTH/ADAT handshake, SBUF/OPTS
negotiation, RETR with streamed 111/112 markers — rides the shared service
bus (:mod:`repro.services`): one correlated :class:`ServiceClient` carries
every command, so control-channel latency (the per-transfer setup cost
visible in Figure 5's 1 MB curve) is charged faithfully, and each command
opens a client span in the simulation's trace log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gridftp.markers import PerfMarker, RangeSet, RestartMarker
from repro.gridftp.protocol import CONTROL_MESSAGE_SIZE, Command, Reply
from repro.gridftp.server import GridFTPServer, TransferDescriptor
from repro.netsim.channels import MessageNetwork
from repro.netsim.topology import Host
from repro.netsim.units import KiB
from repro.security.credentials import Credential
from repro.services.bus import CallTimeout, ConnectionReset, ServiceClient
from repro.services.tracelog import TraceLog
from repro.simulation.kernel import Process, Simulator
from repro.storage.filesystem import FileSystem, StoredFile

__all__ = ["TransferError", "TransferResult", "ClientSession", "GridFTPClient"]


class TransferError(Exception):
    """A control- or data-channel failure, with the last reply attached."""

    def __init__(self, message: str, reply: Optional[Reply] = None):
        super().__init__(message)
        self.reply = reply

    @property
    def restart_marker(self) -> Optional[RestartMarker]:
        if self.reply and isinstance(self.reply.payload, dict):
            return self.reply.payload.get("restart_marker")
        return None

    @property
    def descriptor(self) -> Optional["TransferDescriptor"]:
        """The descriptor of the aborted attempt, when the server's 426
        carried one — what the interrupted transfer *was* delivering.
        A restart-recovery loop needs this to notice that an earlier
        attempt served different content than the final one."""
        if self.reply and isinstance(self.reply.payload, dict):
            return self.reply.payload.get("descriptor")
        return None


@dataclass(frozen=True)
class TransferResult:
    """Outcome of a completed get/put."""

    path: str
    size: float
    duration: float
    streams: int
    buffer: int
    stored: Optional[StoredFile] = None
    perf_markers: tuple[PerfMarker, ...] = ()
    restart_markers: tuple[RestartMarker, ...] = ()

    @property
    def throughput(self) -> float:
        return self.size / self.duration if self.duration > 0 else float("inf")


@dataclass
class ClientSession:
    """An authenticated control-channel session with one server."""

    server_host: str
    session_id: str
    account: str
    server_subject: str
    buffer: int = 64 * KiB
    parallelism: int = 1
    closed: bool = False


class GridFTPClient:
    """Per-site client endpoint."""

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        host: Host,
        credential: Credential,
        filesystem: Optional[FileSystem] = None,
        tracelog: Optional[TraceLog] = None,
    ):
        self.sim = sim
        self.msgnet = msgnet
        self.host = host
        self.credential = credential
        self.fs = filesystem
        #: max control-channel silence during a transfer before the client
        #: declares the connection dead (``None`` = wait forever, the
        #: pre-resilience behaviour).  A live transfer streams 111/112
        #: markers every few seconds, so silence means a cut link or a
        #: crashed server.
        self.idle_timeout: Optional[float] = None
        # Per-simulator serial (not a module global): back-to-back
        # simulations in one process name their endpoints identically.
        self.service = f"gridftp-client-{sim.next_serial('gridftp-client')}"
        self.bus = ServiceClient(
            sim,
            msgnet,
            host,
            GridFTPServer.SERVICE,
            reply_service=self.service,
            tracelog=tracelog,
            message_size=CONTROL_MESSAGE_SIZE,
        )

    # -- control-channel plumbing --------------------------------------------
    def _rpc(self, server_host: str, command: Command,
             idle_timeout: Optional[float] = None,
             synthesize_marker: bool = False):
        """One command round-trip; returns (final reply, preliminary replies).
        Driven with ``yield from`` so each public operation stays a single
        simulation process.

        When the control channel dies mid-command (idle timeout, host
        crash) and ``synthesize_marker`` is set, the loss is surfaced as a
        426 reply carrying a restart marker rebuilt from the 111 markers
        streamed before the failure — what a real client recovers from its
        own marker log when the server can no longer tell it anything.
        """
        try:
            outcome = yield from self.bus.invoke(
                server_host, command.verb, command,
                idle_timeout=idle_timeout, raise_on_fault=False,
            )
        except (CallTimeout, ConnectionReset) as exc:
            if not synthesize_marker:
                raise TransferError(
                    f"{command.verb} control channel lost: {exc}"
                ) from exc
            # markers are cumulative: the last 111 is the full progress
            marker = RestartMarker(RangeSet())
            for prelim in getattr(exc, "preliminaries", ()):
                if isinstance(prelim, Reply) and prelim.code == 111:
                    marker = prelim.payload
            reply = Reply(
                426,
                f"transfer stalled: {exc}",
                payload={"restart_marker": marker},
            )
            return reply, list(getattr(exc, "preliminaries", ()))
        reply = outcome.payload
        if not isinstance(reply, Reply):
            # a non-protocol fault (handler bug surfaced by the bus)
            raise TransferError(str(reply))
        return reply, outcome.preliminaries

    def _command(self, session: ClientSession, verb: str, argument: str = "",
                 idle_timeout: Optional[float] = None,
                 synthesize_marker: bool = False, **extras):
        command = Command(
            verb=verb,
            argument=argument,
            session=session.session_id,
            extras=extras,
        )
        final, markers = yield from self._rpc(
            session.server_host, command,
            idle_timeout=idle_timeout, synthesize_marker=synthesize_marker,
        )
        return final, markers

    # -- session management -------------------------------------------------------
    def connect(self, server_host: str) -> Process:
        """AUTH/ADAT handshake; returns a :class:`ClientSession`."""

        def run():
            auth = Command("AUTH", "GSSAPI")
            reply, _ = yield from self._rpc(server_host, auth)
            if reply.code != 334:
                raise TransferError(f"AUTH rejected: {reply}", reply)
            session_id = reply.payload
            adat = Command(
                "ADAT",
                session=session_id,
                extras={"chain": self.credential.chain},
            )
            reply, _ = yield from self._rpc(server_host, adat)
            if reply.code != 235:
                raise TransferError(f"authentication failed: {reply}", reply)
            return ClientSession(
                server_host=server_host,
                session_id=reply.payload["session"],
                account=reply.payload["account"],
                server_subject=reply.payload["server_subject"],
            )

        return self.sim.spawn(run(), name=f"gridftp-connect->{server_host}")

    def quit(self, session: ClientSession) -> Process:
        """Close a session (QUIT)."""
        def run():
            yield from self._command(session, "QUIT")
            session.closed = True

        return self.sim.spawn(run(), name="gridftp-quit")

    # -- negotiation ---------------------------------------------------------------
    def set_buffer(self, session: ClientSession, size: int) -> Process:
        """SBUF: the TCP buffer tuning knob of Figures 5 vs 6."""

        def run():
            reply, _ = yield from self._command(session, "SBUF", str(int(size)))
            if not reply.is_success:
                raise TransferError(f"SBUF failed: {reply}", reply)
            session.buffer = int(size)

        return self.sim.spawn(run(), name="gridftp-sbuf")

    def set_parallelism(self, session: ClientSession, streams: int) -> Process:
        """OPTS RETR Parallelism=n: number of parallel data streams."""
        def run():
            reply, _ = yield from self._command(
                session, "OPTS", f"RETR Parallelism={streams};"
            )
            if not reply.is_success:
                raise TransferError(f"OPTS failed: {reply}", reply)
            session.parallelism = streams

        return self.sim.spawn(run(), name="gridftp-opts")

    def features(self, session: ClientSession) -> Process:
        """FEAT: the server's extension list."""
        def run():
            reply, _ = yield from self._command(session, "FEAT")
            return reply.payload

        return self.sim.spawn(run(), name="gridftp-feat")

    # -- metadata -------------------------------------------------------------------
    def size(self, session: ClientSession, path: str) -> Process:
        """SIZE: remote file size in bytes."""
        return self._simple_query(session, "SIZE", path)

    def modification_time(self, session: ClientSession, path: str) -> Process:
        """MDTM: remote file modification time."""
        return self._simple_query(session, "MDTM", path)

    def checksum(self, session: ClientSession, path: str) -> Process:
        """CKSM: remote CRC32 (GDMP's end-to-end corruption check; the
        value is :func:`repro.storage.integrity.file_crc` of the remote
        file's content identity)."""
        return self._simple_query(session, "CKSM", path)

    def delete(self, session: ClientSession, path: str) -> Process:
        """DELE: remove a remote file (repair-path eviction)."""
        def run():
            reply, _ = yield from self._command(session, "DELE", path)
            if not reply.is_success:
                raise TransferError(f"DELE {path} failed: {reply}", reply)
            return True

        return self.sim.spawn(run(), name="gridftp-dele")

    def _simple_query(self, session: ClientSession, verb: str, path: str) -> Process:
        def run():
            reply, _ = yield from self._command(session, verb, path)
            if not reply.is_success:
                raise TransferError(f"{verb} {path} failed: {reply}", reply)
            return reply.payload

        return self.sim.spawn(run(), name=f"gridftp-{verb.lower()}")

    # -- transfers ---------------------------------------------------------------------
    def get(
        self,
        session: ClientSession,
        remote_path: str,
        local_path: str,
        restart: Optional[RangeSet] = None,
        offset: float = 0.0,
        length: Optional[float] = None,
    ) -> Process:
        """RETR/ERET a file into the local filesystem.

        ``restart`` resumes an interrupted transfer (ranges already on
        disk); ``offset``/``length`` select a partial transfer.
        """
        if self.fs is None:
            raise TransferError("client has no local filesystem to write into")

        def run():
            started = self.sim.now
            if restart is not None and len(restart):
                # REST is loss-tolerant like the RETR it precedes: it is
                # only ever issued while *recovering* a broken transfer, so
                # the link may well still be down.  A lost REST surfaces as
                # a synthesized 426 whose (empty) marker sends the mover
                # through its stalled-restart backoff instead of aborting.
                reply, _ = yield from self._command(
                    session, "REST", restart.to_rest_argument(),
                    idle_timeout=self.idle_timeout, synthesize_marker=True,
                )
                if reply.code != 350:
                    raise TransferError(f"REST failed: {reply}", reply)
            verb, extras = "RETR", {"write_rate": self.fs.write_rate}
            if offset or length is not None:
                verb = "ERET"
                extras.update({"offset": offset, "length": length})
            reply, markers = yield from self._command(
                session, verb, remote_path,
                idle_timeout=self.idle_timeout, synthesize_marker=True,
                **extras,
            )
            if reply.is_error:
                raise TransferError(f"{verb} {remote_path} failed: {reply}", reply)
            info = reply.payload
            descriptor: TransferDescriptor = info["descriptor"]
            stored = self.fs.create(
                local_path,
                descriptor.size,
                content_id=descriptor.content_id,
                now=self.sim.now,
                payload=descriptor.payload,
                **descriptor.attrs,
            )
            return TransferResult(
                path=local_path,
                size=descriptor.size,
                duration=self.sim.now - started,
                streams=session.parallelism,
                buffer=session.buffer,
                stored=stored,
                perf_markers=tuple(
                    r.payload for r in markers if r.code == 112
                ),
                restart_markers=tuple(
                    r.payload for r in markers if r.code == 111
                ),
            )

        return self.sim.spawn(run(), name=f"gridftp-get {remote_path}")

    def put(
        self,
        session: ClientSession,
        local_path: str,
        remote_path: str,
    ) -> Process:
        """STOR a local file to the server."""
        if self.fs is None:
            raise TransferError("client has no local filesystem to read from")

        def run():
            started = self.sim.now
            stored = self.fs.stat(local_path)
            descriptor = TransferDescriptor(
                path=local_path,
                size=stored.size,
                content_id=stored.content_id,
                crc=stored.crc,
                payload=stored.payload,
                attrs=dict(stored.attrs),
            )
            reply, _ = yield from self._command(
                session,
                "STOR",
                remote_path,
                descriptor=descriptor,
                read_rate=self.fs.read_rate,
            )
            if reply.is_error:
                raise TransferError(f"STOR {remote_path} failed: {reply}", reply)
            return TransferResult(
                path=remote_path,
                size=stored.size,
                duration=self.sim.now - started,
                streams=session.parallelism,
                buffer=session.buffer,
            )

        return self.sim.spawn(run(), name=f"gridftp-put {local_path}")

    def third_party_transfer(
        self,
        src_session: ClientSession,
        dst_session: ClientSession,
        src_path: str,
        dst_path: str,
    ) -> Process:
        """Third-party control: data flows source server -> destination
        server while this client only drives the two control channels."""

        def run():
            started = self.sim.now
            reply, _ = yield from self._command(
                src_session,
                "RETR",
                src_path,
                dest_host=dst_session.server_host,
            )
            if reply.is_error:
                raise TransferError(f"third-party RETR failed: {reply}", reply)
            descriptor: TransferDescriptor = reply.payload["descriptor"]
            deposit, _ = yield from self._command(
                dst_session, "ESTO", dst_path, descriptor=descriptor
            )
            if deposit.is_error:
                raise TransferError(f"third-party ESTO failed: {deposit}", deposit)
            return TransferResult(
                path=dst_path,
                size=descriptor.size,
                duration=self.sim.now - started,
                streams=src_session.parallelism,
                buffer=src_session.buffer,
            )

        return self.sim.spawn(run(), name="gridftp-3rd-party")
