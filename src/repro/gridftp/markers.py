"""Restart and performance markers.

GridFTP's "support for reliable and restartable data transfer" works by the
server emitting *restart markers* naming the byte ranges safely on disk at
the receiver; after a failure the client resends ``REST <ranges>`` and only
the complement is retransferred.  *Performance markers* carry
(timestamp, bytes transferred) pairs — the "integrated instrumentation" of
the feature list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["RangeSet", "RestartMarker", "PerfMarker"]


class RangeSet:
    """A set of disjoint, sorted, half-open byte ranges ``[start, end)``."""

    def __init__(self, ranges: Iterable[tuple[float, float]] = ()):
        self._ranges: list[tuple[float, float]] = []
        for start, end in ranges:
            self.add(start, end)

    def add(self, start: float, end: float) -> None:
        """Insert a half-open range, merging overlaps and adjacencies."""
        if end < start:
            raise ValueError(f"invalid range [{start}, {end})")
        if end == start:
            return
        merged: list[tuple[float, float]] = []
        new_start, new_end = start, end
        for s, e in self._ranges:
            if e < new_start or s > new_end:
                merged.append((s, e))
            else:  # overlap or adjacency: absorb
                new_start = min(new_start, s)
                new_end = max(new_end, e)
        merged.append((new_start, new_end))
        merged.sort()
        self._ranges = merged

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RangeSet) and self._ranges == other._ranges

    def __repr__(self) -> str:
        body = ",".join(f"{int(s)}-{int(e)}" for s, e in self._ranges)
        return f"RangeSet({body})"

    @property
    def total(self) -> float:
        return sum(e - s for s, e in self._ranges)

    def contains(self, point: float) -> bool:
        """Whether the point lies inside any range."""
        return any(s <= point < e for s, e in self._ranges)

    def covers(self, start: float, end: float) -> bool:
        """Whether one range fully covers [start, end)."""
        return any(s <= start and end <= e for s, e in self._ranges)

    def complement(self, size: float) -> "RangeSet":
        """Byte ranges of a ``size``-byte file NOT in this set."""
        missing = RangeSet()
        cursor = 0.0
        for s, e in self._ranges:
            if s > cursor:
                missing.add(cursor, min(s, size))
            cursor = max(cursor, e)
            if cursor >= size:
                break
        if cursor < size:
            missing.add(cursor, size)
        return missing

    def to_rest_argument(self) -> str:
        """Serialize as the REST command's range list: ``"0-1000,5000-9000"``."""
        return ",".join(f"{int(s)}-{int(e)}" for s, e in self._ranges)

    @classmethod
    def from_rest_argument(cls, text: str) -> "RangeSet":
        ranges = cls()
        if not text.strip():
            return ranges
        for part in text.split(","):
            try:
                start_s, end_s = part.split("-")
                ranges.add(float(start_s), float(end_s))
            except ValueError:
                raise ValueError(f"malformed REST range {part!r}") from None
        return ranges


@dataclass(frozen=True)
class RestartMarker:
    """``111 Range Marker`` — ranges now safely on the receiver's disk."""

    ranges: RangeSet

    @property
    def bytes_on_disk(self) -> float:
        return self.ranges.total


@dataclass(frozen=True)
class PerfMarker:
    """``112 Perf Marker`` — instantaneous progress of a transfer."""

    timestamp: float
    bytes_transferred: float
    stripe_index: int = 0
    total_stripes: int = 1

    def throughput_since(self, previous: "PerfMarker") -> float:
        """Average bytes/s between two markers."""
        dt = self.timestamp - previous.timestamp
        if dt <= 0:
            return 0.0
        return (self.bytes_transferred - previous.bytes_transferred) / dt
