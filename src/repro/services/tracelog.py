"""Structured, sim-time-stamped request tracing.

One :class:`TraceLog` per simulation collects :class:`Span` records from
every service endpoint, client, and transfer that runs under it.  Spans
form trees: each span knows its trace id and its causal parent, so a
single ``replicate`` request can be followed across the RPC hop, the
GridFTP control conversation, the data transfer, and the catalog update.

The log is queryable in tests (:meth:`spans`, :meth:`trace`,
:meth:`find`) and dumpable as JSON from experiments (:meth:`to_json`,
:meth:`dump_json`).  All ids come from per-instance counters, so repeated
simulations in one process produce identical traces.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.services.context import RequestContext
from repro.simulation.kernel import Simulator

__all__ = ["Span", "TraceLog"]


@dataclass
class Span:
    """One timed unit of work inside a trace."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str               # e.g. "gdmp:request_stage", "gridftp:RETR"
    kind: str               # "client" | "server" | "local" | "transfer"
    host: str
    service: str
    start: float
    end: Optional[float] = None
    status: str = "ok"      # "ok" | "error" | "timeout" | "in_progress"
    detail: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def context(self) -> RequestContext:
        """The context naming this span (pass to children/envelopes)."""
        return RequestContext(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
        )

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_record(self) -> dict:
        """JSON-serializable form of this span.

        JSON-native attr values (str/int/float/bool/None) pass through
        unchanged — ``attrs={"streams": 3}`` exports the integer 3, not
        the string ``"3"``; only other types fall back to ``str()``.
        """
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "host": self.host,
            "service": self.service,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "detail": self.detail,
            "attrs": {
                k: (v if isinstance(v, (str, int, float, bool)) or v is None
                    else str(v))
                for k, v in self.attrs.items()
            },
        }


class TraceLog:
    """Per-simulation span collector and trace-id allocator."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._spans: list[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # -- recording -------------------------------------------------------
    def begin(
        self,
        name: str,
        *,
        parent: Optional[RequestContext] = None,
        kind: str = "local",
        host: str = "",
        service: str = "",
        **attrs: Any,
    ) -> Span:
        """Open a span.  With ``parent`` set, the span joins that trace as
        a child; otherwise it roots a fresh trace."""
        span_id = f"s{next(self._span_ids):06d}"
        if parent is None:
            trace_id = f"t{next(self._trace_ids):06d}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            kind=kind,
            host=host,
            service=service,
            start=self.sim.now,
            status="in_progress",
            attrs=dict(attrs),
        )
        self._spans.append(span)
        return span

    def finish(
        self, span: Span, status: str = "ok", detail: str = ""
    ) -> Span:
        """Close a span with an outcome."""
        span.end = self.sim.now
        span.status = status
        span.detail = detail
        return span

    # -- querying --------------------------------------------------------
    def spans(
        self,
        trace_id: Optional[str] = None,
        name: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> list[Span]:
        """Spans filtered by trace id, name, and/or kind (start order)."""
        found = self._spans
        if trace_id is not None:
            found = [s for s in found if s.trace_id == trace_id]
        if name is not None:
            found = [s for s in found if s.name == name]
        if kind is not None:
            found = [s for s in found if s.kind == kind]
        return list(found)

    def find(self, name: str, **filters: Any) -> Span:
        """The single span with ``name`` (and matching filters); raises
        ``LookupError`` when there is no match or more than one."""
        matches = self.spans(name=name, **filters)
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one span {name!r}, found {len(matches)}"
            )
        return matches[0]

    def trace(self, trace_id: str) -> list[Span]:
        """Every span of one trace, in start order."""
        return self.spans(trace_id=trace_id)

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def children(self, span: Span) -> list[Span]:
        """Direct children of a span."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def open_spans(self) -> list[Span]:
        """Spans begun but never finished (still ``in_progress``).

        A non-empty result at simulation end means the run stopped inside
        traced work (a hung call, an abandoned handler, a stopped clock):
        experiments warn about these and the health report lists them
        rather than silently exporting ``end: null``.
        """
        return [s for s in self._spans if s.end is None]

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterable[Span]:
        return iter(self._spans)

    # -- export ----------------------------------------------------------
    def to_records(self) -> list[dict]:
        """All spans as JSON-serializable dicts (start order)."""
        return [span.to_record() for span in self._spans]

    def to_json(self, indent: int = 2) -> str:
        """The whole log as a JSON document."""
        return json.dumps({"spans": self.to_records()}, indent=indent)

    def dump_json(self, path: str, indent: int = 2) -> None:
        """Write :meth:`to_json` to a file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=indent))
            fh.write("\n")
