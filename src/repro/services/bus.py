"""The service bus: one dispatch/reply/timeout implementation for every
control-plane service.

GDMP's §4.1 Request Manager, the GridFTP control channel, and the replica
catalog service are all request/reply conversations over the simulated
message network.  This module provides the single implementation they
share:

* :class:`ServiceEndpoint` — a (host, service) mailbox with an operation
  dispatch table behind a composable middleware chain (see
  :mod:`repro.services.middleware`);
* :class:`ServiceClient` — correlated request/reply with per-call
  timeouts, late-reply discarding, and client-side trace spans;
* :class:`ServiceError` / :class:`ServiceFault` — the two ways a handler
  fails a request: a clean message fault, or a protocol-specific payload
  (e.g. a GridFTP ``Reply`` with an FTP error code).

Every request and reply carries a :class:`RequestContext`; endpoints open
server spans as children of the caller's span and install the context as
the handler process's ambient context, so nested calls and spawned network
flows join the same trace automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Callable, Generator, Optional

from repro.netsim.channels import Envelope, MessageNetwork
from repro.netsim.topology import Host
from repro.services.context import RequestContext
from repro.services.tracelog import Span, TraceLog
from repro.simulation.kernel import Event, Process, Simulator
from repro.simulation.monitor import Monitor
from repro.simulation.resources import Store

__all__ = [
    "DEFAULT_MESSAGE_SIZE",
    "ServiceError",
    "ServiceFault",
    "RemoteCallError",
    "CallTimeout",
    "ConnectionReset",
    "CallOutcome",
    "ServiceRequest",
    "ServiceEndpoint",
    "ServiceClient",
    "ClientCall",
]

#: Default control-message size in bytes (one small framed request).
DEFAULT_MESSAGE_SIZE = 512

_TIMED_OUT = object()


class ServiceError(Exception):
    """A clean operation failure: mapped to a fault reply whose payload is
    the error message (and re-raised at the caller as a remote error).

    ``retryable`` marks transport-level failures (timeouts, resets) that a
    retry policy may safely re-issue; application faults stay ``False``.
    """

    retryable = False


class ServiceFault(Exception):
    """A failure with a protocol-specific reply payload.

    Raised by middleware or handlers that must answer in their protocol's
    own vocabulary — e.g. the GridFTP session gate faults with a
    ``Reply(503, ...)`` object rather than a bare string.
    """

    def __init__(self, payload: Any):
        super().__init__(repr(payload))
        self.payload = payload


class RemoteCallError(ServiceError):
    """Default client-side mapping of a fault reply."""

    def __init__(self, operation: str, server: str, message: str):
        super().__init__(f"{operation}@{server}: {message}")
        self.operation = operation
        self.server = server
        self.remote_message = message


class CallTimeout(ServiceError):
    """Default client-side mapping of a missing reply."""

    retryable = True

    def __init__(self, operation: str, server: str, timeout: float):
        super().__init__(f"{operation}@{server}: no reply within {timeout}s")
        self.operation = operation
        self.server = server
        self.timeout = timeout


class ConnectionReset(ServiceError):
    """The server crashed (or was declared down) while this call was in
    flight: the pending reply was synthesized away by
    :meth:`ServiceClient.fail_pending`, or the call was refused up front
    because the client is in fail-fast mode and the host is known down."""

    retryable = True

    def __init__(self, operation: str, server: str, message: str):
        super().__init__(f"{operation}@{server}: {message}")
        self.operation = operation
        self.server = server
        self.remote_message = message
        #: preliminary replies received before the reset (e.g. GridFTP 111
        #: restart markers) — what makes client-side resume possible.
        self.preliminaries: list = []


class _ResetBody:
    """Sentinel payload of a synthetic reply injected by ``fail_pending``
    (distinguishable from any real fault payload)."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message


@dataclass
class CallOutcome:
    """What one bus call produced."""

    ok: bool
    payload: Any
    preliminaries: list = field(default_factory=list)
    context: Optional[RequestContext] = None


#: A server middleware: ``middleware(request, call_next)`` returning a
#: generator; ``call_next(request)`` invokes the rest of the chain.
Middleware = Callable[["ServiceRequest", Callable], Generator]

#: A terminal handler: ``handler(request)`` returning a generator.
Handler = Callable[["ServiceRequest"], Generator]


@dataclass
class ClientCall:
    """One outbound call as seen by *client* middleware (retry policies,
    circuit breakers).  The terminal stage issues the wire request via
    :meth:`ServiceClient._invoke_once`; a middleware that re-invokes
    ``call_next`` re-issues the call with a fresh request id."""

    client: "ServiceClient"
    server_host: str
    operation: str
    payload: Any = None
    size: Optional[int] = None
    timeout: Optional[float] = None
    idle_timeout: Optional[float] = None
    context: Optional[RequestContext] = None
    meta: Optional[dict] = None
    raise_on_fault: bool = True
    #: middleware scratch space (attempt counts, breaker tokens, ...)
    state: dict = field(default_factory=dict)

    @property
    def sim(self) -> Simulator:
        return self.client.sim


#: A client middleware: ``middleware(call, call_next)`` returning a
#: generator; ``call_next(call)`` invokes the rest of the chain (and may
#: be re-invoked to retry).
ClientMiddleware = Callable[[ClientCall, Callable], Generator]


class ServiceRequest:
    """One in-flight request as seen by middleware and handlers."""

    def __init__(
        self,
        endpoint: "ServiceEndpoint",
        envelope: Envelope,
        request_id: int,
        operation: str,
        payload: Any,
        meta: dict,
        reply_service: str,
        context: Optional[RequestContext],
    ):
        self.endpoint = endpoint
        self.envelope = envelope
        self.request_id = request_id
        self.operation = operation
        self.payload = payload
        self.meta = meta
        self.reply_service = reply_service
        self.context = context
        #: middleware scratch space (auth result, session, ...)
        self.state: dict[str, Any] = {}

    @property
    def caller_host(self) -> str:
        return self.envelope.src

    @property
    def sim(self) -> Simulator:
        return self.endpoint.sim

    def preliminary(self, payload: Any) -> Event:
        """Send a non-final reply (a GridFTP 1xx marker, a progress note).
        Returns the delivery event; callers may yield it to pace on the
        control channel or ignore it to fire-and-forget."""
        return self.endpoint._respond(self, ok=True, payload=payload,
                                      final=False)


class ServiceEndpoint:
    """Server half of the bus: a dispatch table behind middleware."""

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        host: Host,
        service: str,
        *,
        middlewares: tuple = (),
        tracelog: Optional[TraceLog] = None,
        monitor: Optional[Monitor] = None,
        message_size: int = DEFAULT_MESSAGE_SIZE,
        unknown_operation: Optional[Callable[["ServiceRequest"], Exception]] = None,
        process_name: Optional[str] = None,
    ):
        self.sim = sim
        self.msgnet = msgnet
        self.host = host
        self.service = service
        self.tracelog = tracelog
        self.monitor = monitor if monitor is not None else Monitor()
        self.message_size = message_size
        self._unknown_operation = unknown_operation or (
            lambda request: ServiceError(
                f"unknown operation {request.operation!r}"
            )
        )
        self._handlers: dict[str, Handler] = {}
        self._chain = self._build_chain(tuple(middlewares))
        self._mailbox = msgnet.register(host, service)
        sim.spawn(
            self._serve(),
            name=process_name or f"{service}@{host.name}",
        )

    # -- registration ----------------------------------------------------
    def register(self, operation: str, handler: Handler) -> None:
        """Bind a handler generator to an operation name."""
        if operation in self._handlers:
            raise ValueError(f"handler for {operation!r} already registered")
        self._handlers[operation] = handler

    def _build_chain(self, middlewares: tuple):
        def terminal(request: ServiceRequest):
            handler = self._handlers.get(request.operation)
            if handler is None:
                raise self._unknown_operation(request)
            result = handler(request)
            if isinstance(result, GeneratorType):
                # coroutine handler: drive it inside the request process
                result = yield from result
            return result

        chain = terminal
        for middleware in reversed(middlewares):
            def stage(request, _mw=middleware, _next=chain):
                return _mw(request, _next)
            chain = stage
        return chain

    # -- serving ---------------------------------------------------------
    def _serve(self):
        while True:
            envelope = yield self._mailbox.get()
            self.sim.spawn(
                self._handle(envelope),
                name=f"{self.service}-req@{self.host.name}",
            )

    def _respond(
        self,
        request: ServiceRequest,
        ok: bool,
        payload: Any,
        final: bool = True,
    ) -> Event:
        return self.msgnet.send(
            self.host,
            request.caller_host,
            request.reply_service,
            payload={
                "request_id": request.request_id,
                "ok": ok,
                "final": final,
                "payload": payload,
            },
            size=self.message_size,
            context=request.context,
        )

    def _handle(self, envelope: Envelope):
        body = envelope.payload
        request = ServiceRequest(
            endpoint=self,
            envelope=envelope,
            request_id=body["request_id"],
            operation=body["operation"],
            payload=body["payload"],
            meta=body.get("meta") or {},
            reply_service=body["reply_service"],
            context=RequestContext.from_wire(body.get("context")),
        )
        span: Optional[Span] = None
        if self.tracelog is not None:
            span = self.tracelog.begin(
                f"{self.service}:{request.operation}",
                parent=request.context,
                kind="server",
                host=self.host.name,
                service=self.service,
            )
            deadline = (
                request.context.deadline if request.context is not None
                else None
            )
            request.context = span.context.with_deadline(deadline)
        # Everything this handler spawns — nested calls, transfers, flows —
        # inherits the request's context through the ambient mechanism.
        self.sim.active_process.context = request.context
        try:
            result = yield from self._chain(request)
        except ServiceFault as fault:
            if span is not None:
                self.tracelog.finish(span, "error", detail=str(fault))
            yield self._respond(request, ok=False, payload=fault.payload)
            return
        except ServiceError as exc:
            if span is not None:
                self.tracelog.finish(span, "error", detail=str(exc))
            yield self._respond(request, ok=False, payload=str(exc))
            return
        except Exception as exc:  # handler bug or substrate error: surface it
            self.monitor.count("handler_errors")
            if span is not None:
                self.tracelog.finish(
                    span, "error", detail=f"{type(exc).__name__}: {exc}"
                )
            yield self._respond(
                request, ok=False, payload=f"{type(exc).__name__}: {exc}"
            )
            return
        if span is not None:
            self.tracelog.finish(span, "ok")
        yield self._respond(request, ok=True, payload=result)


class ServiceClient:
    """Client half of the bus: correlated calls with timeouts and traces."""

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        host: Host,
        service: str,
        *,
        reply_service: Optional[str] = None,
        tracelog: Optional[TraceLog] = None,
        monitor: Optional[Monitor] = None,
        message_size: int = DEFAULT_MESSAGE_SIZE,
        default_timeout: Optional[float] = None,
        remote_error: Callable[[str, str, str], Exception] = RemoteCallError,
        timeout_error: Callable[[str, str, float], Exception] = CallTimeout,
        middlewares: tuple = (),
    ):
        self.sim = sim
        self.msgnet = msgnet
        self.host = host
        self.service = service
        self.tracelog = tracelog
        self.monitor = monitor if monitor is not None else Monitor()
        self.message_size = message_size
        self.default_timeout = default_timeout
        self.remote_error = remote_error
        self.timeout_error = timeout_error
        #: refuse calls to hosts the msgnet knows are down instead of
        #: waiting out a timeout.  Off by default: a plain client should
        #: observe a crash exactly as a real one would — silence.
        self.fail_fast_when_down = False
        self._client_chain = self._build_client_chain(tuple(middlewares))
        if reply_service is None:
            # Per-simulator serial, not a module global: back-to-back
            # simulations in one process name their endpoints identically.
            reply_service = (
                f"{service}-reply-{sim.next_serial(f'bus-client:{service}')}"
            )
        self.reply_service = reply_service
        self._mailbox = msgnet.register(host, reply_service)
        self._request_ids = itertools.count(1)
        self._pending: dict[int, Store] = {}
        self._pending_hosts: dict[int, str] = {}
        self._abandoned: set[int] = set()
        sim.spawn(
            self._dispatch(), name=f"{reply_service}-dispatch@{host.name}"
        )

    # -- client middleware ------------------------------------------------
    def use_middlewares(self, middlewares: tuple) -> None:
        """Install a client middleware chain (outermost first), replacing
        any existing one.  Middleware see every :meth:`invoke`."""
        self._client_chain = self._build_client_chain(tuple(middlewares))

    def _build_client_chain(self, middlewares: tuple):
        def terminal(call: ClientCall):
            outcome = yield from self._invoke_once(call)
            return outcome

        chain = terminal
        for middleware in reversed(middlewares):
            def stage(call, _mw=middleware, _next=chain):
                return _mw(call, _next)
            chain = stage
        return chain

    # -- failure injection ------------------------------------------------
    def fail_pending(self, server_host: str, message: str = "connection reset") -> int:
        """Synthesize a connection-reset reply for every call of this
        client currently in flight to ``server_host`` (a crashed server
        loses its in-flight request state; the caller's TCP connection
        resets rather than hanging until an application timeout).  Returns
        the number of calls reset."""
        failed = 0
        for request_id, host in list(self._pending_hosts.items()):
            if host != server_host:
                continue
            store = self._pending.get(request_id)
            if store is None:
                continue
            store.put({
                "request_id": request_id,
                "ok": False,
                "final": True,
                "payload": _ResetBody(message),
            })
            failed += 1
        if failed:
            self.monitor.count("connection_resets", failed)
        return failed

    # -- reply routing ---------------------------------------------------
    def _dispatch(self):
        """Route replies to the store of the call they answer.  Replies to
        timed-out calls are discarded (and counted); replies to requests
        nobody ever waited on (markers after a final) are dropped, as a
        real client drops data for a closed control channel."""
        while True:
            envelope = yield self._mailbox.get()
            body = envelope.payload
            request_id = body["request_id"]
            store = self._pending.get(request_id)
            if store is not None:
                store.put(body)
            elif request_id in self._abandoned:
                self.monitor.count("late_replies_discarded")
                if body.get("final", True):
                    self._abandoned.discard(request_id)

    # -- calling ---------------------------------------------------------
    def invoke(
        self,
        server_host: str,
        operation: str,
        payload: Any = None,
        *,
        size: Optional[int] = None,
        timeout: Optional[float] = None,
        idle_timeout: Optional[float] = None,
        context: Optional[RequestContext] = None,
        meta: Optional[dict] = None,
        raise_on_fault: bool = True,
    ):
        """Generator: issue one call and wait for its final reply.

        Must be driven from a simulation process (``yield from``); use
        :meth:`call` for a spawned-process wrapper.  Returns a
        :class:`CallOutcome`; with ``raise_on_fault`` a fault reply whose
        payload is a string raises ``remote_error`` instead.

        ``timeout`` bounds the whole call; ``idle_timeout`` bounds the gap
        between replies, so a long transfer streaming periodic preliminary
        markers stays alive while a stalled one is detected quickly.
        """
        call = ClientCall(
            client=self,
            server_host=server_host,
            operation=operation,
            payload=payload,
            size=size,
            timeout=timeout,
            idle_timeout=idle_timeout,
            context=context,
            meta=meta,
            raise_on_fault=raise_on_fault,
        )
        outcome = yield from self._client_chain(call)
        return outcome

    def _invoke_once(self, call: ClientCall):
        """One wire-level request/reply exchange (the terminal stage of
        the client middleware chain)."""
        server_host = call.server_host
        operation = call.operation
        timeout = call.timeout
        if timeout is None and call.idle_timeout is None:
            # an idle-bounded call (e.g. a long transfer streaming
            # markers) must not be capped by the blanket default — its
            # rolling idle deadline is the liveness check
            timeout = self.default_timeout
        if self.fail_fast_when_down and self.msgnet.is_host_down(server_host):
            self.monitor.count("fast_failures")
            raise ConnectionReset(operation, server_host, "host is down")
        parent = (
            call.context if call.context is not None
            else self.sim.current_context
        )
        span: Optional[Span] = None
        if self.tracelog is not None:
            span = self.tracelog.begin(
                f"{self.service}:{operation}",
                parent=parent,
                kind="client",
                host=self.host.name,
                service=self.service,
            )
            ctx: Optional[RequestContext] = span.context
            if parent is not None:
                ctx = ctx.with_deadline(parent.deadline)
        else:
            ctx = parent
        if ctx is not None:
            if timeout is not None:
                ctx = ctx.with_deadline(self.sim.now + timeout)
            elif ctx.deadline is not None:
                # no explicit timeout: inherit the caller's remaining budget
                timeout = max(ctx.deadline - self.sim.now, 0.0)

        request_id = next(self._request_ids)
        store = Store(self.sim)
        self._pending[request_id] = store
        self._pending_hosts[request_id] = server_host
        self.monitor.count("calls")
        self.msgnet.send(
            self.host,
            server_host,
            self.service,
            payload={
                "request_id": request_id,
                "operation": operation,
                "payload": call.payload,
                "reply_service": self.reply_service,
                "context": None if ctx is None else ctx.to_wire(),
                "meta": call.meta or {},
            },
            size=self.message_size if call.size is None else call.size,
            context=ctx,
        )
        hard_deadline = None if timeout is None else self.sim.now + timeout
        idle = call.idle_timeout

        def next_deadline():
            candidates = [d for d in (
                hard_deadline,
                None if idle is None else self.sim.now + idle,
            ) if d is not None]
            return min(candidates) if candidates else None

        deadline_at = next_deadline()
        preliminaries: list = []
        while True:
            if deadline_at is None:
                body = yield store.get()
            else:
                remaining = max(deadline_at - self.sim.now, 0.0)
                body = yield self.sim.any_of(
                    [store.get(),
                     self.sim.timeout(remaining, value=_TIMED_OUT)]
                )
            if body is _TIMED_OUT:
                self._discard(request_id)
                self.monitor.count("call_timeouts")
                if span is not None:
                    self.tracelog.finish(span, "timeout")
                exc = self.timeout_error(
                    operation, server_host,
                    timeout if timeout is not None else idle,
                )
                exc.preliminaries = preliminaries
                raise exc
            if not body.get("final", True):
                preliminaries.append(body["payload"])
                # an idle deadline is rolling: every reply renews it
                deadline_at = next_deadline()
                continue
            break
        self._pending.pop(request_id, None)
        self._pending_hosts.pop(request_id, None)
        if isinstance(body["payload"], _ResetBody):
            # synthetic reply from fail_pending: the server crashed with
            # this call in flight.  Remember the id so a late real reply
            # (e.g. raced in just before the crash) is discarded.
            self._abandoned.add(request_id)
            if span is not None:
                self.tracelog.finish(
                    span, "error", detail=body["payload"].message
                )
            exc = ConnectionReset(
                operation, server_host, body["payload"].message
            )
            exc.preliminaries = preliminaries
            raise exc
        outcome = CallOutcome(
            ok=body["ok"],
            payload=body["payload"],
            preliminaries=preliminaries,
            context=ctx,
        )
        if not outcome.ok:
            self.monitor.count("call_failures")
            if span is not None:
                self.tracelog.finish(span, "error", detail=str(outcome.payload))
            if call.raise_on_fault and isinstance(outcome.payload, str):
                raise self.remote_error(operation, server_host, outcome.payload)
            return outcome
        if span is not None:
            self.tracelog.finish(span, "ok")
        return outcome

    def call(
        self,
        server_host: str,
        operation: str,
        payload: Any = None,
        **kwargs: Any,
    ) -> Process:
        """Spawned-process convenience over :meth:`invoke`: the process's
        value is the final reply payload."""

        def run():
            outcome = yield from self.invoke(
                server_host, operation, payload, **kwargs
            )
            return outcome.payload

        return self.sim.spawn(
            run(), name=f"{self.service}-call {operation}@{server_host}"
        )

    def _discard(self, request_id: int) -> None:
        """Timeout cleanup: drop the pending entry and remember the id so
        the eventual late reply is discarded, never misdelivered."""
        store = self._pending.pop(request_id, None)
        self._pending_hosts.pop(request_id, None)
        if store is not None:
            # a reply may have raced in at this very instant: drain it
            while len(store):
                store.get()
                self.monitor.count("late_replies_discarded")
        self._abandoned.add(request_id)
