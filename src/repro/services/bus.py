"""The service bus: one dispatch/reply/timeout implementation for every
control-plane service.

GDMP's §4.1 Request Manager, the GridFTP control channel, and the replica
catalog service are all request/reply conversations over the simulated
message network.  This module provides the single implementation they
share:

* :class:`ServiceEndpoint` — a (host, service) mailbox with an operation
  dispatch table behind a composable middleware chain (see
  :mod:`repro.services.middleware`);
* :class:`ServiceClient` — correlated request/reply with per-call
  timeouts, late-reply discarding, and client-side trace spans;
* :class:`ServiceError` / :class:`ServiceFault` — the two ways a handler
  fails a request: a clean message fault, or a protocol-specific payload
  (e.g. a GridFTP ``Reply`` with an FTP error code).

Every request and reply carries a :class:`RequestContext`; endpoints open
server spans as children of the caller's span and install the context as
the handler process's ambient context, so nested calls and spawned network
flows join the same trace automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Callable, Generator, Optional

from repro.netsim.channels import Envelope, MessageNetwork
from repro.netsim.topology import Host
from repro.services.context import RequestContext
from repro.services.tracelog import Span, TraceLog
from repro.simulation.kernel import Event, Process, Simulator
from repro.simulation.monitor import Monitor
from repro.simulation.resources import Store

__all__ = [
    "DEFAULT_MESSAGE_SIZE",
    "ServiceError",
    "ServiceFault",
    "RemoteCallError",
    "CallTimeout",
    "CallOutcome",
    "ServiceRequest",
    "ServiceEndpoint",
    "ServiceClient",
]

#: Default control-message size in bytes (one small framed request).
DEFAULT_MESSAGE_SIZE = 512

_TIMED_OUT = object()


class ServiceError(Exception):
    """A clean operation failure: mapped to a fault reply whose payload is
    the error message (and re-raised at the caller as a remote error)."""


class ServiceFault(Exception):
    """A failure with a protocol-specific reply payload.

    Raised by middleware or handlers that must answer in their protocol's
    own vocabulary — e.g. the GridFTP session gate faults with a
    ``Reply(503, ...)`` object rather than a bare string.
    """

    def __init__(self, payload: Any):
        super().__init__(repr(payload))
        self.payload = payload


class RemoteCallError(ServiceError):
    """Default client-side mapping of a fault reply."""

    def __init__(self, operation: str, server: str, message: str):
        super().__init__(f"{operation}@{server}: {message}")
        self.operation = operation
        self.server = server
        self.remote_message = message


class CallTimeout(ServiceError):
    """Default client-side mapping of a missing reply."""

    def __init__(self, operation: str, server: str, timeout: float):
        super().__init__(f"{operation}@{server}: no reply within {timeout}s")
        self.operation = operation
        self.server = server
        self.timeout = timeout


@dataclass
class CallOutcome:
    """What one bus call produced."""

    ok: bool
    payload: Any
    preliminaries: list = field(default_factory=list)
    context: Optional[RequestContext] = None


#: A server middleware: ``middleware(request, call_next)`` returning a
#: generator; ``call_next(request)`` invokes the rest of the chain.
Middleware = Callable[["ServiceRequest", Callable], Generator]

#: A terminal handler: ``handler(request)`` returning a generator.
Handler = Callable[["ServiceRequest"], Generator]


class ServiceRequest:
    """One in-flight request as seen by middleware and handlers."""

    def __init__(
        self,
        endpoint: "ServiceEndpoint",
        envelope: Envelope,
        request_id: int,
        operation: str,
        payload: Any,
        meta: dict,
        reply_service: str,
        context: Optional[RequestContext],
    ):
        self.endpoint = endpoint
        self.envelope = envelope
        self.request_id = request_id
        self.operation = operation
        self.payload = payload
        self.meta = meta
        self.reply_service = reply_service
        self.context = context
        #: middleware scratch space (auth result, session, ...)
        self.state: dict[str, Any] = {}

    @property
    def caller_host(self) -> str:
        return self.envelope.src

    @property
    def sim(self) -> Simulator:
        return self.endpoint.sim

    def preliminary(self, payload: Any) -> Event:
        """Send a non-final reply (a GridFTP 1xx marker, a progress note).
        Returns the delivery event; callers may yield it to pace on the
        control channel or ignore it to fire-and-forget."""
        return self.endpoint._respond(self, ok=True, payload=payload,
                                      final=False)


class ServiceEndpoint:
    """Server half of the bus: a dispatch table behind middleware."""

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        host: Host,
        service: str,
        *,
        middlewares: tuple = (),
        tracelog: Optional[TraceLog] = None,
        monitor: Optional[Monitor] = None,
        message_size: int = DEFAULT_MESSAGE_SIZE,
        unknown_operation: Optional[Callable[["ServiceRequest"], Exception]] = None,
        process_name: Optional[str] = None,
    ):
        self.sim = sim
        self.msgnet = msgnet
        self.host = host
        self.service = service
        self.tracelog = tracelog
        self.monitor = monitor if monitor is not None else Monitor()
        self.message_size = message_size
        self._unknown_operation = unknown_operation or (
            lambda request: ServiceError(
                f"unknown operation {request.operation!r}"
            )
        )
        self._handlers: dict[str, Handler] = {}
        self._chain = self._build_chain(tuple(middlewares))
        self._mailbox = msgnet.register(host, service)
        sim.spawn(
            self._serve(),
            name=process_name or f"{service}@{host.name}",
        )

    # -- registration ----------------------------------------------------
    def register(self, operation: str, handler: Handler) -> None:
        """Bind a handler generator to an operation name."""
        if operation in self._handlers:
            raise ValueError(f"handler for {operation!r} already registered")
        self._handlers[operation] = handler

    def _build_chain(self, middlewares: tuple):
        def terminal(request: ServiceRequest):
            handler = self._handlers.get(request.operation)
            if handler is None:
                raise self._unknown_operation(request)
            result = handler(request)
            if isinstance(result, GeneratorType):
                # coroutine handler: drive it inside the request process
                result = yield from result
            return result

        chain = terminal
        for middleware in reversed(middlewares):
            def stage(request, _mw=middleware, _next=chain):
                return _mw(request, _next)
            chain = stage
        return chain

    # -- serving ---------------------------------------------------------
    def _serve(self):
        while True:
            envelope = yield self._mailbox.get()
            self.sim.spawn(
                self._handle(envelope),
                name=f"{self.service}-req@{self.host.name}",
            )

    def _respond(
        self,
        request: ServiceRequest,
        ok: bool,
        payload: Any,
        final: bool = True,
    ) -> Event:
        return self.msgnet.send(
            self.host,
            request.caller_host,
            request.reply_service,
            payload={
                "request_id": request.request_id,
                "ok": ok,
                "final": final,
                "payload": payload,
            },
            size=self.message_size,
            context=request.context,
        )

    def _handle(self, envelope: Envelope):
        body = envelope.payload
        request = ServiceRequest(
            endpoint=self,
            envelope=envelope,
            request_id=body["request_id"],
            operation=body["operation"],
            payload=body["payload"],
            meta=body.get("meta") or {},
            reply_service=body["reply_service"],
            context=RequestContext.from_wire(body.get("context")),
        )
        span: Optional[Span] = None
        if self.tracelog is not None:
            span = self.tracelog.begin(
                f"{self.service}:{request.operation}",
                parent=request.context,
                kind="server",
                host=self.host.name,
                service=self.service,
            )
            deadline = (
                request.context.deadline if request.context is not None
                else None
            )
            request.context = span.context.with_deadline(deadline)
        # Everything this handler spawns — nested calls, transfers, flows —
        # inherits the request's context through the ambient mechanism.
        self.sim.active_process.context = request.context
        try:
            result = yield from self._chain(request)
        except ServiceFault as fault:
            if span is not None:
                self.tracelog.finish(span, "error", detail=str(fault))
            yield self._respond(request, ok=False, payload=fault.payload)
            return
        except ServiceError as exc:
            if span is not None:
                self.tracelog.finish(span, "error", detail=str(exc))
            yield self._respond(request, ok=False, payload=str(exc))
            return
        except Exception as exc:  # handler bug or substrate error: surface it
            self.monitor.count("handler_errors")
            if span is not None:
                self.tracelog.finish(
                    span, "error", detail=f"{type(exc).__name__}: {exc}"
                )
            yield self._respond(
                request, ok=False, payload=f"{type(exc).__name__}: {exc}"
            )
            return
        if span is not None:
            self.tracelog.finish(span, "ok")
        yield self._respond(request, ok=True, payload=result)


class ServiceClient:
    """Client half of the bus: correlated calls with timeouts and traces."""

    def __init__(
        self,
        sim: Simulator,
        msgnet: MessageNetwork,
        host: Host,
        service: str,
        *,
        reply_service: Optional[str] = None,
        tracelog: Optional[TraceLog] = None,
        monitor: Optional[Monitor] = None,
        message_size: int = DEFAULT_MESSAGE_SIZE,
        default_timeout: Optional[float] = None,
        remote_error: Callable[[str, str, str], Exception] = RemoteCallError,
        timeout_error: Callable[[str, str, float], Exception] = CallTimeout,
    ):
        self.sim = sim
        self.msgnet = msgnet
        self.host = host
        self.service = service
        self.tracelog = tracelog
        self.monitor = monitor if monitor is not None else Monitor()
        self.message_size = message_size
        self.default_timeout = default_timeout
        self.remote_error = remote_error
        self.timeout_error = timeout_error
        if reply_service is None:
            # Per-simulator serial, not a module global: back-to-back
            # simulations in one process name their endpoints identically.
            reply_service = (
                f"{service}-reply-{sim.next_serial(f'bus-client:{service}')}"
            )
        self.reply_service = reply_service
        self._mailbox = msgnet.register(host, reply_service)
        self._request_ids = itertools.count(1)
        self._pending: dict[int, Store] = {}
        self._abandoned: set[int] = set()
        sim.spawn(
            self._dispatch(), name=f"{reply_service}-dispatch@{host.name}"
        )

    # -- reply routing ---------------------------------------------------
    def _dispatch(self):
        """Route replies to the store of the call they answer.  Replies to
        timed-out calls are discarded (and counted); replies to requests
        nobody ever waited on (markers after a final) are dropped, as a
        real client drops data for a closed control channel."""
        while True:
            envelope = yield self._mailbox.get()
            body = envelope.payload
            request_id = body["request_id"]
            store = self._pending.get(request_id)
            if store is not None:
                store.put(body)
            elif request_id in self._abandoned:
                self.monitor.count("late_replies_discarded")
                if body.get("final", True):
                    self._abandoned.discard(request_id)

    # -- calling ---------------------------------------------------------
    def invoke(
        self,
        server_host: str,
        operation: str,
        payload: Any = None,
        *,
        size: Optional[int] = None,
        timeout: Optional[float] = None,
        context: Optional[RequestContext] = None,
        meta: Optional[dict] = None,
        raise_on_fault: bool = True,
    ):
        """Generator: issue one call and wait for its final reply.

        Must be driven from a simulation process (``yield from``); use
        :meth:`call` for a spawned-process wrapper.  Returns a
        :class:`CallOutcome`; with ``raise_on_fault`` a fault reply whose
        payload is a string raises ``remote_error`` instead.
        """
        if timeout is None:
            timeout = self.default_timeout
        parent = context if context is not None else self.sim.current_context
        span: Optional[Span] = None
        if self.tracelog is not None:
            span = self.tracelog.begin(
                f"{self.service}:{operation}",
                parent=parent,
                kind="client",
                host=self.host.name,
                service=self.service,
            )
            ctx: Optional[RequestContext] = span.context
            if parent is not None:
                ctx = ctx.with_deadline(parent.deadline)
        else:
            ctx = parent
        if ctx is not None:
            if timeout is not None:
                ctx = ctx.with_deadline(self.sim.now + timeout)
            elif ctx.deadline is not None:
                # no explicit timeout: inherit the caller's remaining budget
                timeout = max(ctx.deadline - self.sim.now, 0.0)

        request_id = next(self._request_ids)
        store = Store(self.sim)
        self._pending[request_id] = store
        self.monitor.count("calls")
        self.msgnet.send(
            self.host,
            server_host,
            self.service,
            payload={
                "request_id": request_id,
                "operation": operation,
                "payload": payload,
                "reply_service": self.reply_service,
                "context": None if ctx is None else ctx.to_wire(),
                "meta": meta or {},
            },
            size=self.message_size if size is None else size,
            context=ctx,
        )
        deadline_at = None if timeout is None else self.sim.now + timeout
        preliminaries: list = []
        while True:
            if deadline_at is None:
                body = yield store.get()
            else:
                remaining = max(deadline_at - self.sim.now, 0.0)
                body = yield self.sim.any_of(
                    [store.get(),
                     self.sim.timeout(remaining, value=_TIMED_OUT)]
                )
            if body is _TIMED_OUT:
                self._discard(request_id)
                self.monitor.count("call_timeouts")
                if span is not None:
                    self.tracelog.finish(span, "timeout")
                raise self.timeout_error(operation, server_host, timeout)
            if not body.get("final", True):
                preliminaries.append(body["payload"])
                continue
            break
        self._pending.pop(request_id, None)
        outcome = CallOutcome(
            ok=body["ok"],
            payload=body["payload"],
            preliminaries=preliminaries,
            context=ctx,
        )
        if not outcome.ok:
            self.monitor.count("call_failures")
            if span is not None:
                self.tracelog.finish(span, "error", detail=str(outcome.payload))
            if raise_on_fault and isinstance(outcome.payload, str):
                raise self.remote_error(operation, server_host, outcome.payload)
            return outcome
        if span is not None:
            self.tracelog.finish(span, "ok")
        return outcome

    def call(
        self,
        server_host: str,
        operation: str,
        payload: Any = None,
        **kwargs: Any,
    ) -> Process:
        """Spawned-process convenience over :meth:`invoke`: the process's
        value is the final reply payload."""

        def run():
            outcome = yield from self.invoke(
                server_host, operation, payload, **kwargs
            )
            return outcome.payload

        return self.sim.spawn(
            run(), name=f"{self.service}-call {operation}@{server_host}"
        )

    def _discard(self, request_id: int) -> None:
        """Timeout cleanup: drop the pending entry and remember the id so
        the eventual late reply is discarded, never misdelivered."""
        store = self._pending.pop(request_id, None)
        if store is not None:
            # a reply may have raced in at this very instant: drain it
            while len(store):
                store.get()
                self.monitor.count("late_replies_discarded")
        self._abandoned.add(request_id)
