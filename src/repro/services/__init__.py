"""The control-plane service bus.

One request/reply implementation — dispatch, middleware, timeouts, trace
propagation — shared by GDMP's Request Manager, the GridFTP control
channel, and the replica catalog service.  See DESIGN.md, "Control plane:
service bus and middleware".
"""

from repro.services.bus import (
    DEFAULT_MESSAGE_SIZE,
    CallOutcome,
    CallTimeout,
    RemoteCallError,
    ServiceClient,
    ServiceEndpoint,
    ServiceError,
    ServiceFault,
    ServiceRequest,
)
from repro.services.context import RequestContext
from repro.services.middleware import (
    AuthResult,
    DeadlineMiddleware,
    GsiAuthenticator,
    GsiAuthMiddleware,
    ServerMonitorMiddleware,
)
from repro.services.tracelog import Span, TraceLog

__all__ = [
    "DEFAULT_MESSAGE_SIZE",
    "AuthResult",
    "CallOutcome",
    "CallTimeout",
    "DeadlineMiddleware",
    "GsiAuthenticator",
    "GsiAuthMiddleware",
    "RemoteCallError",
    "RequestContext",
    "ServerMonitorMiddleware",
    "ServiceClient",
    "ServiceEndpoint",
    "ServiceError",
    "ServiceFault",
    "ServiceRequest",
    "Span",
    "TraceLog",
]
