"""Client-side resilience middleware: retries and circuit breaking.

These are :data:`~repro.services.bus.ClientMiddleware` stages installed on
a :class:`~repro.services.bus.ServiceClient` via ``use_middlewares``.  They
act only on *transport-level* failures — exceptions whose ``retryable``
class attribute is true (timeouts, connection resets) — and never re-issue
a call that failed with an application fault, which may not be idempotent
to repeat.

Composition order matters: ``(RetryMiddleware, CircuitBreakerMiddleware)``
puts the retry loop outermost, so every attempt consults the breaker and
every failed attempt feeds its failure count.  An open breaker raises
:class:`CircuitOpenError` (not retryable), which propagates to the caller
immediately — replica failover, not patience, is the right response to a
host that keeps failing.

Determinism: retry jitter is drawn from a seeded
:class:`~repro.simulation.randomness.RandomStreams` generator, so the same
seed gives the same backoff schedule; everything else is pure sim-time
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.services.bus import ClientCall, ServiceError

__all__ = [
    "RetryPolicy",
    "RetryMiddleware",
    "CircuitOpenError",
    "CircuitBreakerMiddleware",
    "ResilienceConfig",
]


class CircuitOpenError(ServiceError):
    """The breaker for this server is open: the call was refused locally,
    without touching the network.  Deliberately *not* retryable — callers
    should fail over to another replica rather than wait out the cooldown."""

    retryable = False

    def __init__(self, operation: str, server: str, remaining: float):
        super().__init__(
            f"{operation}@{server}: circuit open "
            f"(retry after {remaining:.3f}s)"
        )
        self.operation = operation
        self.server = server
        self.remaining = remaining


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and a cumulative budget.

    Attempt ``n`` (1-based) failing retryably sleeps
    ``min(base_delay * multiplier**(n-1), max_delay) * (1 + jitter*u)``
    with ``u`` uniform in [0, 1) from the policy's random stream.  The
    call gives up early when attempts, the sleep budget, or the caller's
    shrink-only deadline would be exceeded.
    """

    max_attempts: int = 4
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25
    budget: float = 120.0

    def delay(self, attempt: int, rng=None) -> float:
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if rng is not None and self.jitter:
            raw *= 1.0 + self.jitter * float(rng.random())
        return raw


class RetryMiddleware:
    """Re-issue transport-failed calls per a :class:`RetryPolicy`.

    Counts ``rpc.retries{service,operation}`` in the registry for every
    re-issued attempt.  A retry is abandoned (the original error
    re-raised) when the policy's attempt or budget cap is hit, or when
    backing off would cross the caller's propagated deadline — deadlines
    only ever shrink, so sleeping past one can never help.
    """

    def __init__(self, policy: RetryPolicy | None = None, rng=None,
                 metrics=None):
        self.policy = policy if policy is not None else RetryPolicy()
        self.rng = rng
        self.metrics = metrics

    def __call__(self, call: ClientCall, call_next):
        sim = call.sim
        policy = self.policy
        attempt = 0
        slept = 0.0
        while True:
            attempt += 1
            try:
                outcome = yield from call_next(call)
                return outcome
            except ServiceError as exc:
                if not getattr(exc, "retryable", False):
                    raise
                if attempt >= policy.max_attempts:
                    raise
                delay = policy.delay(attempt, self.rng)
                if slept + delay > policy.budget:
                    raise
                ctx = (
                    call.context if call.context is not None
                    else sim.current_context
                )
                if (
                    ctx is not None
                    and ctx.deadline is not None
                    and sim.now + delay >= ctx.deadline
                ):
                    raise
                if self.metrics is not None:
                    self.metrics.counter(
                        "rpc.retries",
                        service=call.client.service,
                        operation=call.operation,
                    ).inc()
                slept += delay
                yield sim.timeout(delay)


#: Gauge encoding of breaker states.
_STATE_VALUE = {"closed": 0.0, "half-open": 1.0, "open": 2.0}


@dataclass
class _BreakerState:
    state: str = "closed"
    failures: int = 0
    opened_at: float = 0.0
    probing: bool = False
    stats: dict = field(default_factory=lambda: {
        "opened": 0, "closed": 0, "refused": 0,
    })


class CircuitBreakerMiddleware:
    """Per-(server-host, endpoint) circuit breaker: closed → open →
    half-open.

    ``failure_threshold`` consecutive retryable failures open the circuit;
    while open, calls are refused locally with :class:`CircuitOpenError`
    until ``cooldown`` has elapsed, after which a single probe call is let
    through (half-open).  A successful probe closes the circuit; a failed
    one re-opens it for another cooldown.  Application faults (not
    retryable) neither trip nor reset the breaker's failure count — a
    server answering "no such file" is healthy.

    Breaker state is tracked per *endpoint* on a host, where the endpoint
    is the operation's family prefix (``catalog.info`` → ``catalog``,
    ``rli.lookup`` → ``rli``): hosts run several daemons, and a wedged
    replica-location index must not refuse calls to the healthy local
    replica catalog sharing its host.

    Exposes ``breaker.state{service,server,endpoint}`` as a gauge
    (0 closed, 1 half-open, 2 open) and counts opens/refusals.
    """

    def __init__(self, failure_threshold: int = 5, cooldown: float = 30.0,
                 metrics=None, service: str = ""):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.metrics = metrics
        self.service = service
        self._servers: dict[tuple[str, str], _BreakerState] = {}

    @staticmethod
    def _endpoint(operation: str) -> str:
        """The daemon-level operation family (prefix before the dot)."""
        return operation.split(".", 1)[0]

    def state_of(self, server_host: str, endpoint: str | None = None) -> str:
        """Current breaker state for a server's endpoint ("closed" when
        unseen).  Without ``endpoint``, the worst state across every
        endpoint seen on that host."""
        if endpoint is not None:
            st = self._servers.get((server_host, endpoint))
            return st.state if st is not None else "closed"
        states = [
            st.state for (host, _), st in self._servers.items()
            if host == server_host
        ]
        for worst in ("open", "half-open"):
            if worst in states:
                return worst
        return "closed"

    def _transition(self, st: _BreakerState, server: str, endpoint: str,
                    to: str, now: float) -> None:
        st.state = to
        if to == "open":
            st.opened_at = now
            st.stats["opened"] += 1
        elif to == "closed":
            st.failures = 0
            st.stats["closed"] += 1
        if self.metrics is not None:
            self.metrics.gauge(
                "breaker.state", service=self.service, server=server,
                endpoint=endpoint,
            ).set(_STATE_VALUE[to])
            self.metrics.counter(
                "breaker.transitions",
                service=self.service, server=server, endpoint=endpoint,
                to=to,
            ).inc()

    def __call__(self, call: ClientCall, call_next):
        sim = call.sim
        server = call.server_host
        endpoint = self._endpoint(call.operation)
        key = (server, endpoint)
        st = self._servers.get(key)
        if st is None:
            st = self._servers[key] = _BreakerState()
        if st.state == "open":
            elapsed = sim.now - st.opened_at
            if elapsed < self.cooldown:
                st.stats["refused"] += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "breaker.refusals",
                        service=self.service, server=server,
                        endpoint=endpoint,
                    ).inc()
                raise CircuitOpenError(
                    call.operation, server, self.cooldown - elapsed
                )
            self._transition(st, server, endpoint, "half-open", sim.now)
        if st.state == "half-open" and st.probing:
            # one probe at a time: concurrent calls are refused until the
            # in-flight probe settles the circuit one way or the other
            st.stats["refused"] += 1
            raise CircuitOpenError(call.operation, server, 0.0)
        probing = st.state == "half-open"
        if probing:
            st.probing = True
        try:
            outcome = yield from call_next(call)
        except ServiceError as exc:
            if probing:
                st.probing = False
            if getattr(exc, "retryable", False):
                st.failures += 1
                if (
                    st.state == "half-open"
                    or st.failures >= self.failure_threshold
                ):
                    self._transition(st, server, endpoint, "open", sim.now)
            raise
        if probing:
            st.probing = False
        st.failures = 0
        if st.state != "closed":
            self._transition(st, server, endpoint, "closed", sim.now)
        return outcome


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for :meth:`repro.gdmp.grid.DataGrid.enable_resilience`."""

    retry: RetryPolicy = RetryPolicy()
    failure_threshold: int = 5
    cooldown: float = 30.0
    #: whole-call timeout applied to request-manager/catalog RPCs that do
    #: not carry their own.  Generous enough for a healthy MSS staging
    #: (tape mount + seek is ~45 s) to finish inside one attempt.
    rpc_timeout: float = 120.0
    #: max silence on the GridFTP control channel; a healthy transfer
    #: streams 111 restart markers every 5 s, so 15 s of silence means the
    #: link or server is gone.
    idle_timeout: float = 15.0
