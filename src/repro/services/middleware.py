"""Composable server-side middleware for the service bus.

A middleware is a callable ``middleware(request, call_next)`` returning a
generator; it may inspect/augment the :class:`ServiceRequest`, delegate to
``call_next(request)`` with ``yield from``, and post-process the result.
The chain is composed once at endpoint construction, outermost first.

The stock middlewares reproduce what the bespoke GDMP and GridFTP servers
each implemented privately:

* :class:`ServerMonitorMiddleware` — per-operation request counters;
* :class:`GsiAuthMiddleware` — GSI chain verification + gridmap mapping
  (the paper's "every client request ... is authenticated and authorized
  by a security service");
* :class:`DeadlineMiddleware` — shed requests whose propagated deadline
  already passed before dispatch (the caller has given up; doing the work
  would only waste simulated server time);
* :class:`MetricsMiddleware` — per-operation RPC latency histograms and
  outcome counters in a :class:`~repro.telemetry.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.security.ca import CertificateAuthority, CertificateError, verify_chain
from repro.security.gridmap import AuthorizationError, GridMap
from repro.services.bus import ServiceError, ServiceFault, ServiceRequest
from repro.simulation.monitor import Monitor

__all__ = [
    "AuthResult",
    "GsiAuthenticator",
    "GsiAuthMiddleware",
    "ServerMonitorMiddleware",
    "DeadlineMiddleware",
    "MetricsMiddleware",
]


@dataclass(frozen=True)
class AuthResult:
    """What GSI verification establishes about a caller."""

    subject: str    # the presented (proxy) subject
    identity: str   # the authenticated end-entity DN
    account: str    # gridmap-mapped local account


class GsiAuthenticator:
    """Chain verification + gridmap authorization, shared by every
    service that authenticates callers (GDMP RPC and GridFTP ADAT)."""

    def __init__(self, trusted_cas: list[CertificateAuthority], gridmap: GridMap):
        self.trusted_cas = trusted_cas
        self.gridmap = gridmap

    def authenticate(self, chain, now: float) -> AuthResult:
        """Verify a presented certificate chain; raises
        :class:`CertificateError` / :class:`AuthorizationError`."""
        if not chain:
            raise CertificateError("no credential presented")
        identity = verify_chain(chain, self.trusted_cas, now)
        account = self.gridmap.authorize(identity)
        return AuthResult(
            subject=chain[0].subject, identity=identity, account=account
        )


class GsiAuthMiddleware:
    """Authenticate + authorize before any dispatch.

    Expects the caller's proxy chain in ``request.meta["chain"]``; on
    success stores the :class:`AuthResult` in ``request.state["auth"]``,
    on failure counts ``auth_failures`` and faults with ``security: ...``.
    """

    def __init__(
        self, authenticator: GsiAuthenticator, monitor: Optional[Monitor] = None
    ):
        self.authenticator = authenticator
        self.monitor = monitor

    def __call__(self, request: ServiceRequest, call_next):
        try:
            request.state["auth"] = self.authenticator.authenticate(
                request.meta.get("chain"), request.sim.now
            )
        except (CertificateError, AuthorizationError) as exc:
            if self.monitor is not None:
                self.monitor.count("auth_failures")
            raise ServiceError(f"security: {exc}") from exc
        result = yield from call_next(request)
        return result


class ServerMonitorMiddleware:
    """Count every arriving request as ``{prefix}{operation}``."""

    def __init__(self, monitor: Monitor, prefix: str = "op_"):
        self.monitor = monitor
        self.prefix = prefix

    def __call__(self, request: ServiceRequest, call_next):
        self.monitor.count(f"{self.prefix}{request.operation}")
        result = yield from call_next(request)
        return result


class DeadlineMiddleware:
    """Shed requests whose propagated deadline expired before dispatch."""

    def __init__(self, monitor: Optional[Monitor] = None, metrics=None,
                 service: str = ""):
        self.monitor = monitor
        self.metrics = metrics
        self.service = service

    def __call__(self, request: ServiceRequest, call_next):
        context = request.context
        if (
            context is not None
            and context.deadline is not None
            and request.sim.now > context.deadline
        ):
            if self.monitor is not None:
                self.monitor.count("deadline_expired")
            if self.metrics is not None:
                self.metrics.counter(
                    "rpc.deadline_sheds",
                    service=self.service,
                    operation=request.operation,
                ).inc()
            raise ServiceError(
                f"deadline exceeded before dispatch of {request.operation!r}"
            )
        result = yield from call_next(request)
        return result


class MetricsMiddleware:
    """Record per-operation RPC latency and outcomes into a registry.

    Placed outermost in a chain it times the whole server-side handling
    (middlewares + handler, in simulated time) of every request and counts
    outcomes: ``ok``, ``error`` (:class:`ServiceError`, including deadline
    sheds), ``fault`` (protocol-level :class:`ServiceFault`).  Series:

    * ``rpc.latency{service,operation}`` — histogram, seconds;
    * ``rpc.requests{service,operation,outcome}`` — counter.
    """

    def __init__(self, registry, service: str):
        self.registry = registry
        self.service = service

    def __call__(self, request: ServiceRequest, call_next):
        start = request.sim.now
        outcome = "ok"
        try:
            result = yield from call_next(request)
        except ServiceFault:
            outcome = "fault"
            raise
        except ServiceError:
            outcome = "error"
            raise
        finally:
            registry = self.registry
            registry.counter(
                "rpc.requests",
                service=self.service,
                operation=request.operation,
                outcome=outcome,
            ).inc()
            registry.histogram(
                "rpc.latency",
                service=self.service,
                operation=request.operation,
            ).observe(request.sim.now - start)
        return result
