"""Request context: the trace identity carried by every control message.

A :class:`RequestContext` names one *span* (a timed unit of work) inside
one *trace* (the causal chain started by a top-level operation such as a
``replicate`` call).  The service bus attaches the caller's context to
every :class:`~repro.netsim.channels.Envelope`, and every endpoint opens a
child span for the work it does on behalf of the caller, so a single trace
id spans the whole GDMP server -> GridFTP control channel -> catalog hop
chain and is stamped onto the network flows the request spawns.

The context also carries an optional absolute ``deadline`` (simulation
time).  Client timeouts set it; the server-side deadline middleware sheds
requests that arrive already expired, and nested calls inherit the
remaining budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RequestContext"]


@dataclass(frozen=True)
class RequestContext:
    """One span's identity within a trace, plus propagated call metadata."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    deadline: Optional[float] = None

    def child(self, span_id: str) -> "RequestContext":
        """A context for a child span: same trace, this span as parent."""
        return RequestContext(
            trace_id=self.trace_id,
            span_id=span_id,
            parent_id=self.span_id,
            deadline=self.deadline,
        )

    def with_deadline(self, deadline: Optional[float]) -> "RequestContext":
        """The same span identity with a (tightened) deadline attached.
        ``None`` keeps the existing deadline — a deadline can only ever
        shrink as it propagates down a call chain."""
        if deadline is None:
            return self
        if self.deadline is not None:
            deadline = min(deadline, self.deadline)
        return RequestContext(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            deadline=deadline,
        )

    # -- wire form -------------------------------------------------------
    def to_wire(self) -> dict:
        """The dict shipped inside request/reply bodies."""
        wire = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            wire["parent_id"] = self.parent_id
        if self.deadline is not None:
            wire["deadline"] = self.deadline
        return wire

    @staticmethod
    def from_wire(wire: Optional[dict]) -> Optional["RequestContext"]:
        """Rebuild a context from its wire form (None passes through)."""
        if wire is None:
            return None
        return RequestContext(
            trace_id=wire["trace_id"],
            span_id=wire["span_id"],
            parent_id=wire.get("parent_id"),
            deadline=wire.get("deadline"),
        )
