"""Content-identity integrity: the one place CRC semantics live.

The grid moves multi-GB files as *content identity* tokens rather than
real bytes; the end-to-end CRC GDMP layers over TCP (§4.3) is derived
from that token.  Before this module the derivation — and the marker
conventions for corrupted and partial content — were duplicated across
the filesystem, the GridFTP server's send path and the client's CKSM
handling.  They now share one vocabulary:

* :func:`file_crc` — CRC32 of the identity token; a faithful copy
  (same token) always matches, any token change never does.
* ``corrupted:`` prefix — injected damage (:func:`corrupt_content_id`).
  Prefixing, not hashing, so repeated corruption stays visible and a
  corrupted token can never collide back onto the original.
* ``#<offset>+<length>`` suffix — a partial transfer
  (:func:`partial_content_id`).  Any strict subrange of a file yields a
  token distinct from the whole file's, so a partial copy can never
  CRC-match the original.
* :func:`mixed_content_id` — a file assembled from byte ranges of
  *different* source contents (e.g. a restarted transfer whose earlier
  attempt served corrupted data).  The mixed token differs from every
  contributing token, so the assembly can never inherit a clean CRC it
  did not earn.
"""

from __future__ import annotations

import zlib
from typing import Iterable

__all__ = [
    "CORRUPTION_PREFIX",
    "file_crc",
    "verify_crc",
    "corrupt_content_id",
    "is_corrupted",
    "partial_content_id",
    "is_partial",
    "mixed_content_id",
]

#: prefix marking injected damage; ``file_crc`` of a prefixed token can
#: never equal the original's (the token differs)
CORRUPTION_PREFIX = "corrupted:"

#: prefix marking a mixed assembly (see :func:`mixed_content_id`)
_MIXED_PREFIX = "mixed:"


def file_crc(content_id: str) -> int:
    """CRC32 of the content identity — the mover's end-to-end checksum."""
    return zlib.crc32(content_id.encode("utf-8"))


def verify_crc(content_id: str, expected_crc: int) -> bool:
    """Whether content matches a catalog/manifest CRC."""
    return file_crc(content_id) == expected_crc


def corrupt_content_id(content_id: str) -> str:
    """The token after silent damage (failure injection)."""
    return CORRUPTION_PREFIX + content_id


def is_corrupted(content_id: str) -> bool:
    """Whether a token carries (any layer of) injected damage."""
    return content_id.startswith(CORRUPTION_PREFIX)


def partial_content_id(content_id: str, offset: float, length: float) -> str:
    """The token of a strict subrange of a file's content.

    Used by partial transfers (ERET, restarted RETR): the subrange is
    different content, so it gets a different token — and therefore a
    different CRC — than the whole file.
    """
    return f"{content_id}#{offset:.0f}+{length:.0f}"


def is_partial(content_id: str) -> bool:
    """Whether a token names a subrange rather than whole content."""
    base = content_id
    if "#" not in base:
        return False
    tail = base.rsplit("#", 1)[1]
    if "+" not in tail:
        return False
    offset, _, length = tail.partition("+")
    try:
        float(offset), float(length)
    except ValueError:
        return False
    return True


def mixed_content_id(contributions: Iterable[str]) -> str:
    """The token of a file assembled from ranges of differing contents.

    A restarted transfer normally resumes the *same* content, and the
    final attempt's token describes the whole file.  But when an earlier
    aborted attempt served different bytes (injected corruption consumed
    by that attempt), the bytes on disk are a mixture: stamping them
    with the final attempt's clean token would hand the file a CRC it
    does not deserve.  The mixed token folds every contributing token
    together, ordered, so it differs from each of them — the CRC check
    one layer up then treats the file as the damaged object it is.
    """
    parts = sorted(set(contributions))
    if len(parts) == 1:
        return parts[0]
    return _MIXED_PREFIX + "|".join(parts)
