"""Hierarchical Resource Manager: the uniform staging API.

§4.4: "GDMP has a plug-in for the Hierarchical Storage Manager (HRM)
[Bern00] APIs, which provide a common interface to be used to access
different Mass Storage Systems."  GDMP's storage manager talks to this
interface only, never to a concrete MSS — swapping HPSS for Castor (or for
no tape at all) is a constructor argument.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.simulation.kernel import Event, Simulator
from repro.storage.diskpool import DiskPool
from repro.storage.filesystem import StorageError, StoredFile
from repro.storage.mss import MassStorageSystem, TapeError

__all__ = ["StageStatus", "HierarchicalResourceManager"]


class StageStatus(enum.Enum):
    """Observable state of a file with respect to the disk pool."""

    ON_DISK = "on_disk"
    ON_TAPE = "on_tape"
    STAGING = "staging"
    UNKNOWN = "unknown"


class HierarchicalResourceManager:
    """Uniform disk/tape façade for one site.

    ``mss`` may be None for a disk-only site — stage requests for files not
    on disk then fail with :class:`StorageError`, which is exactly what a
    site without tertiary storage reports.
    """

    def __init__(
        self,
        sim: Simulator,
        pool: DiskPool,
        mss: Optional[MassStorageSystem] = None,
    ):
        self.sim = sim
        self.pool = pool
        self.mss = mss
        self._in_flight: dict[str, Event] = {}

    # -- interrogation -------------------------------------------------------
    def status(self, path: str) -> StageStatus:
        """Where a file currently is (disk / tape / staging / unknown)."""
        if path in self._in_flight:
            return StageStatus.STAGING
        if self.pool.fs.exists(path):
            return StageStatus.ON_DISK
        if self.mss is not None and self.mss.contains(path):
            return StageStatus.ON_TAPE
        return StageStatus.UNKNOWN

    def file_size(self, path: str) -> float:
        """Size of a file wherever it lives; raises StorageError when unknown."""
        if self.pool.fs.exists(path):
            return self.pool.fs.stat(path).size
        if self.mss is not None and self.mss.contains(path):
            return self.mss.archive_record(path).size
        raise StorageError(f"{self.pool.fs.site}: unknown file {path!r}")

    # -- the common interface --------------------------------------------------
    def stage_file(self, path: str) -> Event:
        """Ensure ``path`` is on disk; the event fires with the
        :class:`StoredFile`.  Disk hits complete immediately; tape misses
        trigger (or join) a staging; unknown files fail the event."""
        done = self.sim.event()
        now = self.sim.now
        cached = self.pool.lookup(path, now)
        if cached is not None:
            done.succeed(cached)
            return done
        pending = self._in_flight.get(path)
        if pending is not None:
            # Join the staging already under way.
            def follow(sim=self.sim):
                try:
                    stored = yield pending
                except StorageError as exc:
                    done.fail(exc)
                    return
                done.succeed(stored)

            self.sim.spawn(follow(), name=f"follow-stage {path}")
            return done
        if self.mss is None or not self.mss.contains(path):
            done.fail(
                TapeError(f"{self.pool.fs.site}: {path!r} neither on disk nor on tape")
            )
            return done
        staging = self.mss.stage_to_pool(self.pool, path)
        self._in_flight[path] = staging

        def finish(sim=self.sim):
            try:
                stored = yield staging
            except StorageError as exc:
                del self._in_flight[path]
                done.fail(exc)
                return
            del self._in_flight[path]
            done.succeed(stored)

        self.sim.spawn(finish(), name=f"finish-stage {path}")
        return done

    def archive_file(self, path: str) -> Event:
        """Migrate a disk file to tape via the MSS."""
        if self.mss is None:
            failed = self.sim.event()
            failed.fail(StorageError(f"{self.pool.fs.site}: no MSS attached"))
            return failed
        return self.mss.migrate(self.pool, path)

    def release_file(self, path: str) -> None:
        """Drop one pin; the pool may evict the file afterwards."""
        self.pool.unpin(path)
