"""Mass Storage System: the tape archive behind each site's disk pool.

Models an HPSS-class system: a fixed number of tape drives (a
:class:`~repro.simulation.resources.Resource`), a mount+seek latency per
staging request, and a sustained streaming rate.  Staging is a simulation
process; concurrent requests queue for drives — this is why GDMP must
trigger stage requests explicitly and early (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.simulation.kernel import Event, Simulator
from repro.simulation.monitor import Monitor
from repro.simulation.resources import Resource
from repro.storage.diskpool import DiskPool
from repro.storage.filesystem import StorageError, StoredFile

__all__ = ["MassStorageSystem", "TapeError"]


class TapeError(StorageError):
    """File not in the archive, or archive misuse."""


@dataclass
class _ArchivedFile:
    path: str
    size: float
    content_id: str
    payload: object = None
    attrs: dict = field(default_factory=dict)


class MassStorageSystem:
    """A site's tape store."""

    def __init__(
        self,
        sim: Simulator,
        site: str,
        drives: int = 2,
        mount_seek_time: float = 45.0,
        tape_rate: float = 15e6,
        metrics=None,
    ):
        if mount_seek_time < 0 or tape_rate <= 0:
            raise ValueError("invalid tape timing parameters")
        self.sim = sim
        self.site = site
        self.mount_seek_time = mount_seek_time
        self.tape_rate = tape_rate
        self._drives = Resource(sim, capacity=drives)
        self._archive: dict[str, _ArchivedFile] = {}
        self.monitor = Monitor()
        #: optional MetricsRegistry: per-site staging latency histograms
        self.metrics = metrics
        #: fault injection (see :mod:`repro.faults`): stagings holding a
        #: drive before this sim-time stall until it passes (a robot arm
        #: wedged, an operator fixing a library)...
        self.fault_stall_until = 0.0
        #: ...and this many upcoming stagings fail outright with
        #: :class:`TapeError` (bad media, drive errors).
        self.fault_error_next = 0

    # -- fault injection -------------------------------------------------------
    def inject_stall(self, until: float) -> None:
        """Stall staging: drives acquired before ``until`` (sim-time) hold
        position until the stall clears, then proceed normally."""
        self.fault_stall_until = max(self.fault_stall_until, until)

    def inject_errors(self, count: int = 1) -> None:
        """Fail the next ``count`` stagings with :class:`TapeError`."""
        self.fault_error_next += int(count)

    # -- archive contents ----------------------------------------------------
    def contains(self, path: str) -> bool:
        """Whether the archive holds the path."""
        return path in self._archive

    def archive_record(self, path: str) -> _ArchivedFile:
        """The archive record of a path; raises TapeError when absent."""
        try:
            return self._archive[path]
        except KeyError:
            raise TapeError(f"{self.site} MSS: {path!r} not archived") from None

    def ingest(self, stored: StoredFile) -> None:
        """Record a disk file into the archive (synchronous bookkeeping;
        use :meth:`migrate` for the timed tape write)."""
        self._archive[stored.path] = _ArchivedFile(
            path=stored.path,
            size=stored.size,
            content_id=stored.content_id,
            payload=stored.payload,
            attrs=dict(stored.attrs),
        )

    def ingest_raw(self, path: str, size: float, content_id: str | None = None,
                   payload=None) -> None:
        """Seed the archive directly (initial experiment state)."""
        self._archive[path] = _ArchivedFile(
            path=path,
            size=size,
            content_id=content_id or f"{self.site}:tape:{path}:{size:.0f}",
            payload=payload,
        )

    # -- staging ---------------------------------------------------------------
    def stage_time(self, size: float) -> float:
        """Drive-occupancy time for one staging (excludes queueing)."""
        return self.mount_seek_time + size / self.tape_rate

    def stage_to_pool(self, pool: DiskPool, path: str) -> Event:
        """Start staging ``path`` from tape into ``pool``; the returned event
        fires with the :class:`StoredFile` once the file is on disk."""
        record = self.archive_record(path)
        done = self.sim.event()

        def staging(sim=self.sim):
            request = self._drives.request()
            queued_at = sim.now
            yield request
            self.monitor.timeseries("drive_wait").sample(sim.now, sim.now - queued_at)
            try:
                if self.fault_error_next > 0:
                    self.fault_error_next -= 1
                    self.monitor.count("stage_faults")
                    raise TapeError(
                        f"{self.site} MSS: injected drive error staging "
                        f"{record.path!r}"
                    )
                extra = self.fault_stall_until - sim.now
                if extra > 0:
                    self.monitor.count("stage_stalls")
                    yield sim.timeout(extra)
                yield sim.timeout(self.stage_time(record.size))
                if pool.fs.exists(record.path):
                    stored = pool.fs.stat(record.path)
                else:
                    pool.ensure_space(record.size)
                    stored = pool.fs.create(
                        record.path,
                        record.size,
                        content_id=record.content_id,
                        now=sim.now,
                        payload=record.payload,
                        **record.attrs,
                    )
                self.monitor.count("staged_files")
                self.monitor.count("staged_bytes", record.size)
                if self.metrics is not None:
                    # end-to-end staging latency: queue wait + mount/seek
                    # + streaming time, observed once per staged file
                    self.metrics.histogram(
                        "storage.mss.stage_latency", site=self.site
                    ).observe(sim.now - queued_at)
                    self.metrics.counter(
                        "storage.mss.staged_bytes", site=self.site
                    ).inc(record.size)
            except StorageError as exc:
                self._drives.release(request)
                done.fail(exc)
                return
            self._drives.release(request)
            done.succeed(stored)

        self.sim.spawn(staging(), name=f"stage {path} @ {self.site}")
        return done

    def migrate(self, pool: DiskPool, path: str) -> Event:
        """Write a disk-pool file to tape (the reverse of staging); event
        fires when the tape copy exists."""
        stored = pool.fs.stat(path)
        done = self.sim.event()

        def migration(sim=self.sim):
            request = self._drives.request()
            yield request
            yield sim.timeout(self.stage_time(stored.size))
            self.ingest(stored)
            self.monitor.count("migrated_files")
            self._drives.release(request)
            done.succeed(self._archive[path])

        self.sim.spawn(migration(), name=f"migrate {path} @ {self.site}")
        return done
