"""Site storage substrate: filesystem, disk-pool cache, tape MSS, HRM.

§4.4 of the paper: "files are permanently stored in Mass Storage Systems
(MSS) such as HPSS and moved between disk to tape on demand.  Thus, a disk
pool is considered as a cache.  GDMP provides a plug-in for initiating file
stage requests on demand between a disk pool and a Mass Storage System."

* :class:`~repro.storage.filesystem.FileSystem` — a site's disk storage with
  capacity accounting, content identity (CRC), and I/O rates;
* :class:`~repro.storage.diskpool.DiskPool` — the grid transfer cache with
  pinning and LRU eviction;
* :class:`~repro.storage.mss.MassStorageSystem` — tape: drives, mount/seek
  latency, streaming rate;
* :class:`~repro.storage.hrm.HierarchicalResourceManager` — the uniform
  staging API (the paper's HRM plug-in [Bern00]).
"""

from repro.storage.diskpool import DiskPool, PinError, Reservation
from repro.storage.filesystem import FileSystem, StorageError, StoredFile, file_crc
from repro.storage.hrm import HierarchicalResourceManager, StageStatus
from repro.storage.mss import MassStorageSystem, TapeError

__all__ = [
    "DiskPool",
    "FileSystem",
    "HierarchicalResourceManager",
    "MassStorageSystem",
    "PinError",
    "Reservation",
    "StageStatus",
    "StorageError",
    "StoredFile",
    "TapeError",
    "file_crc",
]
