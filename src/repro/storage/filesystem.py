"""A site's simulated disk filesystem.

Files carry a *content identity* token rather than real bytes (the grid
moves multi-GB files; materializing them would be pointless).  The CRC the
data mover checks is derived from that token, so a faithful copy has a
matching CRC and an injected corruption does not — exactly the check GDMP
performs on top of TCP's 16-bit checksums (§4.3).

Small files that need real content (object-database files, index files)
may attach a ``payload`` object; payloads travel with copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

# Re-exported for the many call sites that import it from here; the
# canonical definition (with the corruption/partial/mixed markers it
# pairs with) lives in repro.storage.integrity.
from repro.storage.integrity import corrupt_content_id, file_crc

__all__ = ["StorageError", "StoredFile", "FileSystem", "file_crc"]


class StorageError(Exception):
    """Missing file, exhausted capacity, or invalid operation."""


@dataclass
class StoredFile:
    """One file on a site's disk."""

    path: str
    size: float
    content_id: str
    created_at: float = 0.0
    last_access: float = 0.0
    payload: Any = None
    attrs: dict = field(default_factory=dict)

    @property
    def crc(self) -> int:
        return file_crc(self.content_id)

    def clone(self, path: str, now: float) -> "StoredFile":
        """A faithful copy: same content identity (hence same CRC)."""
        return replace(self, path=path, created_at=now, last_access=now,
                       attrs=dict(self.attrs))


class FileSystem:
    """Disk storage at one site."""

    def __init__(
        self,
        site: str,
        capacity: float = float("inf"),
        read_rate: float = float("inf"),
        write_rate: float = float("inf"),
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.site = site
        self.capacity = capacity
        self.read_rate = read_rate
        self.write_rate = write_rate
        self._files: dict[str, StoredFile] = {}
        self._used = 0.0

    # -- queries -----------------------------------------------------------
    @property
    def used(self) -> float:
        return self._used

    @property
    def free(self) -> float:
        return self.capacity - self._used

    def exists(self, path: str) -> bool:
        """Whether a file exists at the path."""
        return path in self._files

    def stat(self, path: str) -> StoredFile:
        """The StoredFile at a path; raises StorageError when missing."""
        try:
            return self._files[path]
        except KeyError:
            raise StorageError(f"{self.site}: no such file {path!r}") from None

    def listing(self, prefix: str = "") -> list[StoredFile]:
        """Files whose paths start with ``prefix``, sorted by path."""
        return sorted(
            (f for p, f in self._files.items() if p.startswith(prefix)),
            key=lambda f: f.path,
        )

    # -- mutation ----------------------------------------------------------
    def create(
        self,
        path: str,
        size: float,
        content_id: Optional[str] = None,
        now: float = 0.0,
        payload: Any = None,
        **attrs,
    ) -> StoredFile:
        """Create a file, charging its size against free space."""
        if path in self._files:
            raise StorageError(f"{self.site}: file exists {path!r}")
        if size < 0:
            raise ValueError("size must be non-negative")
        if size > self.free:
            raise StorageError(
                f"{self.site}: no space for {path!r} "
                f"({size:.0f} B needed, {self.free:.0f} B free)"
            )
        stored = StoredFile(
            path=path,
            size=size,
            content_id=content_id or f"{self.site}:{path}:{size:.0f}",
            created_at=now,
            last_access=now,
            payload=payload,
            attrs=dict(attrs),
        )
        self._files[path] = stored
        self._used += size
        return stored

    def store(self, stored: StoredFile) -> StoredFile:
        """Place an already-built :class:`StoredFile` (e.g. a clone arriving
        from a transfer)."""
        if stored.path in self._files:
            raise StorageError(f"{self.site}: file exists {stored.path!r}")
        if stored.size > self.free:
            raise StorageError(f"{self.site}: no space for {stored.path!r}")
        self._files[stored.path] = stored
        self._used += stored.size
        return stored

    def delete(self, path: str) -> StoredFile:
        """Delete a file, reclaiming its space; returns the removed record."""
        stored = self.stat(path)
        del self._files[path]
        self._used -= stored.size
        return stored

    def touch_access(self, path: str, now: float) -> None:
        """Update a file's last-access time (cache recency)."""
        self.stat(path).last_access = now

    def corrupt(self, path: str) -> None:
        """Failure injection: silently damage the stored content so the
        CRC no longer matches the original."""
        stored = self.stat(path)
        stored.content_id = corrupt_content_id(stored.content_id)

    # -- I/O timing ---------------------------------------------------------
    def read_time(self, nbytes: float) -> float:
        """Seconds to read ``nbytes`` at this disk's read rate."""
        return nbytes / self.read_rate if self.read_rate != float("inf") else 0.0

    def write_time(self, nbytes: float) -> float:
        """Seconds to write ``nbytes`` at this disk's write rate."""
        return nbytes / self.write_rate if self.write_rate != float("inf") else 0.0
