"""The disk pool: a site's grid transfer cache in front of the MSS.

§4.4: "we assume that each site has a disk pool that can be regarded as a
data transfer cache for the Grid".  Files being served or received are
*pinned*; unpinned files are evictable in LRU order when space is needed
for a stage-in or an incoming replica.
"""

from __future__ import annotations

from repro.storage.filesystem import FileSystem, StorageError, StoredFile

__all__ = ["DiskPool", "PinError", "Reservation"]


class PinError(StorageError):
    """Pin accounting violation."""


class Reservation:
    """A space reservation (§4.4's ``allocate_storage(datasize)``).

    Reserved bytes are excluded from the pool's available space until the
    reservation is either *consumed* (the incoming file materialized) or
    *released* (the transfer failed).  Both are idempotent.
    """

    def __init__(self, pool: "DiskPool", nbytes: float):
        self.pool = pool
        self.nbytes = nbytes
        self.active = True

    def consume(self) -> None:
        """The reserved space is now occupied by the real file."""
        if self.active:
            self.active = False
            self.pool._reserved -= self.nbytes

    def release(self) -> None:
        """Give the space back (transfer failed or was cancelled)."""
        if self.active:
            self.active = False
            self.pool._reserved -= self.nbytes


class DiskPool:
    """Pinning + LRU eviction + space reservation over a :class:`FileSystem`."""

    def __init__(self, filesystem: FileSystem):
        self.fs = filesystem
        self._pins: dict[str, int] = {}
        self._reserved = 0.0
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    @property
    def reserved(self) -> float:
        return self._reserved

    @property
    def available(self) -> float:
        """Free space not spoken for by outstanding reservations."""
        return self.fs.free - self._reserved

    # -- pinning -----------------------------------------------------------
    def pin(self, path: str) -> None:
        """Add one pin to a file, protecting it from eviction."""
        self.fs.stat(path)  # must exist
        self._pins[path] = self._pins.get(path, 0) + 1

    def unpin(self, path: str) -> None:
        """Drop one pin; raises PinError when not pinned."""
        count = self._pins.get(path, 0)
        if count <= 0:
            raise PinError(f"unpin without pin: {path!r}")
        if count == 1:
            del self._pins[path]
        else:
            self._pins[path] = count - 1

    def pin_count(self, path: str) -> int:
        """Current pin count of a path (0 when unpinned)."""
        return self._pins.get(path, 0)

    # -- cache behaviour ------------------------------------------------------
    def lookup(self, path: str, now: float) -> StoredFile | None:
        """Cache probe; updates hit/miss statistics and recency."""
        if self.fs.exists(path):
            self.hits += 1
            self.fs.touch_access(path, now)
            return self.fs.stat(path)
        self.misses += 1
        return None

    def evictable(self) -> list[StoredFile]:
        """Unpinned files, least recently used first."""
        return sorted(
            (f for f in self.fs.listing() if self._pins.get(f.path, 0) == 0),
            key=lambda f: (f.last_access, f.path),
        )

    def ensure_space(self, nbytes: float) -> list[str]:
        """Evict LRU unpinned files until ``nbytes`` fit; returns evicted
        paths.  Raises :class:`StorageError` if pins make it impossible."""
        if nbytes > self.fs.capacity:
            raise StorageError(
                f"{self.fs.site}: request of {nbytes:.0f} B exceeds pool capacity"
            )
        evicted: list[str] = []
        candidates = iter(self.evictable())
        while self.available < nbytes:
            victim = next(candidates, None)
            if victim is None:
                raise StorageError(
                    f"{self.fs.site}: cannot free {nbytes:.0f} B, "
                    "all remaining files are pinned or reserved"
                )
            self.fs.delete(victim.path)
            self._pins.pop(victim.path, None)
            evicted.append(victim.path)
            self.evictions += 1
        return evicted

    def reserve(self, nbytes: float) -> Reservation:
        """Allocate space for an incoming file before the transfer starts
        (evicting cold files if needed); raises :class:`StorageError` when
        the space cannot be guaranteed."""
        if nbytes < 0:
            raise ValueError("reservation must be non-negative")
        self.ensure_space(nbytes)
        self._reserved += nbytes
        return Reservation(self, nbytes)

    def admit(
        self,
        path: str,
        size: float,
        now: float,
        content_id: str | None = None,
        payload=None,
        pin: bool = True,
    ) -> StoredFile:
        """Make room and create ``path`` in the pool (pinned by default,
        since admission is always on behalf of an in-flight operation)."""
        self.ensure_space(size)
        stored = self.fs.create(path, size, content_id=content_id, now=now,
                                payload=payload)
        if pin:
            self.pin(path)
        return stored

    def admit_clone(self, source: StoredFile, path: str, now: float,
                    pin: bool = True) -> StoredFile:
        """Admit a faithful copy of ``source`` under ``path``."""
        self.ensure_space(source.size)
        stored = self.fs.store(source.clone(path, now))
        if pin:
            self.pin(path)
        return stored
