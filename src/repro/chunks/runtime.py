"""Grid-level assembly of the chunked-transfer stack.

:class:`ChunkRuntime` wires, onto an existing
:class:`~repro.gdmp.grid.DataGrid`:

* the :class:`~repro.chunks.directory.ChunkDirectoryService` on the
  directory host (default: the catalog host), with the exactly-once
  manifest-registration hook into the replica catalog when the grid
  runs a central catalog backend;
* one :class:`~repro.chunks.store.ChunkStoreClient` per site (each with
  its own txn-minting directory proxy and, when the grid weather
  service is up, that site's forecast cache for transfer-time-aware
  chunk ordering);
* a dedicated :class:`~repro.workload.queue.TaskQueueService` for the
  ``scrub``/``repair`` lanes on the directory host — the scrub fleet is
  its own workload, not a tenant of a replication pipeline's queue;
* the :class:`~repro.chunks.scrub.ScrubPlanner` plus one scrubber and
  one repairer per scrub site; and
* the ``chunks.repair_backlog`` / ``chunks.scrub_backlog`` gauges the
  health report renders.

Standing processes are spawned by :meth:`start`, never the constructor,
so fault-free event schedules stay untouched until an experiment opts
in.  :meth:`run_scrub_pass` is the driven alternative: one audit pass,
then wait for the queue to drain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chunks.directory import (
    ChunkDirectory,
    ChunkDirectoryProxy,
    ChunkDirectoryService,
)
from repro.chunks.manifest import Manifest
from repro.chunks.scrub import Repairer, Scrubber, ScrubPlanner
from repro.chunks.store import ChunkStoreClient
from repro.simulation.kernel import Process
from repro.storage.integrity import file_crc
from repro.workload.queue import TaskQueueProxy, TaskQueueService

__all__ = ["ChunkConfig", "ChunkRuntime"]


@dataclass
class ChunkConfig:
    """Shape and operation of the chunk stack on one grid."""

    k: int = 4
    m: int = 2
    #: sites eligible to hold chunk replicas (default: every site);
    #: must be at least k+m wide for site-disjoint stripes
    placement_sites: Optional[list[str]] = None
    #: sites running a scrubber + repairer pair (default: directory host)
    scrub_sites: Optional[list[str]] = None
    #: where the directory + scrub queue live (default: catalog host)
    directory_host: Optional[str] = None
    #: placement salt (defaults to the grid's engine seed)
    salt: Optional[int] = None
    poll: float = 5.0
    lease: float = 120.0
    max_attempts: int = 6
    #: standing-mode scrub cadence (sim-seconds)
    scrub_period: float = 600.0
    extra: dict = field(default_factory=dict)


class ChunkRuntime:
    """The chunk subsystem of one grid."""

    def __init__(self, grid, config: Optional[ChunkConfig] = None):
        self.grid = grid
        self.config = config or ChunkConfig()
        config = self.config
        self.directory_host = config.directory_host or grid.catalog_host
        if self.directory_host not in grid.sites:
            raise ValueError(
                f"directory host {self.directory_host!r} is not a site"
            )
        placement = sorted(config.placement_sites or grid.sites)
        for name in placement:
            if name not in grid.sites:
                raise ValueError(f"placement site {name!r} is not a site")
        salt = config.salt if config.salt is not None else grid.engine_seed
        register = None
        if grid.catalog_backend is not None:
            register = self._register_manifest
        self.directory = ChunkDirectory(
            placement, salt=salt, register=register
        )
        host_site = grid.sites[self.directory_host]
        self.service = ChunkDirectoryService(
            host_site.request_server, self.directory, metrics=grid.metrics
        )
        #: the scrub fleet's own queue (``scrub``/``repair`` lanes)
        self.queue_service = TaskQueueService(
            host_site.request_server,
            metrics=None,  # workload gauges belong to the pipeline queue
            default_lease=config.lease,
            max_attempts=config.max_attempts,
        )
        self.stores: dict[str, ChunkStoreClient] = {}
        for name in sorted(grid.sites):
            site = grid.sites[name]
            proxy = ChunkDirectoryProxy(
                site.request_client, self.directory_host
            )
            weather = None
            if grid.weather is not None:
                weather = grid.weather.site_weather.get(name)
            self.stores[name] = ChunkStoreClient(
                site, proxy, grid.topology,
                metrics=grid.metrics, weather=weather,
            )
        scrub_sites = sorted(config.scrub_sites or [self.directory_host])
        for name in scrub_sites:
            if name not in grid.sites:
                raise ValueError(f"scrub site {name!r} is not a site")
        self.scrub_sites = scrub_sites
        self.scrubbers: list[Scrubber] = []
        self.repairers: list[Repairer] = []
        for name in scrub_sites:
            site = grid.sites[name]
            qproxy = TaskQueueProxy(site.request_client, self.directory_host)
            self.scrubbers.append(Scrubber(
                grid.sim, qproxy, site, self.stores[name],
                poll=config.poll, lease=config.lease, metrics=grid.metrics,
            ))
            self.repairers.append(Repairer(
                grid.sim, qproxy, site, self.stores[name],
                poll=config.poll, lease=config.lease, metrics=grid.metrics,
            ))
        planner_site = grid.sites[self.directory_host]
        self.planner = ScrubPlanner(
            grid.sim,
            ChunkDirectoryProxy(
                planner_site.request_client, self.directory_host
            ),
            TaskQueueProxy(planner_site.request_client, self.directory_host),
            scrub_sites,
            metrics=grid.metrics,
        )
        self.started = False
        if grid.metrics is not None:
            grid.metrics.add_collector(self._collect)

    # -- catalog integration -------------------------------------------------
    def _register_manifest(self, manifest: Manifest) -> None:
        """Exactly-once manifest record in the replica catalog.  Rides
        the idempotent ``adopt`` path under the reserved ``manifest:``
        LFN namespace, so a replayed commit can never double-register."""
        self.grid.catalog_backend.adopt(
            f"manifest:{manifest.object}",
            self.directory_host,
            size=manifest.size,
            modified=self.grid.sim.now,
            crc=file_crc(manifest.fingerprint),
            attributes={
                "kind": "chunk-manifest",
                "k": str(manifest.k),
                "m": str(manifest.m),
                "fingerprint": manifest.fingerprint,
                "chunks": str(len(manifest.chunks)),
            },
        )

    # -- telemetry -----------------------------------------------------------
    def _collect(self, registry) -> None:
        queue = self.queue_service.queue
        queue._expire_leases()
        backlog = {"scrub": 0, "repair": 0}
        for task in queue.tasks.values():
            if task.type in backlog and task.state in ("pending", "claimed"):
                backlog[task.type] += 1
        registry.gauge("chunks.repair_backlog").set(backlog["repair"])
        registry.gauge("chunks.scrub_backlog").set(backlog["scrub"])

    # -- operation -----------------------------------------------------------
    def store(self, site: str) -> ChunkStoreClient:
        return self.stores[site]

    def start(self, *, standing_planner: bool = False) -> None:
        """Opt in: spawn the scrub/repair claim loops (and, optionally,
        the standing planner)."""
        if self.started:
            return
        self.started = True
        for component in [*self.scrubbers, *self.repairers]:
            component.start()
        if standing_planner:
            self.planner.start(self.config.scrub_period)

    def run_scrub_pass(self, poll: float = 5.0,
                       timeout: float = 100_000.0) -> Process:
        """One driven audit pass: plan, then wait until the scrub queue
        is fully drained (every scrub and repair task terminal)."""
        if not self.started:
            self.start()

        def run():
            submitted = yield self.planner.run_pass()
            started = self.grid.sim.now
            while not self.queue_service.queue.terminal():
                if self.grid.sim.now - started > timeout:
                    raise RuntimeError("scrub pass did not drain")
                yield self.grid.sim.timeout(poll)
            return submitted

        return self.grid.sim.spawn(run(), name="chunk-scrub-drive")

    def fingerprint(self) -> str:
        """Directory + scrub-queue state, canonical text."""
        return (
            self.directory.fingerprint()
            + "\n"
            + self.queue_service.queue.fingerprint()
        )
