"""Seeded deterministic chunk placement: site-disjoint stripes.

Placement is a pure function of (object name, placement sites, stripe
width, salt) — no clock, no RNG state — so the directory, an uploader
replaying a crashed commit, and a repairer restoring a wiped site all
derive the *same* targets independently.  The policy is a rotated ring:
sites are sorted, the stripe starts at a blake2b-derived offset (the
salt is the grid seed, so different deployments spread differently),
and consecutive stripe members land on consecutive ring positions —
guaranteeing the k+m members of one stripe occupy k+m *distinct* sites,
which is what makes "any m site losses survivable" true site-wise and
not just chunk-wise.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

__all__ = ["place_stripe", "stripe_start"]


def stripe_start(object_name: str, n_sites: int, salt: int = 0) -> int:
    """Ring offset of an object's stripe (uniform over sites)."""
    digest = hashlib.blake2b(
        f"{salt}:{object_name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_sites


def place_stripe(
    object_name: str,
    sites: Sequence[str],
    n_chunks: int,
    salt: int = 0,
) -> list[str]:
    """Target site per stripe index, site-disjoint.

    Raises :class:`ValueError` when the stripe is wider than the site
    pool (disjointness would be impossible, and with it the durability
    contract).
    """
    ordered = sorted(set(sites))
    if n_chunks > len(ordered):
        raise ValueError(
            f"stripe of {n_chunks} chunks needs {n_chunks} distinct "
            f"sites, have {len(ordered)}"
        )
    start = stripe_start(object_name, len(ordered), salt)
    return [
        ordered[(start + index) % len(ordered)]
        for index in range(n_chunks)
    ]
