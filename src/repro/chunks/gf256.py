"""A deterministic, pure-python systematic Reed–Solomon coder over GF(256).

The erasure math behind k-of-n chunk placement: ``k`` data shards are
expanded with ``m`` parity shards such that *any* ``k`` of the ``k+m``
survive an erasure pattern and reconstruct the data exactly.

Construction: a ``(k+m) × k`` Vandermonde matrix over GF(2^8)
(evaluation points ``0..k+m-1``, all distinct, so every ``k``-row
submatrix is invertible) is normalized by the inverse of its top
``k × k`` block.  The result is *systematic* — the first ``k`` rows are
the identity, so data shards pass through unchanged — and keeps the
any-k-of-n property, because row selections of ``V · V_top⁻¹`` are
products of an invertible Vandermonde selection with an invertible
matrix.

Everything is integer table lookups — no floats, no randomness, no
external dependencies — so encode/decode is bit-identical everywhere.
The hot loops ride C-speed primitives: multiplying a whole shard by a
GF constant is one ``bytes.translate`` over a precomputed 256-byte
table, and shard XOR is one big-int XOR.

Degenerate shapes are first-class: ``m=0`` is pure striping (no parity,
no loss tolerance beyond the data itself) and ``k=1`` is replication
(every parity shard is a scaled copy; any single survivor restores the
data).
"""

from __future__ import annotations

__all__ = ["GF256", "ReedSolomon", "gf_mul", "gf_inv", "gf_pow"]

#: the conventional Reed–Solomon field polynomial x^8+x^4+x^3+x^2+1;
#: any primitive polynomial works, this one matches the tables in the
#: classic storage-coding literature.
_POLY = 0x11D

_GF_EXP = [0] * 512
_GF_LOG = [0] * 256


def _build_tables() -> None:
    x = 1
    for i in range(255):
        _GF_EXP[i] = x
        _GF_LOG[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _POLY
    for i in range(255, 512):
        _GF_EXP[i] = _GF_EXP[i - 255]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Product in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _GF_EXP[255 - _GF_LOG[a]]


def gf_pow(a: int, n: int) -> int:
    """``a**n`` in GF(256) (with ``0**0 == 1``)."""
    if n == 0:
        return 1
    if a == 0:
        return 0
    return _GF_EXP[(_GF_LOG[a] * n) % 255]


#: per-constant 256-byte multiplication tables for bytes.translate —
#: built once at import (64 KiB), shared by every coder instance
_MUL_TABLES = tuple(
    bytes(gf_mul(c, b) for b in range(256)) for c in range(256)
)


class GF256:
    """Namespace handle for the field primitives (test introspection)."""

    mul = staticmethod(gf_mul)
    inv = staticmethod(gf_inv)
    pow = staticmethod(gf_pow)
    exp = _GF_EXP
    log = _GF_LOG


def _scaled(shard: bytes, c: int) -> int:
    """``c * shard`` as a big integer (0 stays 0, 1 skips the table)."""
    if c == 0:
        return 0
    if c == 1:
        return int.from_bytes(shard, "big")
    return int.from_bytes(shard.translate(_MUL_TABLES[c]), "big")


def _invert(matrix: list[list[int]]) -> list[list[int]]:
    """Gauss–Jordan inversion of a small matrix over GF(256)."""
    n = len(matrix)
    aug = [list(row) + [int(i == j) for j in range(n)]
           for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next(
            (r for r in range(col, n) if aug[r][col] != 0), None
        )
        if pivot is None:
            raise ValueError("singular matrix")
        if pivot != col:
            aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = gf_inv(aug[col][col])
        aug[col] = [gf_mul(v, inv_p) for v in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [
                    v ^ gf_mul(factor, p)
                    for v, p in zip(aug[r], aug[col])
                ]
    return [row[n:] for row in aug]


class ReedSolomon:
    """Systematic ``(k, m)`` erasure coder: any k of k+m reconstruct."""

    def __init__(self, k: int, m: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        if m < 0:
            raise ValueError("m must be non-negative")
        if k + m > 255:
            raise ValueError("k + m must not exceed 255")
        self.k = k
        self.m = m
        self.n = k + m
        vandermonde = [
            [gf_pow(r, c) for c in range(k)] for r in range(self.n)
        ]
        top_inv = _invert([row[:] for row in vandermonde[:k]])
        #: the systematic encoding matrix: identity on top, parity below
        self.matrix = [
            [
                self._dot(vrow, [top_inv[i][c] for i in range(k)])
                for c in range(k)
            ]
            for vrow in vandermonde
        ]

    @staticmethod
    def _dot(a: list[int], b: list[int]) -> int:
        acc = 0
        for x, y in zip(a, b):
            acc ^= gf_mul(x, y)
        return acc

    def _combine(self, rows: list[list[int]],
                 shards: list[bytes]) -> list[bytes]:
        """``rows @ shards`` with whole-shard table lookups."""
        width = len(shards[0])
        out = []
        for row in rows:
            acc = 0
            for coef, shard in zip(row, shards):
                if coef:
                    acc ^= _scaled(shard, coef)
            out.append(acc.to_bytes(width, "big"))
        return out

    # -- encoding -----------------------------------------------------------
    def encode(self, data_shards: list[bytes]) -> list[bytes]:
        """The ``m`` parity shards for ``k`` equal-length data shards."""
        if len(data_shards) != self.k:
            raise ValueError(
                f"expected {self.k} data shards, got {len(data_shards)}"
            )
        widths = {len(s) for s in data_shards}
        if len(widths) != 1:
            raise ValueError("data shards must be equal length")
        if self.m == 0:
            return []
        return self._combine(self.matrix[self.k:], list(data_shards))

    def encode_stripe(self, data_shards: list[bytes]) -> list[bytes]:
        """Data + parity shards, in stripe index order."""
        return list(data_shards) + self.encode(data_shards)

    # -- decoding -----------------------------------------------------------
    def decode(self, available: dict[int, bytes]) -> list[bytes]:
        """The ``k`` data shards from any ``k`` surviving stripe members.

        ``available`` maps stripe index (0..n-1; data first, then
        parity) to shard bytes.  Raises :class:`ValueError` with fewer
        than ``k`` survivors.  Decoding is deterministic: survivors are
        consumed in ascending index order.
        """
        indices = sorted(available)
        if any(i < 0 or i >= self.n for i in indices):
            raise ValueError("stripe index out of range")
        if len(indices) < self.k:
            raise ValueError(
                f"need {self.k} shards to reconstruct, have {len(indices)}"
            )
        use = indices[: self.k]
        if use == list(range(self.k)):
            # all data shards survived: systematic passthrough
            return [available[i] for i in use]
        sub = [self.matrix[i] for i in use]
        inv = _invert(sub)
        return self._combine(inv, [available[i] for i in use])

    def reconstruct(self, available: dict[int, bytes],
                    missing: list[int]) -> dict[int, bytes]:
        """Rebuild exactly the ``missing`` stripe members (data or
        parity) from any ``k`` survivors — the repair path re-encodes
        only the lost members."""
        data = self.decode(available)
        out: dict[int, bytes] = {}
        for index in missing:
            if index < 0 or index >= self.n:
                raise ValueError("stripe index out of range")
            if index < self.k:
                out[index] = data[index]
            else:
                out[index] = self._combine(
                    [self.matrix[index]], data
                )[0]
        return out
