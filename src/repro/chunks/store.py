"""The per-site chunk store client: DFS-style upload and k-of-n read.

``put_object`` is the write path: purge abandoned staging debris, build
the manifest locally (pure computation — the directory rebuilds it
independently and would reject a disagreeing shape), ``chunk.init`` for
targets + the dedup-filtered upload list, stage each needed chunk
locally and STOR it to its placement site — weather-aware order, per-chunk
CKSM verification, and a verify-don't-trust handler for the 553 "file
exists" race — then ``chunk.commit`` exactly once.

``fetch_object`` is the read path: pull the manifest, rank every
``(chunk, holder site)`` pair by predicted transfer time (data chunks
ahead of parity so the systematic passthrough wins when the stripe is
healthy), fetch with ranked failover until any ``k`` stripe members are
on local disk, verify each witness against its content address, decode,
check the object fingerprint, and materialize the file.

All failures surface as :class:`ChunkStoreError`, a
:class:`~repro.gdmp.request_manager.GdmpError` subclass, so the scrub /
repair pipeline components treat them as retryable task failures rather
than crashes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.chunks.directory import ChunkDirectoryProxy
from repro.chunks.gf256 import ReedSolomon
from repro.chunks.manifest import (
    Manifest,
    build_manifest,
    chunk_content_id,
    chunk_crc,
    chunk_path,
    object_fingerprint,
)
from repro.gdmp.data_mover import DataMoverError
from repro.gdmp.replica_selection import estimate_transfer_time
from repro.gdmp.request_manager import GdmpError
from repro.gridftp.client import TransferError
from repro.netsim.topology import RouteError
from repro.services.bus import ServiceError
from repro.simulation.kernel import Process

__all__ = ["ChunkStoreClient", "ChunkStoreError", "PutReport", "FetchReport"]

#: where in-flight chunk files live on local disk; anything under this
#: prefix at the start of an operation is debris from an abandoned run
STAGE_PREFIX = "stage/chunks/"


class ChunkStoreError(GdmpError):
    """A chunk operation failed (retryable at the task layer)."""


@dataclass(frozen=True)
class PutReport:
    """Accounting for one completed ``put_object``."""

    object: str
    fingerprint: str
    chunks_uploaded: int
    chunks_deduped: int
    bytes_uploaded: float
    duration: float


@dataclass(frozen=True)
class FetchReport:
    """Accounting for one completed ``fetch_object``."""

    object: str
    fingerprint: str
    chunks_fetched: int
    failovers: int          # (chunk, site) attempts that failed over
    decoded: bool           # False = systematic passthrough, no math
    bytes_fetched: float
    duration: float


class ChunkStoreClient:
    """Chunked transfer endpoint at one site."""

    def __init__(self, site, proxy: ChunkDirectoryProxy, topology, *,
                 metrics=None, weather=None):
        self.site = site                # GdmpSite runtime
        self.sim = site.sim
        self.proxy = proxy
        self.topology = topology
        self.metrics = metrics
        #: optional SiteWeather: history-aware transfer-time estimates
        self.weather = weather

    # -- shared plumbing ----------------------------------------------------
    def _count(self, event: str, value: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "chunks.store", site=self.site.name, event=event,
            ).inc(value)

    def purge_staging(self) -> int:
        """Remove abandoned in-flight chunk files (crash debris).  Chunk
        staging is content-addressed, so debris is never *wrong* content —
        but it pins disk space and, left in place, would make a later
        stage-create collide; every operation starts clean."""
        debris = self.site.fs.listing(STAGE_PREFIX)
        for stored in debris:
            self.site.fs.delete(stored.path)
        if debris:
            self._count("staging_purged", len(debris))
        return len(debris)

    def _estimate(self, src: str, dst: str, size: float) -> float:
        """Predicted seconds to move ``size`` bytes; unroutable pairs
        rank last rather than erroring (failover may still succeed)."""
        try:
            return estimate_transfer_time(
                self.topology, src, dst, size, weather=self.weather
            ).estimated_time
        except (RouteError, KeyError):
            return float("inf")

    def _stage(self, chunk_id: str, witness: bytes, size: float):
        """Materialize one chunk on local disk under the staging prefix."""
        path = STAGE_PREFIX + chunk_id
        if self.site.fs.exists(path):
            self.site.fs.delete(path)
        return self.site.fs.create(
            path, size,
            content_id=chunk_content_id(chunk_id),
            now=self.sim.now,
            payload=witness,
        )

    def _upload_chunk(self, session, chunk_id: str, witness: bytes,
                      size: float):
        """STOR one staged chunk to the connected site, verify-don't-trust.

        A 553 "file exists" is the dedup/crash race: some earlier upload
        (ours or another object's) already placed this chunk id.  The
        existing replica is verified by CKSM — content addressing means a
        matching CRC *is* the right content — and a mismatching one
        (e.g. corrupted before our retry) is evicted with DELE and
        re-uploaded.  Generator, driven with ``yield from``.
        """
        ftp = self.site.gridftp_client
        remote = chunk_path(chunk_id)
        stage = self._stage(chunk_id, witness, size)
        expected = chunk_crc(chunk_id)
        try:
            uploaded = 0.0
            try:
                yield ftp.put(session, stage.path, remote)
                uploaded = size
            except TransferError as exc:
                if exc.reply is None or exc.reply.code != 553:
                    raise ChunkStoreError(
                        f"upload of {chunk_id} failed: {exc}"
                    ) from exc
            remote_crc = yield ftp.checksum(session, remote)
            if remote_crc != expected:
                # losing half of the 553 race against a *corrupt* replica
                # (or our own STOR raced a fault): evict and re-place
                yield ftp.delete(session, remote)
                self._count("evicted_bad_replica")
                yield ftp.put(session, stage.path, remote)
                uploaded += size
                remote_crc = yield ftp.checksum(session, remote)
                if remote_crc != expected:
                    raise ChunkStoreError(
                        f"chunk {chunk_id} CRC still wrong after re-upload"
                    )
            return uploaded
        finally:
            if self.site.fs.exists(stage.path):
                self.site.fs.delete(stage.path)

    def upload_chunks(self, per_site: dict[str, list[tuple[str, bytes]]],
                      size: float):
        """Upload witnesses to their target sites, one gridftp session
        per site, cheapest-looking site first.  Generator; returns
        ``(placements, bytes_uploaded)``.  Shared by ``put_object`` and
        the repair worker."""
        order = sorted(
            per_site,
            key=lambda s: (self._estimate(self.site.name, s, size), s),
        )
        placements: list[tuple[str, str]] = []
        bytes_uploaded = 0.0
        for target in order:
            try:
                session = yield self.site.gridftp_client.connect(target)
            except TransferError as exc:
                raise ChunkStoreError(
                    f"connect to {target!r} failed: {exc}"
                ) from exc
            try:
                for chunk_id, witness in per_site[target]:
                    bytes_uploaded += yield from self._upload_chunk(
                        session, chunk_id, witness, size
                    )
                    placements.append((chunk_id, target))
            finally:
                try:
                    yield self.site.gridftp_client.quit(session)
                except TransferError:
                    pass
        return placements, bytes_uploaded

    # -- write path ---------------------------------------------------------
    def put_object(self, object_name: str, size: float, content_key: str,
                   k: int, m: int) -> Process:
        """Chunk, erasure-code, place, verify, and commit one object."""

        def run():
            started = self.sim.now
            self.purge_staging()
            manifest, witnesses = build_manifest(
                object_name, size, content_key, k, m
            )
            try:
                init = yield self.proxy.init(
                    object_name, size, content_key, k, m
                )
            except ServiceError as exc:
                raise ChunkStoreError(f"chunk.init failed: {exc}") from exc
            targets: dict[str, str] = init["targets"]
            needed = set(init["needed"])
            per_site: dict[str, list[tuple[str, bytes]]] = {}
            for spec in manifest.chunks:
                if spec.chunk_id in needed:
                    per_site.setdefault(targets[spec.chunk_id], []).append(
                        (spec.chunk_id, witnesses[spec.chunk_id])
                    )
            placements, bytes_uploaded = yield from self.upload_chunks(
                per_site, manifest.chunk_size
            )
            try:
                yield self.proxy.commit(object_name, placements)
            except ServiceError as exc:
                raise ChunkStoreError(f"chunk.commit failed: {exc}") from exc
            deduped = len(manifest.chunks) - len(needed)
            self._count("chunks_uploaded", len(placements))
            if deduped:
                self._count("chunks_deduped", deduped)
            self._count("put_bytes", bytes_uploaded)
            self._count("objects_put")
            return PutReport(
                object=object_name,
                fingerprint=manifest.fingerprint,
                chunks_uploaded=len(placements),
                chunks_deduped=deduped,
                bytes_uploaded=bytes_uploaded,
                duration=self.sim.now - started,
            )

        return self.sim.spawn(
            run(), name=f"chunk-put {object_name}@{self.site.name}"
        )

    # -- read path ----------------------------------------------------------
    def _ranked_sources(self, manifest: Manifest,
                        locations: dict[str, list[str]]):
        """(spec, [sites cheapest-first]) per chunk: data chunks first
        (systematic decode is free), then parity; local replicas rank
        ahead of everything by construction (zero network estimate)."""
        ranked = []
        for spec in list(manifest.data_chunks) + list(manifest.parity_chunks):
            holders = locations.get(spec.chunk_id, [])
            ordered = sorted(
                holders,
                key=lambda s: (
                    0.0 if s == self.site.name
                    else self._estimate(s, self.site.name,
                                        manifest.chunk_size),
                    s,
                ),
            )
            ranked.append((spec, ordered))
        return ranked

    def _fetch_chunk(self, spec, sites: list[str], size: float):
        """One chunk from the cheapest holder that actually delivers it.
        Generator; returns ``(witness, bytes_fetched, failovers)`` or
        raises :class:`ChunkStoreError` when every holder fails."""
        local = STAGE_PREFIX + spec.chunk_id
        failovers = 0
        for source in sites:
            if self.site.fs.exists(local):
                self.site.fs.delete(local)
            if source == self.site.name:
                held = self.site.fs.listing(chunk_path(spec.chunk_id))
                if held and held[0].crc == spec.crc:
                    return held[0].payload, 0.0, failovers
                failovers += 1
                continue
            try:
                report = yield self.site.mover.fetch(
                    source,
                    chunk_path(spec.chunk_id),
                    local,
                    expected_crc=spec.crc,
                )
            except (DataMoverError, TransferError, ServiceError):
                failovers += 1
                self._count("fetch_failover")
                continue
            witness = report.stored.payload
            if (witness is None or hashlib.blake2b(
                    witness, digest_size=16).hexdigest() != spec.chunk_id):
                # CRC passed but the witness does not hash to the content
                # address: a tampered payload — treat the replica as bad
                self.site.fs.delete(local)
                failovers += 1
                self._count("witness_mismatch")
                continue
            return witness, report.stored.size, failovers
        raise ChunkStoreError(
            f"no live replica of chunk {spec.chunk_id} "
            f"(tried {len(sites)} sites)"
        )

    def fetch_object(self, object_name: str, local_path: str) -> Process:
        """Reconstruct one object from any k available chunk replicas."""

        def run():
            started = self.sim.now
            self.purge_staging()
            try:
                info = yield self.proxy.manifest(object_name)
            except ServiceError as exc:
                raise ChunkStoreError(
                    f"chunk.manifest failed: {exc}"
                ) from exc
            manifest = Manifest.from_wire(info["manifest"])
            shards: dict[int, bytes] = {}
            bytes_fetched = 0.0
            failovers = 0
            errors = []
            for spec, sites in self._ranked_sources(
                    manifest, info["locations"]):
                if len(shards) >= manifest.k:
                    break
                try:
                    witness, nbytes, hops = yield from self._fetch_chunk(
                        spec, sites, manifest.chunk_size
                    )
                except ChunkStoreError as exc:
                    errors.append(str(exc))
                    continue
                shards[spec.index] = witness
                bytes_fetched += nbytes
                failovers += hops
            if len(shards) < manifest.k:
                self._count("fetch_failed")
                raise ChunkStoreError(
                    f"cannot reconstruct {object_name!r}: only "
                    f"{len(shards)} of {manifest.k} chunks reachable "
                    f"({'; '.join(errors)})"
                )
            decoded = sorted(shards)[: manifest.k] != list(range(manifest.k))
            coder = ReedSolomon(manifest.k, manifest.m)
            data = coder.decode(shards)
            fingerprint = object_fingerprint(data, manifest.size)
            if fingerprint != manifest.fingerprint:
                self._count("fetch_failed")
                raise ChunkStoreError(
                    f"reconstruction of {object_name!r} does not match the "
                    f"manifest fingerprint"
                )
            self.purge_staging()
            if self.site.fs.exists(local_path):
                self.site.fs.delete(local_path)
            self.site.fs.create(
                local_path, manifest.size,
                content_id=manifest.content_key,
                now=self.sim.now,
            )
            self._count("fetch_bytes", bytes_fetched)
            self._count("objects_fetched")
            if decoded:
                self._count("decodes")
            return FetchReport(
                object=object_name,
                fingerprint=fingerprint,
                chunks_fetched=len(shards),
                failovers=failovers,
                decoded=decoded,
                bytes_fetched=bytes_fetched,
                duration=self.sim.now - started,
            )

        return self.sim.spawn(
            run(), name=f"chunk-fetch {object_name}@{self.site.name}"
        )

    # -- repair support ------------------------------------------------------
    def fetch_stripe(self, manifest: Manifest,
                     locations: dict[str, list[str]],
                     skip: Optional[set[str]] = None):
        """Any ``k`` stripe members onto local disk (for re-encoding).
        ``skip`` marks chunk ids known bad (don't waste fetches).
        Generator; returns ``({index: witness}, bytes_fetched)``."""
        shards: dict[int, bytes] = {}
        bytes_fetched = 0.0
        for spec, sites in self._ranked_sources(manifest, locations):
            if len(shards) >= manifest.k:
                break
            if skip and spec.chunk_id in skip:
                continue
            try:
                witness, nbytes, _ = yield from self._fetch_chunk(
                    spec, sites, manifest.chunk_size
                )
            except ChunkStoreError:
                continue
            shards[spec.index] = witness
            bytes_fetched += nbytes
        if len(shards) < manifest.k:
            raise ChunkStoreError(
                f"stripe of {manifest.object!r} unrecoverable: only "
                f"{len(shards)} of {manifest.k} members reachable"
            )
        return shards, bytes_fetched
