"""The standing scrub/repair pipeline on the claim-based work queue.

Durability is a process, not a property: replicas rot (bit flips, wiped
sites), so a standing audit must find damage and spend the *minimum*
traffic putting it right.  Three pieces, all riding the
:mod:`repro.workload` queue machinery:

``ScrubPlanner``
    Walks the directory's committed objects and submits one keyed
    ``scrub`` task per object per pass.  Keys are *cycle-numbered*
    (``scrub:<object>#c<n>``) — the queue records done/dead keys
    forever, so a bare per-object key would coalesce every later pass
    onto the first pass's finished task and the audit would run once,
    ever.
``Scrubber``
    A :class:`~repro.workload.components.PipelineComponent` claiming
    ``scrub`` tasks.  Probes every recorded chunk replica with a CKSM
    round trip (no data moves; content addressing means the manifest
    predicts every healthy replica's CRC) and submits one keyed
    ``repair`` task when anything is missing, corrupt, or unreachable.
``Repairer``
    Claims ``repair`` tasks.  Re-probes first (the damage may have been
    healed by a racing repair — exactly-once in effect), then fetches
    any ``k`` healthy stripe members, re-encodes *only* the lost
    members, and re-uploads them to their original placement sites.
    Repair traffic is therefore ``(k + lost)/k`` object-sizes instead of
    the ``lost`` whole-object copies naive re-replication would move.
    The honest-traffic rule: witnesses are always re-derived from
    *fetched* chunks, never regenerated from the content key, so the
    simulated network pays what a real repair would.

Both components fail retryably (ServiceError) on transient trouble; the
queue's leases + ``max_attempts`` turn persistent trouble into visible
``dead`` tasks.
"""

from __future__ import annotations

from typing import Optional

from repro.chunks.gf256 import ReedSolomon
from repro.chunks.manifest import Manifest, chunk_path
from repro.chunks.store import ChunkStoreClient, ChunkStoreError
from repro.gridftp.client import TransferError
from repro.services.bus import ServiceError
from repro.simulation.kernel import Interrupt, Process
from repro.workload.components import PipelineComponent

__all__ = ["ScrubPlanner", "Scrubber", "Repairer",
           "scrub_key", "repair_key"]


def scrub_key(object_name: str, cycle: int) -> str:
    """Dedup key of one object's audit in one scrub pass."""
    return f"scrub:{object_name}#c{cycle}"


def repair_key(object_name: str, cycle: int) -> str:
    """Dedup key of one object's repair obligation from one pass."""
    return f"repair:{object_name}#c{cycle}"


class _ProbeMixin:
    """CKSM probing shared by scrubber and repairer.

    ``plan`` maps holder site to ``[(chunk_id, expected_crc)]``; the
    result maps ``(chunk_id, site)`` to an outcome: ``ok`` (CRC
    matches), ``corrupt`` (CRC differs), ``missing`` (no such file), or
    ``unreachable`` (the probe itself failed).  Probes of the local site
    read the filesystem directly — no loopback transfer exists to ride.
    """

    def _probe(self, plan: dict[str, list[tuple[str, int]]]):
        outcomes: dict[tuple[str, str], str] = {}
        site = self.site
        for holder in sorted(plan):
            checks = plan[holder]
            if holder == site.name:
                for chunk_id, crc in checks:
                    path = chunk_path(chunk_id)
                    if not site.fs.exists(path):
                        outcomes[(chunk_id, holder)] = "missing"
                    elif site.fs.stat(path).crc != crc:
                        outcomes[(chunk_id, holder)] = "corrupt"
                    else:
                        outcomes[(chunk_id, holder)] = "ok"
                continue
            try:
                session = yield site.gridftp_client.connect(holder)
            except (TransferError, ServiceError):
                for chunk_id, _ in checks:
                    outcomes[(chunk_id, holder)] = "unreachable"
                continue
            try:
                for chunk_id, crc in checks:
                    try:
                        remote = yield site.gridftp_client.checksum(
                            session, chunk_path(chunk_id)
                        )
                    except TransferError as exc:
                        code = exc.reply.code if exc.reply else None
                        outcomes[(chunk_id, holder)] = (
                            "missing" if code == 550 else "unreachable"
                        )
                        continue
                    outcomes[(chunk_id, holder)] = (
                        "ok" if remote == crc else "corrupt"
                    )
            finally:
                try:
                    yield site.gridftp_client.quit(session)
                except (TransferError, ServiceError):
                    pass
        return outcomes

    def _scrub_count(self, outcome: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter("chunks.scrub", outcome=outcome).inc(amount)


class Scrubber(_ProbeMixin, PipelineComponent):
    """Audit one object's chunk replicas without moving data."""

    NAME = "scrubber"
    TYPE = "scrub"
    BATCH = 4

    def __init__(self, sim, proxy, site, store: ChunkStoreClient, *,
                 poll: float = 5.0, lease: float = 60.0, metrics=None):
        super().__init__(sim, proxy, site, poll=poll, lease=lease,
                         metrics=metrics)
        self.store = store

    def work(self, task: dict):
        object_name = task["payload"]["object"]
        cycle = task["payload"]["cycle"]
        try:
            info = yield self.store.proxy.manifest(object_name)
        except ServiceError as exc:
            raise ChunkStoreError(
                f"scrub of {object_name!r}: manifest unavailable: {exc}"
            ) from exc
        manifest = Manifest.from_wire(info["manifest"])
        locations: dict[str, list[str]] = info["locations"]
        plan: dict[str, list[tuple[str, int]]] = {}
        bad: list[list] = []
        for spec in manifest.chunks:
            holders = locations.get(spec.chunk_id) or []
            if not holders:
                # no replica on record at all (e.g. an earlier repair
                # evicted the last copy before its re-upload landed)
                bad.append([spec.chunk_id, "", "lost"])
                continue
            for holder in holders:
                plan.setdefault(holder, []).append(
                    (spec.chunk_id, spec.crc)
                )
        outcomes = yield from self._probe(plan)
        tally: dict[str, int] = {}
        for (chunk_id, holder), outcome in sorted(outcomes.items()):
            tally[outcome] = tally.get(outcome, 0) + 1
            if outcome != "ok":
                bad.append([chunk_id, holder, outcome])
        for _ in (entry for entry in bad if entry[2] == "lost"):
            tally["lost"] = tally.get("lost", 0) + 1
        for outcome, amount in sorted(tally.items()):
            self._scrub_count(outcome, amount)
        if bad:
            yield self.proxy.submit(
                "repair", task["site"],
                {"object": object_name, "cycle": cycle, "bad": bad},
                key=repair_key(object_name, cycle),
            )
        return {"checked": len(outcomes), "bad": len(bad)}


class Repairer(_ProbeMixin, PipelineComponent):
    """Re-encode and re-place exactly the lost stripe members."""

    NAME = "repairer"
    TYPE = "repair"
    BATCH = 1

    def __init__(self, sim, proxy, site, store: ChunkStoreClient, *,
                 poll: float = 5.0, lease: float = 60.0, metrics=None):
        super().__init__(sim, proxy, site, poll=poll, lease=lease,
                         metrics=metrics)
        self.store = store

    def _count_repair(self, event: str, amount: float = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter("chunks.repair", event=event).inc(amount)

    def work(self, task: dict):
        object_name = task["payload"]["object"]
        reported: list[list] = task["payload"]["bad"]
        try:
            info = yield self.store.proxy.manifest(object_name)
        except ServiceError as exc:
            raise ChunkStoreError(
                f"repair of {object_name!r}: manifest unavailable: {exc}"
            ) from exc
        manifest = Manifest.from_wire(info["manifest"])
        locations: dict[str, list[str]] = info["locations"]
        targets: dict[str, str] = info["targets"]
        # re-verify before spending traffic: a racing repair (lease
        # expiry re-ran the task) may already have healed the damage
        plan: dict[str, list[tuple[str, int]]] = {}
        for chunk_id, holder, _ in reported:
            if holder:
                plan.setdefault(holder, []).append(
                    (chunk_id, manifest.spec_by_id(chunk_id).crc)
                )
        outcomes = yield from self._probe(plan)
        still_bad: list[tuple[str, str, str]] = []
        for chunk_id, holder, outcome in reported:
            if not holder:
                if not locations.get(chunk_id):
                    still_bad.append((chunk_id, "", "lost"))
                continue
            verdict = outcomes.get((chunk_id, holder), "missing")
            if verdict != "ok":
                still_bad.append((chunk_id, holder, verdict))
        healed = len(reported) - len(still_bad)
        if healed:
            self._count_repair("already_healed", healed)
        if not still_bad:
            return {"repaired": 0, "healed": healed}
        bad_ids = {chunk_id for chunk_id, _, _ in still_bad}
        missing_indices = sorted(
            spec.index for spec in manifest.chunks
            if spec.chunk_id in bad_ids
        )
        # the honest-traffic rule: rebuild from k *fetched* members
        shards, fetched = yield from self.store.fetch_stripe(
            manifest, locations, skip=bad_ids
        )
        rebuilt = ReedSolomon(manifest.k, manifest.m).reconstruct(
            shards, missing_indices
        )
        per_site: dict[str, list[tuple[str, bytes]]] = {}
        for index in missing_indices:
            spec = manifest.chunks[index]
            per_site.setdefault(targets[spec.chunk_id], []).append(
                (spec.chunk_id, rebuilt[index])
            )
        placements, uploaded = yield from self.store.upload_chunks(
            per_site, manifest.chunk_size
        )
        removed = [
            (chunk_id, holder)
            for chunk_id, holder, _ in still_bad if holder
        ]
        try:
            yield self.store.proxy.repair_done(
                object_name, repaired=placements, removed=removed
            )
        except ServiceError as exc:
            raise ChunkStoreError(
                f"repair_done for {object_name!r} failed: {exc}"
            ) from exc
        self._count_repair("chunks_rebuilt", len(placements))
        self._count_repair("bytes_fetched", fetched)
        self._count_repair("bytes_uploaded", uploaded)
        self._count_repair("objects")
        self.store.purge_staging()
        return {"repaired": len(placements), "healed": healed,
                "bytes_fetched": fetched, "bytes_uploaded": uploaded}


class ScrubPlanner:
    """Submit one keyed ``scrub`` task per committed object per pass."""

    def __init__(self, sim, directory_proxy, queue_proxy,
                 scrub_sites: list[str], *, metrics=None):
        if not scrub_sites:
            raise ValueError("need at least one scrub site")
        self.sim = sim
        self.directory_proxy = directory_proxy
        self.queue_proxy = queue_proxy
        self.scrub_sites = sorted(scrub_sites)
        self.metrics = metrics
        self.cycle = 0
        self.passes = 0
        self.process: Optional[Process] = None

    def _pass(self):
        self.cycle += 1
        cycle = self.cycle
        objects = yield self.directory_proxy.list_objects()
        tasks = [
            {
                "type": "scrub",
                # deterministic round-robin over the scrub fleet
                "site": self.scrub_sites[i % len(self.scrub_sites)],
                "key": scrub_key(object_name, cycle),
                "payload": {"object": object_name, "cycle": cycle},
            }
            for i, object_name in enumerate(objects)
        ]
        if tasks:
            yield self.queue_proxy.submit_bulk(tasks)
        self.passes += 1
        if self.metrics is not None:
            self.metrics.counter("chunks.scrub_passes").inc()
        return len(tasks)

    def run_pass(self) -> Process:
        """One driven audit pass (the experiment harness's mode)."""
        return self.sim.spawn(self._pass(), name="chunk-scrub-pass")

    def start(self, period: float) -> Process:
        """Standing mode: a pass every ``period`` sim-seconds.  Spawned
        explicitly (never from a constructor) so fault-free event
        schedules stay untouched until an experiment opts in."""

        def run():
            try:
                while True:
                    yield self.sim.timeout(period)
                    try:
                        yield from self._pass()
                    except ServiceError:
                        continue  # queue/directory unreachable: next tick
            except Interrupt:
                return

        self.process = self.sim.spawn(run(), name="chunk-scrub-planner")
        return self.process
