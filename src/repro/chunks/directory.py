"""The chunk directory: manifests, chunk locations, and the ``chunk.*`` bus ops.

The upload protocol is DFS-style and crash-safe:

``chunk.init``
    Registers (or replays) the object's manifest, computes the seeded
    deterministic site-disjoint placement, and answers with the per-chunk
    target sites plus which chunks actually need uploading — chunks whose
    id already has a live replica anywhere (content-address dedup across
    objects) are skipped.
``chunk.commit``
    After the per-chunk transfers verified, flips the manifest to
    ``committed``, records the chunk replica locations, bumps chunk
    refcounts, and registers the manifest record in the replica catalog
    *exactly once* — the handler is txn-idempotent like the ``task.*``
    ops (a crash-replayed commit returns the stored verdict) and the
    catalog write itself rides the idempotent ``adopt`` path, so no
    replay can double-register.
``chunk.manifest`` / ``chunk.list``
    Read side: manifest + current replica locations; the committed
    object inventory (what the scrub planner walks).
``chunk.repair_done``
    The repair worker's commit: replica locations lost to scrubbed-out
    corruption are dropped and the re-encoded replacements recorded,
    idempotently.

All state lives in :class:`ChunkDirectory`, a plain deterministic
in-memory structure with a canonical ``fingerprint()`` the determinism
gates diff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.chunks.manifest import Manifest, build_manifest
from repro.chunks.placement import place_stripe
from repro.gdmp.request_manager import (
    REQUEST_MESSAGE_SIZE,
    AuthenticatedRequest,
    GdmpError,
    RequestClient,
    RequestServer,
)
from repro.simulation.kernel import Process

__all__ = ["ChunkDirectory", "ChunkDirectoryService", "ChunkDirectoryProxy"]

#: wire-size increment per chunk entry in init/commit/manifest envelopes
CHUNK_ITEM_SIZE = 96


@dataclass
class _DirectoryStats:
    inits: int = 0
    commits: int = 0
    recommits: int = 0
    dedup_chunks: int = 0
    repairs: int = 0
    repaired_chunks: int = 0
    evicted_replicas: int = 0


class ChunkDirectory:
    """Deterministic in-memory manifest + location state."""

    def __init__(
        self,
        placement_sites: list[str],
        salt: int = 0,
        register: Optional[Callable[[Manifest], None]] = None,
    ):
        if not placement_sites:
            raise ValueError("need at least one placement site")
        self.placement_sites = sorted(set(placement_sites))
        self.salt = salt
        #: exactly-once catalog hook (e.g. GdmpCatalog.adopt, idempotent)
        self.register = register
        self.manifests: dict[str, Manifest] = {}
        #: object -> "uploading" | "committed"
        self.states: dict[str, str] = {}
        #: chunk_id -> sites holding a (believed-good) replica
        self.locations: dict[str, set[str]] = {}
        #: chunk_id -> committed manifests referencing it (dedup refcount)
        self.refcounts: dict[str, int] = {}
        self._registered: set[str] = set()
        self.stats = _DirectoryStats()

    # -- write path ---------------------------------------------------------
    def init(self, object_name: str, size: float, content_key: str,
             k: int, m: int) -> tuple[Manifest, dict[str, str], list[str]]:
        """Start (or resume) an upload.  Returns ``(manifest, targets,
        needed)``: target site per chunk id, and the chunk ids that still
        need a transfer (everything without a live replica)."""
        existing = self.manifests.get(object_name)
        if existing is not None:
            if (existing.content_key != content_key
                    or existing.size != size
                    or existing.k != k or existing.m != m):
                raise GdmpError(
                    f"object {object_name!r} already registered with a "
                    "different shape/content"
                )
            manifest = existing
        else:
            manifest, _ = build_manifest(object_name, size, content_key, k, m)
            self.manifests[object_name] = manifest
            self.states[object_name] = "uploading"
        placement = place_stripe(
            object_name, self.placement_sites, k + m, self.salt
        )
        targets = {
            spec.chunk_id: placement[spec.index]
            for spec in manifest.chunks
        }
        needed = [
            spec.chunk_id for spec in manifest.chunks
            if not self.locations.get(spec.chunk_id)
        ]
        self.stats.inits += 1
        self.stats.dedup_chunks += len(manifest.chunks) - len(needed)
        return manifest, targets, needed

    def commit(self, object_name: str,
               placements: list[tuple[str, str]]) -> dict:
        """Record verified chunk replicas and seal the manifest."""
        manifest = self.manifests.get(object_name)
        if manifest is None:
            raise GdmpError(f"no manifest for {object_name!r}")
        known = {spec.chunk_id for spec in manifest.chunks}
        for chunk_id, site in placements:
            if chunk_id not in known:
                raise GdmpError(
                    f"chunk {chunk_id!r} is not part of {object_name!r}"
                )
            self.locations.setdefault(chunk_id, set()).add(site)
        first = self.states.get(object_name) != "committed"
        if first:
            self.states[object_name] = "committed"
            for spec in manifest.chunks:
                self.refcounts[spec.chunk_id] = (
                    self.refcounts.get(spec.chunk_id, 0) + 1
                )
            self.stats.commits += 1
            if self.register is not None and object_name not in self._registered:
                self.register(manifest)
                self._registered.add(object_name)
        else:
            self.stats.recommits += 1
        return {
            "state": self.states[object_name],
            "replicas": sum(
                len(self.locations.get(spec.chunk_id, ()))
                for spec in manifest.chunks
            ),
            "first_commit": first,
        }

    def record_repair(self, object_name: str,
                      repaired: list[tuple[str, str]],
                      removed: list[tuple[str, str]]) -> dict:
        """The repair worker's location update (idempotent)."""
        manifest = self.manifests.get(object_name)
        if manifest is None:
            raise GdmpError(f"no manifest for {object_name!r}")
        known = {spec.chunk_id for spec in manifest.chunks}
        evicted = 0
        for chunk_id, site in removed:
            if chunk_id in known:
                holders = self.locations.get(chunk_id)
                if holders and site in holders:
                    holders.discard(site)
                    evicted += 1
        added = 0
        for chunk_id, site in repaired:
            if chunk_id not in known:
                raise GdmpError(
                    f"chunk {chunk_id!r} is not part of {object_name!r}"
                )
            holders = self.locations.setdefault(chunk_id, set())
            if site not in holders:
                holders.add(site)
                added += 1
        self.stats.repairs += 1
        self.stats.repaired_chunks += added
        self.stats.evicted_replicas += evicted
        return {"repaired": added, "evicted": evicted}

    # -- read path ----------------------------------------------------------
    def manifest_info(self, object_name: str) -> tuple[Manifest, dict, dict]:
        """Manifest, replica locations, and placement targets (the
        original site per chunk — where a repair must re-place it)."""
        manifest = self.manifests.get(object_name)
        if manifest is None:
            raise GdmpError(f"no manifest for {object_name!r}")
        locations = {
            spec.chunk_id: sorted(self.locations.get(spec.chunk_id, ()))
            for spec in manifest.chunks
        }
        placement = place_stripe(
            object_name, self.placement_sites,
            manifest.k + manifest.m, self.salt,
        )
        targets = {
            spec.chunk_id: placement[spec.index]
            for spec in manifest.chunks
        }
        return manifest, locations, targets

    def objects(self, state: Optional[str] = "committed") -> list[str]:
        return sorted(
            name for name, st in self.states.items()
            if state is None or st == state
        )

    def replica_count(self) -> int:
        return sum(len(holders) for holders in self.locations.values())

    def fingerprint(self) -> str:
        """Canonical directory state for the determinism gates."""
        lines = [
            "chunkdir "
            + " ".join(
                f"{k}={v}" for k, v in sorted(vars(self.stats).items())
            )
        ]
        for name in sorted(self.manifests):
            manifest = self.manifests[name]
            lines.append(
                f"{self.states.get(name, '?')} {manifest.repr_line()}"
            )
            for spec in manifest.chunks:
                holders = ",".join(
                    sorted(self.locations.get(spec.chunk_id, ()))
                ) or "-"
                lines.append(
                    f"  {spec.index} {spec.kind} {spec.chunk_id} @ {holders}"
                )
        return "\n".join(lines)


class ChunkDirectoryService:
    """``chunk.*`` operations on a site's request server (txn-idempotent)."""

    def __init__(self, server: RequestServer, directory: ChunkDirectory,
                 *, metrics=None):
        self.server = server
        self.directory = directory
        self.metrics = metrics
        self._applied: dict[str, object] = {}
        for op in ("init", "commit", "manifest", "list", "repair_done"):
            server.register(f"chunk.{op}", getattr(self, f"_op_{op}"))
        if metrics is not None:
            metrics.add_collector(self._collect)

    def _count(self, op: str) -> None:
        if self.metrics is not None:
            self.metrics.counter("chunks.directory", op=op).inc()

    def _collect(self, registry) -> None:
        directory = self.directory
        states = {"uploading": 0, "committed": 0}
        for state in directory.states.values():
            states[state] = states.get(state, 0) + 1
        for state, value in sorted(states.items()):
            registry.gauge("chunks.objects", state=state).set(value)
        registry.gauge("chunks.unique_chunks").set(
            len([c for c, holders in directory.locations.items() if holders])
        )
        registry.gauge("chunks.replicas").set(directory.replica_count())

    def _seen(self, payload) -> tuple[Optional[str], bool]:
        txn = payload.get("txn") if isinstance(payload, dict) else None
        if txn is not None and txn in self._applied:
            if self.metrics is not None:
                self.metrics.counter("chunks.txn_replays").inc()
            return txn, True
        return txn, False

    # -- handlers -----------------------------------------------------------
    def _op_init(self, request: AuthenticatedRequest):
        p = request.payload
        txn, seen = self._seen(p)
        if seen:
            return self._applied[txn]
        manifest, targets, needed = self.directory.init(
            p["object"], p["size"], p["content_key"], p["k"], p["m"]
        )
        self._count("init")
        result = {
            "manifest": manifest.to_wire(),
            "targets": targets,
            "needed": needed,
        }
        if txn is not None:
            self._applied[txn] = result
        return result
        yield  # pragma: no cover - generator marker

    def _op_commit(self, request: AuthenticatedRequest):
        p = request.payload
        txn, seen = self._seen(p)
        if seen:
            return self._applied[txn]
        result = self.directory.commit(
            p["object"], [tuple(item) for item in p["placements"]]
        )
        self._count("commit")
        if txn is not None:
            self._applied[txn] = result
        return result
        yield  # pragma: no cover

    def _op_manifest(self, request: AuthenticatedRequest):
        manifest, locations, targets = self.directory.manifest_info(
            request.payload["object"]
        )
        self._count("manifest")
        return {
            "manifest": manifest.to_wire(),
            "locations": locations,
            "targets": targets,
        }
        yield  # pragma: no cover

    def _op_list(self, request: AuthenticatedRequest):
        state = request.payload.get("state", "committed")
        return self.directory.objects(state)
        yield  # pragma: no cover

    def _op_repair_done(self, request: AuthenticatedRequest):
        p = request.payload
        txn, seen = self._seen(p)
        if seen:
            return self._applied[txn]
        result = self.directory.record_repair(
            p["object"],
            [tuple(item) for item in p.get("repaired", ())],
            [tuple(item) for item in p.get("removed", ())],
        )
        self._count("repair_done")
        if txn is not None:
            self._applied[txn] = result
        return result
        yield  # pragma: no cover


class ChunkDirectoryProxy:
    """Site-side client of the directory (one authenticated RPC each)."""

    def __init__(self, client: RequestClient, directory_host: str):
        self.client = client
        self.directory_host = directory_host

    def _txn(self) -> str:
        sim = self.client.sim
        return f"{self.client.host.name}:{sim.next_serial('chunk-txn')}"

    def _call(self, operation: str, payload: dict,
              n_items: int = 0) -> Process:
        return self.client.call(
            self.directory_host,
            operation,
            payload,
            size=REQUEST_MESSAGE_SIZE + CHUNK_ITEM_SIZE * n_items,
        )

    def init(self, object_name: str, size: float, content_key: str,
             k: int, m: int) -> Process:
        return self._call("chunk.init", {
            "object": object_name, "size": size,
            "content_key": content_key, "k": k, "m": m,
            "txn": self._txn(),
        }, n_items=k + m)

    def commit(self, object_name: str,
               placements: list[tuple[str, str]]) -> Process:
        return self._call("chunk.commit", {
            "object": object_name,
            "placements": [list(item) for item in placements],
            "txn": self._txn(),
        }, n_items=len(placements))

    def manifest(self, object_name: str) -> Process:
        return self._call("chunk.manifest", {"object": object_name})

    def list_objects(self, state: str = "committed") -> Process:
        return self._call("chunk.list", {"state": state})

    def repair_done(self, object_name: str,
                    repaired: list[tuple[str, str]],
                    removed: list[tuple[str, str]]) -> Process:
        return self._call("chunk.repair_done", {
            "object": object_name,
            "repaired": [list(item) for item in repaired],
            "removed": [list(item) for item in removed],
            "txn": self._txn(),
        }, n_items=len(repaired) + len(removed))
