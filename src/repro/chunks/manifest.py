"""Chunk witnesses, content-addressed chunk ids, and object manifests.

The grid stores multi-GB files as content-identity tokens, but erasure
coding needs real bytes to run real field arithmetic over.  The bridge
is the *witness*: every data chunk of an object carries a small,
deterministic byte string derived from the object's content key and the
chunk's stripe index.  Witnesses are what the
:class:`~repro.chunks.gf256.ReedSolomon` coder genuinely encodes and
decodes — parity witnesses are true GF(256) combinations of the data
witnesses, and reconstruction after a loss recomputes them bit-exactly —
while the *simulated* chunk size (``object size / k``) is what the
transfer plane charges for moving them.

Content addressing falls out: a chunk's id is the blake2b digest of its
witness, so two objects sharing a content key share every chunk id and
the second upload deduplicates against the first.  A chunk replica on a
site's disk lives at ``chunks/<chunk_id>`` with content identity
``chunk:<chunk_id>`` (whose CRC any CKSM probe can check against the
manifest without moving data) and the witness riding as the payload.

The manifest is the object's durable record: size, (k, m) shape,
content key, the ordered chunk ids, and the *object fingerprint* — the
digest of the concatenated data witnesses — which the read path must
reproduce for a fetch to count as byte-identical reconstruction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.chunks.gf256 import ReedSolomon
from repro.storage.integrity import file_crc

__all__ = [
    "WITNESS_SIZE",
    "witness",
    "chunk_id_of",
    "chunk_content_id",
    "chunk_crc",
    "chunk_path",
    "object_fingerprint",
    "ChunkSpec",
    "Manifest",
    "build_manifest",
]

#: bytes of real content per witness — big enough that distinct chunks
#: never collide, small enough that coding costs nothing
WITNESS_SIZE = 32


def witness(content_key: str, index: int, k: int) -> bytes:
    """The deterministic stand-in bytes for data chunk ``index``.

    ``k`` is folded in so the same content striped two different ways
    yields different chunks (a (4,2) stripe shares nothing with a
    (8,3) stripe of the same object).
    """
    return hashlib.blake2b(
        f"shard:{content_key}:{k}:{index}".encode("utf-8"),
        digest_size=WITNESS_SIZE,
    ).digest()


def chunk_id_of(witness_bytes: bytes) -> str:
    """Content address of a chunk: blake2b of its witness."""
    return hashlib.blake2b(witness_bytes, digest_size=16).hexdigest()


def chunk_content_id(chunk_id: str) -> str:
    """The storage content-identity token of a chunk replica."""
    return f"chunk:{chunk_id}"


def chunk_crc(chunk_id: str) -> int:
    """The CRC a CKSM probe of a healthy chunk replica must return."""
    return file_crc(chunk_content_id(chunk_id))


def chunk_path(chunk_id: str) -> str:
    """Site-local path of a chunk replica."""
    return f"chunks/{chunk_id}"


def object_fingerprint(data_witnesses: list[bytes], size: float) -> str:
    """Digest of the reassembled object — byte-identical reconstruction
    means reproducing exactly this string from any k recovered chunks."""
    h = hashlib.blake2b(digest_size=16)
    for w in data_witnesses:
        h.update(w)
    h.update(f"|{size:.0f}".encode("utf-8"))
    return h.hexdigest()


@dataclass(frozen=True)
class ChunkSpec:
    """One stripe member of a manifest."""

    index: int          # stripe position (0..k-1 data, k..k+m-1 parity)
    kind: str           # "data" | "parity"
    chunk_id: str

    @property
    def path(self) -> str:
        return chunk_path(self.chunk_id)

    @property
    def content_id(self) -> str:
        return chunk_content_id(self.chunk_id)

    @property
    def crc(self) -> int:
        return chunk_crc(self.chunk_id)


@dataclass(frozen=True)
class Manifest:
    """The durable description of one chunked object."""

    object: str
    size: float
    k: int
    m: int
    content_key: str
    fingerprint: str
    chunks: tuple[ChunkSpec, ...]

    @property
    def chunk_size(self) -> float:
        """Simulated bytes per chunk (data and parity alike)."""
        return self.size / self.k

    @property
    def data_chunks(self) -> tuple[ChunkSpec, ...]:
        return self.chunks[: self.k]

    @property
    def parity_chunks(self) -> tuple[ChunkSpec, ...]:
        return self.chunks[self.k:]

    def spec_by_id(self, chunk_id: str) -> ChunkSpec:
        for spec in self.chunks:
            if spec.chunk_id == chunk_id:
                return spec
        raise KeyError(chunk_id)

    def to_wire(self) -> dict:
        """Bus-serializable form."""
        return {
            "object": self.object,
            "size": self.size,
            "k": self.k,
            "m": self.m,
            "content_key": self.content_key,
            "fingerprint": self.fingerprint,
            "chunks": [
                (spec.index, spec.kind, spec.chunk_id)
                for spec in self.chunks
            ],
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Manifest":
        return cls(
            object=wire["object"],
            size=wire["size"],
            k=wire["k"],
            m=wire["m"],
            content_key=wire["content_key"],
            fingerprint=wire["fingerprint"],
            chunks=tuple(
                ChunkSpec(index=i, kind=kind, chunk_id=cid)
                for i, kind, cid in wire["chunks"]
            ),
        )

    def repr_line(self) -> str:
        """One canonical fingerprint line for determinism gates."""
        ids = ",".join(spec.chunk_id for spec in self.chunks)
        return (
            f"{self.object} size={self.size:.0f} k={self.k} m={self.m} "
            f"fp={self.fingerprint} chunks={ids}"
        )


def build_manifest(
    object_name: str,
    size: float,
    content_key: str,
    k: int,
    m: int,
) -> tuple[Manifest, dict[str, bytes]]:
    """Deterministically chunk + encode one object.

    Returns the manifest and the witness bytes per chunk id (data and
    parity) — everything an uploader needs to materialize chunk files.
    Pure computation: same inputs give byte-identical results anywhere.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    coder = ReedSolomon(k, m)
    data = [witness(content_key, i, k) for i in range(k)]
    stripe = coder.encode_stripe(data)
    specs = []
    witnesses: dict[str, bytes] = {}
    for index, shard in enumerate(stripe):
        cid = chunk_id_of(shard)
        specs.append(ChunkSpec(
            index=index,
            kind="data" if index < k else "parity",
            chunk_id=cid,
        ))
        witnesses[cid] = shard
    manifest = Manifest(
        object=object_name,
        size=size,
        k=k,
        m=m,
        content_key=content_key,
        fingerprint=object_fingerprint(data, size),
        chunks=tuple(specs),
    )
    return manifest, witnesses
