"""Chunked, content-addressed object transfer with erasure-coded placement.

Logical files are split into fixed-count content-addressed chunks
(blake2b chunk ids, deduplicated across objects), expanded to k data +
m parity chunks by a deterministic pure-python systematic Reed–Solomon
coder over GF(256), and placed site-disjoint across the grid so any k
of the k+m chunk replicas reconstruct the object byte-identically.

Layers:

* :mod:`~repro.chunks.gf256` — the erasure coder;
* :mod:`~repro.chunks.manifest` — witnesses, chunk ids, manifests;
* :mod:`~repro.chunks.placement` — the seeded deterministic stripe
  placement policy;
* :mod:`~repro.chunks.directory` — the ``chunk.*`` bus service
  (init / commit / manifest / repair_done, txn-idempotent like
  ``task.*``) plus its site-side proxy;
* :mod:`~repro.chunks.store` — the per-site client: ``put_object``
  (chunk, place, upload, verify, commit) and ``fetch_object``
  (any-k-of-n reconstruction with ranked failover);
* :mod:`~repro.chunks.scrub` — the standing claim-based scrub/repair
  components on the workload queue;
* :mod:`~repro.chunks.runtime` — grid-level assembly.
"""

from repro.chunks.gf256 import ReedSolomon
from repro.chunks.manifest import (
    ChunkSpec,
    Manifest,
    build_manifest,
    chunk_content_id,
    chunk_crc,
    chunk_id_of,
    chunk_path,
    object_fingerprint,
    witness,
)
from repro.chunks.placement import place_stripe
from repro.chunks.directory import (
    ChunkDirectory,
    ChunkDirectoryProxy,
    ChunkDirectoryService,
)
from repro.chunks.store import ChunkStoreClient, ChunkStoreError
from repro.chunks.scrub import Repairer, Scrubber, ScrubPlanner
from repro.chunks.runtime import ChunkConfig, ChunkRuntime

__all__ = [
    "ReedSolomon",
    "ChunkSpec",
    "Manifest",
    "build_manifest",
    "witness",
    "chunk_id_of",
    "chunk_content_id",
    "chunk_crc",
    "chunk_path",
    "object_fingerprint",
    "place_stripe",
    "ChunkDirectory",
    "ChunkDirectoryService",
    "ChunkDirectoryProxy",
    "ChunkStoreClient",
    "ChunkStoreError",
    "ScrubPlanner",
    "Scrubber",
    "Repairer",
    "ChunkConfig",
    "ChunkRuntime",
]
