"""Experiment harness: one module per figure / table / claim of the paper.

Every experiment exposes ``run(...)`` returning a plain data structure and
``report(result)`` printing the same rows/series the paper shows.  The
benchmarks under ``benchmarks/`` call ``run``; ``python -m repro.experiments
<name>`` prints the report.

Index (see DESIGN.md for the full mapping):

========  ==========================================================
figure5   Fig. 5 — transfer rate vs #streams, default 64 KiB buffers
figure6   Fig. 6 — same with 1 MiB tuned buffers
tuning    §6 claims T1-T3 (tuned-vs-untuned stream equivalences)
buffer    EXP-BDP — throughput vs buffer size; optimal = RTT x bw
objects   EXP-OBJ1 — §5.1 file-vs-object bytes, crossover, P(majority)
pipeline  EXP-OBJ2 — §5.2 pipelined vs sequential object replication
server    EXP-OBJ3 — §5.3 server overhead per serving mode
catalog   EXP-CAT — replica catalog operation latency local vs WAN
gdmp      EXP-GDMP — end-to-end replication pipeline with failures
staging   EXP-MSS — stage-on-demand cost
chaos     EXP-CHAOS — fault-injection campaigns; recovery convergence
workload  EXP-WORKLOAD — claim-based standing pipeline at request scale
rls       EXP-RLS — two-tier replica location: sharded LRCs + bloom RLI
weather   EXP-WEATHER — history-based selection vs probes, tiered grid
chunks    EXP-CHUNKS — erasure-coded chunk stripes; scrub/repair
========  ==========================================================
"""

from repro.experiments import (  # noqa: F401
    buffer_sweep,
    catalog_bench,
    catalog_replication_bench,
    catalog_scale,
    chaos,
    chunks,
    clustering,
    figure5,
    figure6,
    gdmp_pipeline,
    legacy_comparison,
    object_vs_file,
    pipeline,
    remote_access,
    rls,
    server_overhead,
    staging,
    tuning_claims,
    weather,
    workload,
)

EXPERIMENTS = {
    "figure5": figure5,
    "figure6": figure6,
    "tuning": tuning_claims,
    "buffer": buffer_sweep,
    "objects": object_vs_file,
    "pipeline": pipeline,
    "server": server_overhead,
    "catalog": catalog_bench,
    "gdmp": gdmp_pipeline,
    "staging": staging,
    "legacy": legacy_comparison,
    "clustering": clustering,
    "catalog-replication": catalog_replication_bench,
    "catalog-scale": catalog_scale,
    "remote-access": remote_access,
    "chaos": chaos,
    "workload": workload,
    "rls": rls,
    "weather": weather,
    "chunks": chunks,
}

__all__ = ["EXPERIMENTS"]
