"""EXP-OBJ1b: object placement ablation (§5.1).

"A smart initial placement of similar objects together in the same files
can raise the probability, but not by very much.  Furthermore, the
activities of other users are unlikely to create just the right files, as
the physicist just selected objects related to a completely fresh event
set which nobody else has worked on yet."

Four combinations of placement x selection show when clustering helps file
replication and when it cannot: sequential placement rescues a *contiguous*
selection (an old run range), but for a fresh random selection — the
late-analysis regime of §5.1 — placement is irrelevant and object
replication remains the only efficient option.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import print_table
from repro.objectdb import EventStoreBuilder, Federation, ObjectTypeSpec
from repro.objectrep import file_replication_cost, object_replication_cost

__all__ = ["ClusteringAblation", "run", "report"]


@dataclass(frozen=True)
class Case:
    placement: str
    selection: str
    bytes_moved: float
    efficiency: float
    files_moved: int


@dataclass(frozen=True)
class ClusteringAblation:
    n_events: int
    fraction: float
    object_bytes: float          # what object replication ships regardless
    cases: tuple[Case, ...]

    def case(self, placement: str, selection: str) -> Case:
        """The measured case for one (placement, selection) pair."""
        for c in self.cases:
            if c.placement == placement and c.selection == selection:
                return c
        raise KeyError((placement, selection))


def _build(placement: str, n_events: int, events_per_file: int, seed: int):
    federation = Federation("cms", site="cern")
    catalog = EventStoreBuilder(seed=seed).build(
        federation,
        n_events=n_events,
        types=(ObjectTypeSpec("aod", 10_000.0),),
        events_per_file=events_per_file,
        placement=placement,
    )
    return federation, catalog


def run(
    n_events: int = 20_000,
    events_per_file: int = 500,
    fraction: float = 0.02,
    seed: int = 13,
) -> ClusteringAblation:
    """Measure all placement x selection combinations; returns the ablation result."""
    rng = np.random.Generator(np.random.PCG64(seed))
    k = max(1, int(n_events * fraction))
    selections = {
        # an old, placement-correlated slice: the first k event numbers
        "contiguous": list(range(k)),
        # a completely fresh event set (§5.1): uniform random
        "random": sorted(rng.choice(n_events, size=k, replace=False).tolist()),
    }
    cases = []
    object_bytes = None
    for placement in ("sequential", "random"):
        federation, catalog = _build(placement, n_events, events_per_file, seed)
        for selection_name, events in selections.items():
            oids = catalog.oids_for(events, "aod")
            cost = file_replication_cost(federation, catalog, oids)
            cases.append(
                Case(
                    placement=placement,
                    selection=selection_name,
                    bytes_moved=cost.bytes_moved,
                    efficiency=cost.efficiency,
                    files_moved=cost.files_moved,
                )
            )
            if object_bytes is None:
                object_bytes = object_replication_cost(
                    federation, oids, events_per_file
                ).bytes_moved
    return ClusteringAblation(
        n_events=n_events,
        fraction=fraction,
        object_bytes=object_bytes,
        cases=tuple(cases),
    )


def report(result: ClusteringAblation) -> None:
    """Print the paper-style table for the ablation."""
    rows = [
        [
            c.placement,
            c.selection,
            c.files_moved,
            c.bytes_moved / 1e6,
            f"{c.efficiency:.1%}",
        ]
        for c in result.cases
    ]
    print_table(
        ["placement", "selection", "files", "file repl (MB)", "useful"],
        rows,
        f"EXP-OBJ1b — placement x selection at {result.fraction:.0%} "
        f"selection of {result.n_events} events",
    )
    print(
        f"object replication ships {result.object_bytes / 1e6:.1f} MB in every "
        "case — placement only rescues file replication when the selection "
        "correlates with it"
    )
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
