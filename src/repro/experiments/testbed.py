"""The simulated §6 test environment, packaged for experiments.

"The test environment consisted of a 45 Mbps link between CERN and ANL with
a RTT of 125 milliseconds.  The GSI enabled WU-ftpd server version 0.4b6
was used as the test server.  Test programs extended_get and extended_put
from the Globus distribution were the chosen clients."

:func:`gridftp_testbed` builds that: two sites, a GridFTP daemon at CERN,
a client at ANL, plus credentials and gridmap.  :func:`extended_get` is the
measurement program: authenticate once, negotiate buffer/streams, fetch,
report the achieved rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gridftp.client import GridFTPClient
from repro.gridftp.server import GridFTPServer
from repro.netsim.calibration import TestbedParams, cern_anl_testbed
from repro.netsim.channels import MessageNetwork
from repro.netsim.units import GB, to_mbps
from repro.security import CertificateAuthority, GridMap, new_user_credential
from repro.storage.filesystem import FileSystem

__all__ = ["GridFTPTestbed", "gridftp_testbed", "extended_get"]


@dataclass
class GridFTPTestbed:
    sim: object
    topology: object
    engine: object
    msgnet: object
    server: GridFTPServer
    client: GridFTPClient
    server_fs: FileSystem
    client_fs: FileSystem


def gridftp_testbed(
    params: TestbedParams | None = None, metrics=None
) -> GridFTPTestbed:
    """Build the simulated CERN-ANL GridFTP test environment of §6.

    ``metrics`` optionally attaches a
    :class:`~repro.telemetry.metrics.MetricsRegistry` to the engine and
    server; the Fig. 5/6 benches leave it off, so their recorded outputs
    are untouched."""
    sim, topology, engine = cern_anl_testbed(params, metrics=metrics)
    msgnet = MessageNetwork(sim, topology)
    ca = CertificateAuthority()
    gridmap = GridMap()
    server_cred = new_user_credential(ca, "/O=Grid/OU=cern.ch/CN=wuftpd")
    user_cred = new_user_credential(ca, "/O=Grid/OU=anl.gov/CN=tester")
    gridmap.add(server_cred.subject, "ftpd")
    gridmap.add(user_cred.subject, "tester")
    server_fs = FileSystem("cern", capacity=100 * GB)
    client_fs = FileSystem("anl", capacity=100 * GB)
    server = GridFTPServer(
        sim, msgnet, engine, topology.host("cern"), server_fs,
        server_cred, [ca], gridmap, metrics=metrics,
    )
    client = GridFTPClient(
        sim, msgnet, topology.host("anl"),
        user_cred.create_proxy(now=0.0, lifetime=1e9),
        filesystem=client_fs,
    )
    return GridFTPTestbed(
        sim=sim,
        topology=topology,
        engine=engine,
        msgnet=msgnet,
        server=server,
        client=client,
        server_fs=server_fs,
        client_fs=client_fs,
    )


def extended_get(
    testbed: GridFTPTestbed,
    size_bytes: float,
    streams: int,
    buffer: int,
) -> float:
    """One measurement: fetch a ``size_bytes`` file with the given stream
    count and socket buffer; returns the achieved rate in Mbps (transfer
    time as the extended_get program reports it)."""
    tag = testbed.sim.next_serial("testbed-file")
    remote = f"/store/test{tag}.dat"
    local = f"/recv/test{tag}.dat"
    testbed.server_fs.create(remote, size_bytes)

    def measure():
        session = yield testbed.client.connect("cern")
        yield testbed.client.set_buffer(session, buffer)
        if streams != 1:
            yield testbed.client.set_parallelism(session, streams)
        result = yield testbed.client.get(session, remote, local)
        yield testbed.client.quit(session)
        return result

    result = testbed.sim.run(until=testbed.sim.spawn(measure(), name="extended_get"))
    # keep the testbed reusable: drop the moved files
    testbed.server_fs.delete(remote)
    testbed.client_fs.delete(local)
    return to_mbps(result.throughput)
