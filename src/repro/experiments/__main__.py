"""CLI: ``python -m repro.experiments [name ...|all]`` regenerates the
paper's figures/tables as text reports.

``--trace-json=PATH`` additionally dumps the request-trace log (the span
tree of every RPC, GridFTP command, transfer, and catalog update) from
experiments that support it.
"""

from __future__ import annotations

import inspect
import sys

from repro.experiments import EXPERIMENTS


def main(argv: list[str]) -> int:
    """Entry point: run the named experiments (or all) and print reports."""
    trace_path: str | None = None
    names: list[str] = []
    for arg in argv:
        if arg.startswith("--trace-json="):
            trace_path = arg.split("=", 1)[1]
        else:
            names.append(arg)
    names = names or ["all"]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}  (or 'all')")
        return 2
    for name in names:
        module = EXPERIMENTS[name]
        print(f"=== {name} ===")
        kwargs = {}
        if (
            trace_path is not None
            and "trace_path" in inspect.signature(module.main).parameters
        ):
            kwargs["trace_path"] = trace_path
        module.main(**kwargs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
