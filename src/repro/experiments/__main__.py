"""CLI: ``python -m repro.experiments [name ...|all]`` regenerates the
paper's figures/tables as text reports."""

from __future__ import annotations

import sys

from repro.experiments import EXPERIMENTS


def main(argv: list[str]) -> int:
    """Entry point: run the named experiments (or all) and print reports."""
    names = argv or ["all"]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}  (or 'all')")
        return 2
    for name in names:
        module = EXPERIMENTS[name]
        print(f"=== {name} ===")
        module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
