"""CLI: ``python -m repro.experiments [name ...|all]`` regenerates the
paper's figures/tables as text reports.

Telemetry flags (honored by every experiment whose ``main`` supports the
matching keyword; others simply ignore them):

* ``--trace-json=PATH`` — dump the request-trace log (the span tree of
  every RPC, GridFTP command, transfer, and catalog update) as JSON;
* ``--metrics-json=PATH`` — dump the metrics registry snapshot as JSON;
* ``--trace-chrome=PATH`` — dump the trace log as Chrome trace-event JSON
  (load in Perfetto / chrome://tracing);
* ``--report`` — print the terminal grid health report after the run.

Experiment parameters (likewise forwarded only where supported):

* ``--seed=N`` — simulation seed (e.g. the chaos campaign schedule);
* ``--campaign=NAME`` — fault class for the chaos/workload experiments;
* ``--requests=N`` — arrival-stream size for the workload experiment;
* ``--sites=N`` / ``--files=N`` — grid width and per-site file count for
  the RLS experiment.
"""

from __future__ import annotations

import inspect
import sys

from repro.experiments import EXPERIMENTS

#: flag prefix -> main() keyword carrying a path argument
_PATH_FLAGS = {
    "--trace-json=": "trace_path",
    "--metrics-json=": "metrics_json",
    "--trace-chrome=": "trace_chrome",
}

#: flag prefix -> (main() keyword, value converter) for typed flags
_VALUE_FLAGS = {
    "--seed=": ("seed", int),
    "--campaign=": ("campaign", str),
    "--requests=": ("requests", int),
    "--sites=": ("sites", int),
    "--files=": ("files", int),
    "--objects=": ("objects", int),
}


def main(argv: list[str]) -> int:
    """Entry point: run the named experiments (or all) and print reports."""
    forwarded: dict[str, object] = {}
    names: list[str] = []
    for arg in argv:
        for prefix, keyword in _PATH_FLAGS.items():
            if arg.startswith(prefix):
                forwarded[keyword] = arg.split("=", 1)[1]
                break
        else:
            for prefix, (keyword, convert) in _VALUE_FLAGS.items():
                if arg.startswith(prefix):
                    forwarded[keyword] = convert(arg.split("=", 1)[1])
                    break
            else:
                if arg == "--report":
                    forwarded["show_report"] = True
                else:
                    names.append(arg)
    names = names or ["all"]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}  (or 'all')")
        return 2
    for name in names:
        module = EXPERIMENTS[name]
        print(f"=== {name} ===")
        supported = inspect.signature(module.main).parameters
        kwargs = {k: v for k, v in forwarded.items() if k in supported}
        module.main(**kwargs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
