"""EXP-CHUNKS — erasure-coded chunk placement, scrub/repair, durability.

A seven-site grid: one hub (directory, scrub fleet, reader) plus six
placement sites.  Objects are uploaded from the hub as (k=4, m=2)
content-addressed stripes — six chunks, each on a *distinct* placement
site — so the durability contract is "any two site losses survivable".
One object pair shares a content key, demonstrating chunk-level dedup
(the second upload transfers nothing).

Three campaign legs, one seed each:

* **fault-free** — a scrub pass finds every replica healthy; fetches
  ride the systematic passthrough (no decode, no repair traffic);
* **chunk_corrupt** — silent bit rot in stored chunks.  CKSM scrubbing
  detects every corruption (TCP never would), the repairer re-encodes
  exactly the damaged members, and convergence is two consecutive clean
  passes;
* **site_wipe** — two whole chunk stores destroyed (the full ``m``
  budget).  Every object loses exactly two stripe members; repair
  reconstructs all of them and the read path recovers every object
  byte-identically even *before* repair (any-4-of-6).

The repair-traffic claim: rebuilding a lost member moves
``(k + lost)/k`` object-sizes (fetch k survivors, upload the rebuilt
members) versus ``lost`` whole objects for replication at equal
durability (3 full copies tolerate the same two site losses).  For the
two-site wipe that is 1.5 vs 2.0 object-sizes — a 1.33x saving,
recorded as ``repair_savings`` and floor-gated in BENCH_chunks.json.

Exactly-once: chunk uploads are idempotent (content addressing +
verify-don't-trust on 553), ``chunk.commit``/``chunk.repair_done`` are
txn-replayed, repair re-verifies before spending traffic, and the
converged state must fetch byte-identical fingerprints.

``python -m repro.experiments chunks --seed=7 --campaign=site_wipe``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.chunks import ChunkConfig, ChunkRuntime
from repro.experiments.common import export_telemetry, print_table
from repro.faults import (
    FaultInjector,
    chunk_corrupt_campaign,
    site_wipe_campaign,
)
from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.units import MB
from repro.simulation.randomness import RandomStreams

__all__ = ["CAMPAIGNS", "ChunksResult", "run", "report"]

#: fault classes this experiment can arm
CAMPAIGNS = ("chunk_corrupt", "site_wipe")

#: consecutive all-clean scrub passes that mean "converged"
CLEAN_PASSES = 2

#: scrub passes before declaring the repair loop stuck
MAX_PASSES = 8

_HUB = "hub"
_PLACEMENT = ("s1", "s2", "s3", "s4", "s5", "s6")


@dataclass(frozen=True)
class ChunksResult:
    """Outcome + invariant checks for one EXP-CHUNKS run."""

    seed: int
    campaign: str              # "" = fault-free
    sites: int
    objects: int
    k: int
    m: int
    chunks_uploaded: int
    chunks_deduped: int
    put_bytes: float
    faults_injected: int
    scrub_passes: int
    scrub_ok: int              # healthy probe outcomes, all passes
    scrub_bad: int             # corrupt + missing + unreachable outcomes
    chunks_repaired: int       # stripe members re-encoded and re-placed
    repair_bytes: float        # fetched + uploaded by the repairer
    whole_file_bytes: float    # replication-equivalent repair traffic
    objects_fetched: int
    decodes: int               # fetches that needed real GF(256) math
    fetch_failovers: int
    dedup_ok: bool             # shared-content upload moved zero chunks
    detection_ok: bool         # every injected damage was found
    fingerprints_ok: bool      # every fetch reproduced its manifest fp
    repair_cheaper: bool       # repair_bytes < whole_file_bytes (wipe leg)
    queue_clean: bool          # no dead tasks, no backlog
    duration: float
    wall_seconds: float
    fingerprint: str
    errors: tuple[str, ...]

    @property
    def repair_savings(self) -> float:
        """Replication-equivalent bytes over chunked repair bytes
        (>1 = chunked repair is cheaper)."""
        if self.repair_bytes <= 0:
            return 0.0
        return self.whole_file_bytes / self.repair_bytes

    @property
    def converged(self) -> bool:
        return (self.dedup_ok and self.detection_ok
                and self.fingerprints_ok and self.repair_cheaper
                and self.queue_clean and not self.errors)


def _build_campaign(name: str, seed: int):
    streams = RandomStreams(seed)
    if name == "chunk_corrupt":
        return chunk_corrupt_campaign(
            streams, list(_PLACEMENT), corruptions=4,
            start=2.0, spread=20.0,
        )
    if name == "site_wipe":
        return site_wipe_campaign(
            streams, list(_PLACEMENT), wipes=2,
            start=2.0, spread=10.0,
        )
    raise ValueError(
        f"unknown campaign {name!r} (one of: {', '.join(CAMPAIGNS)})"
    )


def _counter_total(grid, name: str, **labels) -> float:
    """Sum one counter family across its label sets."""
    if grid.metrics is None:
        return 0.0
    total = 0.0
    for child in grid.metrics.children(name):
        have = dict(child.labels)
        if all(have.get(k) == str(v) for k, v in labels.items()):
            total += child.value
    return total


def run(
    objects: int = 6,
    seed: int = 2001,
    campaign: str = "",
    size_mb: float = 24.0,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> ChunksResult:
    """One EXP-CHUNKS leg: upload, break, scrub/repair, verify reads."""
    from repro.telemetry import to_prometheus_text

    wall_started = time.perf_counter()
    errors: list[str] = []
    size = float(int(size_mb * MB))
    grid = DataGrid(
        [GdmpConfig(name, tcp_buffer=1 << 20)
         for name in (_HUB, *_PLACEMENT)],
        catalog_host=_HUB,
        seed=seed,
    )
    config = ChunkConfig(
        k=4, m=2,
        placement_sites=list(_PLACEMENT),
        scrub_sites=[_HUB],
        directory_host=_HUB,
        poll=2.0,
        lease=600.0,
    )
    runtime = ChunkRuntime(grid, config)
    hub = runtime.store(_HUB)

    # -- upload: distinct objects plus one shared-content pair ------------
    names = [f"obj-{i:02d}" for i in range(objects)]
    keys = {name: f"content-{i:04d}" for i, name in enumerate(names)}
    names.append("obj-twin")
    keys["obj-twin"] = keys[names[0]]       # dedup pair with obj-00
    put_reports = []
    for name in names:
        grid.site(_HUB).fs.create(
            f"data/{name}", size, content_id=keys[name], now=grid.sim.now
        )
        put_reports.append(grid.run(until=hub.put_object(
            name, size, keys[name], config.k, config.m
        )))
    uploaded = sum(r.chunks_uploaded for r in put_reports)
    deduped = sum(r.chunks_deduped for r in put_reports)
    put_bytes = sum(r.bytes_uploaded for r in put_reports)
    stripe = config.k + config.m
    dedup_ok = (
        put_reports[-1].chunks_uploaded == 0
        and put_reports[-1].chunks_deduped == stripe
    )
    if not dedup_ok:
        errors.append(
            f"dedup failed: twin upload moved "
            f"{put_reports[-1].chunks_uploaded} chunks"
        )

    # -- break things -----------------------------------------------------
    runtime.start()
    fault_campaign = _build_campaign(campaign, seed) if campaign else None
    injector = None
    if fault_campaign is not None:
        injector = FaultInjector(grid, fault_campaign)
        grid.run(until=injector.start())

    # -- scrub until converged: CLEAN_PASSES consecutive all-clean --------
    clean = 0
    passes = 0
    while clean < CLEAN_PASSES and passes < MAX_PASSES:
        grid.run(until=runtime.run_scrub_pass(poll=2.0))
        passes += 1
        cycle = runtime.planner.cycle
        bad = sum(
            1 for task in runtime.queue_service.queue.tasks.values()
            if task.type == "repair"
            and task.payload.get("cycle") == cycle
        )
        clean = clean + 1 if bad == 0 else 0
    if clean < CLEAN_PASSES:
        errors.append(
            f"scrub never converged: {passes} passes without "
            f"{CLEAN_PASSES} consecutive clean ones"
        )

    # -- verify the read path: every object byte-identical ----------------
    fetch_reports = []
    for name in names:
        try:
            fetched = grid.run(until=hub.fetch_object(
                name, f"recovered/{name}"
            ))
        except Exception as exc:
            errors.append(f"fetch of {name!r} failed: {exc}")
            continue
        fetch_reports.append(fetched)
        recovered = grid.site(_HUB).fs.stat(f"recovered/{name}")
        original = grid.site(_HUB).fs.stat(f"data/{name}")
        if recovered.crc != original.crc or recovered.size != original.size:
            errors.append(f"{name!r} did not reconstruct byte-identically")
    fingerprints_ok = len(fetch_reports) == len(names) and not any(
        "reconstruct" in e or "fetch" in e for e in errors
    )

    # -- accounting -------------------------------------------------------
    scrub_ok = int(_counter_total(grid, "chunks.scrub", outcome="ok"))
    scrub_bad = int(
        _counter_total(grid, "chunks.scrub")
        - _counter_total(grid, "chunks.scrub", outcome="ok")
    )
    repaired = int(_counter_total(
        grid, "chunks.repair", event="chunks_rebuilt"
    ))
    repair_bytes = (
        _counter_total(grid, "chunks.repair", event="bytes_fetched")
        + _counter_total(grid, "chunks.repair", event="bytes_uploaded")
    )
    # replication at equal durability (3 full copies) loses one whole
    # copy per stripe member this campaign destroyed
    whole_file_bytes = repaired * size
    if campaign == "site_wipe":
        repair_cheaper = 0 < repair_bytes < whole_file_bytes
        if not repair_cheaper:
            errors.append(
                f"repair traffic {repair_bytes:.0f} B not below "
                f"whole-file re-replication {whole_file_bytes:.0f} B"
            )
        # the full m budget: every stripe must have lost exactly 2 members
        distinct_stripes = objects  # twin shares obj-00's stripe
        if repaired != 2 * distinct_stripes:
            errors.append(
                f"expected {2 * distinct_stripes} rebuilt members "
                f"after a 2-site wipe, repaired {repaired}"
            )
    else:
        repair_cheaper = True
    detection_ok = True
    if campaign and injector is not None:
        applied = injector.injected - injector.monitor.counters.get(
            "chunk_corrupt_noop", 0
        )
        if applied > 0 and scrub_bad == 0:
            detection_ok = False
            errors.append(
                f"{applied} faults applied but scrubbing found nothing"
            )
        if campaign == "chunk_corrupt" and repaired == 0 and applied > 0:
            detection_ok = False
            errors.append("corruption was detected but never repaired")
    queue = runtime.queue_service.queue
    counts = queue.counts()
    queue_clean = counts["dead"] == 0 and queue.terminal()
    if not queue_clean:
        errors.append(f"scrub queue not clean at end: {counts}")

    fingerprint = "\n".join(
        filter(None, [
            fault_campaign.schedule_repr() if fault_campaign else "",
            runtime.fingerprint(),
            " ".join(r.fingerprint for r in fetch_reports),
            to_prometheus_text(grid.metrics),
        ])
    )
    export_telemetry(
        grid.metrics, grid.tracelog,
        metrics_json=metrics_json, trace_chrome=trace_chrome,
        show_report=show_report,
    )
    return ChunksResult(
        seed=seed,
        campaign=campaign,
        sites=len(grid.sites),
        objects=len(names),
        k=config.k,
        m=config.m,
        chunks_uploaded=uploaded,
        chunks_deduped=deduped,
        put_bytes=put_bytes,
        faults_injected=injector.injected if injector else 0,
        scrub_passes=passes,
        scrub_ok=scrub_ok,
        scrub_bad=scrub_bad,
        chunks_repaired=repaired,
        repair_bytes=repair_bytes,
        whole_file_bytes=whole_file_bytes,
        objects_fetched=len(fetch_reports),
        decodes=sum(1 for r in fetch_reports if r.decoded),
        fetch_failovers=sum(r.failovers for r in fetch_reports),
        dedup_ok=dedup_ok,
        detection_ok=detection_ok,
        fingerprints_ok=fingerprints_ok,
        repair_cheaper=repair_cheaper,
        queue_clean=queue_clean,
        duration=grid.sim.now,
        wall_seconds=time.perf_counter() - wall_started,
        fingerprint=fingerprint,
        errors=tuple(errors),
    )


def report(result: ChunksResult) -> None:
    """Print the durability verdict."""
    verdict = "CONVERGED" if result.converged else "FAILED"
    title = (
        f"EXP-CHUNKS — seed {result.seed}, {result.sites} sites, "
        f"{result.objects} objects as ({result.k},{result.m}) stripes"
        + (f", campaign {result.campaign}" if result.campaign else "")
        + f": {verdict}"
    )
    print_table(
        ["check", "value"],
        [
            ["chunks uploaded (deduped)",
             f"{result.chunks_uploaded} ({result.chunks_deduped})"],
            ["upload bytes", f"{result.put_bytes:.3e}"],
            ["faults injected", result.faults_injected],
            ["scrub passes", result.scrub_passes],
            ["probe outcomes ok/bad",
             f"{result.scrub_ok}/{result.scrub_bad}"],
            ["stripe members repaired", result.chunks_repaired],
            ["repair bytes", f"{result.repair_bytes:.3e}"],
            ["whole-file equivalent", f"{result.whole_file_bytes:.3e}"],
            ["repair savings", f"{result.repair_savings:.2f}x"],
            ["objects fetched", result.objects_fetched],
            ["fetches needing decode", result.decodes],
            ["fetch failovers", result.fetch_failovers],
            ["dedup moved zero chunks", result.dedup_ok],
            ["damage detected", result.detection_ok],
            ["byte-identical fetches", result.fingerprints_ok],
            ["repair cheaper than whole-file", result.repair_cheaper],
            ["scrub queue clean", result.queue_clean],
            ["sim-time (s)", f"{result.duration:.1f}"],
            ["wall time (s)", f"{result.wall_seconds:.1f}"],
        ],
        title,
    )
    for line in result.errors:
        print(f"  !! {line}")
    print()


def main(
    objects: int = 6,
    seed: int = 2001,
    campaign: str | None = None,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> None:
    """Run EXP-CHUNKS (optionally under one fault class)."""
    if campaign and campaign not in CAMPAIGNS:
        raise SystemExit(
            f"unknown campaign {campaign!r} (one of: {', '.join(CAMPAIGNS)})"
        )
    report(run(
        objects=objects,
        seed=seed,
        campaign=campaign or "",
        metrics_json=metrics_json,
        trace_chrome=trace_chrome,
        show_report=show_report,
    ))
