"""EXP-ABL1: GDMP 2.0 vs the GDMP 1.2 baseline (architecture ablation).

The paper's motivation for the second-generation architecture, quantified:
tuned parallel GridFTP vs one untuned FTP stream; restart markers vs
full-retransfer-on-failure; the CRC check vs silently delivering a
corrupted file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import print_table
from repro.gdmp import DataGrid, GdmpConfig
from repro.gdmp.legacy import LegacyGdmp
from repro.netsim.calibration import TUNED_BUFFER_BYTES
from repro.netsim.units import MB
from repro.objectdb import DatabaseFile


@dataclass(frozen=True)
class LegacyComparison:
    size_mb: int
    clean_v2_s: float
    clean_v12_s: float
    failure_v2_wire_mb: float      # bytes on the wire with a late failure
    failure_v12_wire_mb: float
    corruption_detected_v2: bool
    corruption_detected_v12: bool

    @property
    def clean_speedup(self) -> float:
        return self.clean_v12_s / self.clean_v2_s

    @property
    def failure_waste_ratio(self) -> float:
        return self.failure_v12_wire_mb / self.failure_v2_wire_mb


def _grid():
    return DataGrid(
        [
            GdmpConfig("cern", tcp_buffer=TUNED_BUFFER_BYTES, parallel_streams=3),
            GdmpConfig("anl", tcp_buffer=TUNED_BUFFER_BYTES, parallel_streams=3),
        ]
    )


def _publish_objy(grid, lfn: str, size_mb: int):
    cern = grid.site("cern")
    db = DatabaseFile(500 + hash(lfn) % 1000, lfn)
    container = db.create_container()
    n_objects = max(1, int(size_mb))
    for i in range(n_objects):
        db.new_object(container, "digi", size_mb * MB / n_objects, f"{lfn}/{i}")
    cern.federation.declare_type("digi")
    grid.run(
        until=cern.client.produce_and_publish(
            lfn, size_mb * MB, payload=db, filetype="objectivity", schema="digi"
        )
    )


def run(size_mb: int = 25) -> LegacyComparison:
    # clean transfers
    """Measure GDMP 2.0 vs the 1.2 baseline on clean/failed/corrupted transfers."""
    grid = _grid()
    _publish_objy(grid, "clean.db", size_mb)
    v2_clean = grid.run(until=grid.site("anl").client.replicate("clean.db"))

    grid = _grid()
    _publish_objy(grid, "clean.db", size_mb)
    v12_clean = grid.run(
        until=LegacyGdmp(grid, "anl").replicate("clean.db", "cern")
    )

    # late failure: disconnect at 80% of the file.  Wire bytes = everything
    # the network actually carried (completed + aborted-attempt bytes).
    def failed_wire(version: str) -> float:
        grid = _grid()
        _publish_objy(grid, "flaky.db", size_mb)
        grid.site("cern").gridftp_server.failures.abort_after_bytes(
            "/storage/flaky.db", 0.8 * size_mb * MB
        )
        if version == "v2":
            grid.run(until=grid.site("anl").client.replicate("flaky.db"))
        else:
            grid.run(until=LegacyGdmp(grid, "anl").replicate("flaky.db", "cern"))
        monitor = grid.engine.monitor
        return monitor.counter("bytes_delivered") + monitor.counter(
            "bytes_delivered_aborted"
        )

    # corruption: does the receiver end up with a correct file?
    def corruption_detected(version: str) -> bool:
        grid = _grid()
        _publish_objy(grid, "bad.db", size_mb)
        grid.site("cern").gridftp_server.failures.corrupt_next("/storage/bad.db")
        if version == "v2":
            grid.run(until=grid.site("anl").client.replicate("bad.db"))
        else:
            grid.run(until=LegacyGdmp(grid, "anl").replicate("bad.db", "cern"))
        received = grid.site("anl").fs.stat("/storage/bad.db")
        original = grid.site("cern").fs.stat("/storage/bad.db")
        return received.crc == original.crc  # True = corruption was cured

    return LegacyComparison(
        size_mb=size_mb,
        clean_v2_s=v2_clean.transfer_duration,
        clean_v12_s=v12_clean.duration,
        failure_v2_wire_mb=failed_wire("v2") / 1e6,
        failure_v12_wire_mb=failed_wire("v12") / 1e6,
        corruption_detected_v2=corruption_detected("v2"),
        corruption_detected_v12=corruption_detected("v12"),
    )


def report(result: LegacyComparison) -> None:
    """Print the ablation table."""
    print_table(
        ["scenario", "GDMP 2.0", "GDMP 1.2 baseline"],
        [
            [
                f"clean {result.size_mb} MB transfer (s)",
                result.clean_v2_s,
                result.clean_v12_s,
            ],
            [
                "wire bytes with failure at 80% (MB)",
                result.failure_v2_wire_mb,
                result.failure_v12_wire_mb,
            ],
            [
                "corrupted transfer delivered correct file",
                "yes" if result.corruption_detected_v2 else "NO",
                "yes" if result.corruption_detected_v12 else "NO",
            ],
        ],
        "EXP-ABL1 — second-generation architecture vs GDMP 1.2",
    )
    print(
        f"clean transfer speedup: {result.clean_speedup:.1f}x; "
        f"failure retransmission waste: {result.failure_waste_ratio:.2f}x"
    )
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
