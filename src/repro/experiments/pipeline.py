"""EXP-OBJ2: §5.2 — "Object copying and file transport operations are
pipelined to achieve a better response time and greater efficiency."

The experiment runs the same object replication cycle with pipelining on
and off, with a deliberately slow copier so the overlap is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import print_table
from repro.gdmp import DataGrid, GdmpConfig
from repro.objectdb import EventStoreBuilder, ObjectTypeSpec
from repro.objectrep import CopyCostModel, GlobalObjectIndex, ObjectReplicator

__all__ = ["PipelineResult", "run", "report"]


@dataclass(frozen=True)
class PipelineResult:
    objects: int
    chunks: int
    sequential_time: float
    pipelined_time: float

    @property
    def speedup(self) -> float:
        return self.sequential_time / self.pipelined_time


def _cycle(pipelined: bool, n_objects: int, chunk: int, seed: int) -> float:
    grid = DataGrid([GdmpConfig("cern"), GdmpConfig("anl")], seed=seed)
    cern = grid.site("cern")
    catalog = EventStoreBuilder(seed=seed).build(
        cern.federation,
        n_events=n_objects,
        types=(ObjectTypeSpec("aod", 10_000.0),),
        events_per_file=chunk,
    )
    index = GlobalObjectIndex()
    for name in cern.federation.database_names:
        index.record_file("cern", name, cern.federation.database(name).iter_objects())
    # a copier slow enough (~1.2 MB/s) to be comparable to the WAN rate,
    # the §5.3 co-located-server regime where pipelining matters most
    slow_copier = CopyCostModel(
        disk_read_rate=4e6, disk_write_rate=4e6, cpu_rate=4e6,
        per_object_overhead=1e-4,
    )
    replicator = ObjectReplicator(grid, "anl", index, cost_model=slow_copier)
    keys = [f"{e}/aod" for e in catalog.event_numbers]
    report_ = grid.run(
        until=replicator.replicate_objects(
            keys, chunk_objects=chunk, pipelined=pipelined
        )
    )
    return report_.duration


def run(n_objects: int = 2000, chunk: int = 250, seed: int = 7) -> PipelineResult:
    """Time the same cycle with pipelining off and on."""
    return PipelineResult(
        objects=n_objects,
        chunks=-(-n_objects // chunk),
        sequential_time=_cycle(False, n_objects, chunk, seed),
        pipelined_time=_cycle(True, n_objects, chunk, seed),
    )


def report(result: PipelineResult) -> None:
    """Print both completion times and the speedup."""
    print_table(
        ["mode", "completion time (s)"],
        [
            ["sequential (copy, then send, repeat)", result.sequential_time],
            ["pipelined (copy k+1 during send of k)", result.pipelined_time],
        ],
        f"EXP-OBJ2 — §5.2 pipelining, {result.objects} objects in "
        f"{result.chunks} chunks",
    )
    print(f"speedup from pipelining: {result.speedup:.2f}x")
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
