"""Figure 5: GridFTP transfer rate vs number of parallel streams,
default (untuned, 64 KiB) TCP buffers.

Paper series: files of 1, 25, 50 and 100 MB; 1-10 streams; "the curves for
the larger files going up almost linearly with the number of streams,
reaching a peak at around 23 Mbps for 9 streams" while the 1 MB curve stays
low (slow start + per-transfer setup dominate).
"""

from __future__ import annotations

from repro.experiments.common import print_table
from repro.experiments.parallel import run_sweep
from repro.experiments.testbed import extended_get, gridftp_testbed
from repro.netsim.calibration import DEFAULT_BUFFER_BYTES, TestbedParams
from repro.netsim.units import MB

__all__ = ["FILE_SIZES_MB", "STREAM_COUNTS", "run", "report"]

FILE_SIZES_MB = (1, 25, 50, 100)
STREAM_COUNTS = tuple(range(1, 11))
BUFFER = DEFAULT_BUFFER_BYTES


def _point(args: tuple[int, int, int, int, int]) -> float:
    """One sweep point: mean rate over ``repeats`` fresh seeded testbeds."""
    size_mb, streams, buffer, seed, repeats = args
    rates = []
    for repeat in range(repeats):
        testbed = gridftp_testbed(TestbedParams(seed=seed + repeat))
        rates.append(extended_get(testbed, size_mb * MB, streams, buffer))
    return sum(rates) / len(rates)


def run(
    file_sizes_mb=FILE_SIZES_MB,
    stream_counts=STREAM_COUNTS,
    buffer: int = BUFFER,
    seed: int = 2001,
    repeats: int = 1,
    processes: int | None = None,
) -> dict[int, dict[int, float]]:
    """-> {file_size_mb: {streams: rate_mbps}}.  Each point runs on a fresh
    testbed (independent measurements, as in the paper); ``repeats`` > 1
    averages over independent loss realizations (seed, seed+1, ...).

    Points are independent seeded simulations, so they are fanned across
    worker processes (``processes=None`` -> CPU count, 1 -> serial); the
    numbers are identical either way.
    """
    points = [
        (size_mb, streams, buffer, seed, repeats)
        for size_mb in file_sizes_mb
        for streams in stream_counts
    ]
    rates = run_sweep(_point, points, processes=processes)
    series: dict[int, dict[int, float]] = {}
    for (size_mb, streams, *_), rate in zip(points, rates):
        series.setdefault(size_mb, {})[streams] = rate
    return series


def report(series: dict[int, dict[int, float]], title: str | None = None) -> None:
    """Print the Figure 5 table (streams x file sizes)."""
    sizes = sorted(series)
    stream_counts = sorted(next(iter(series.values())))
    rows = [
        [streams, *(series[size][streams] for size in sizes)]
        for streams in stream_counts
    ]
    print_table(
        ["streams", *(f"{s} MB file (Mbps)" for s in sizes)],
        rows,
        title or
        "Figure 5 — GridFTP transfer rates, default TCP buffers (64 KiB)",
    )


def main() -> None:
    """Run and report with default parameters."""
    report(run())
