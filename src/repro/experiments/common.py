"""Shared helpers for the experiment harness."""

from __future__ import annotations

import json
from typing import Iterable, Sequence

__all__ = [
    "format_table",
    "print_table",
    "transfer_rate_mbps",
    "export_telemetry",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Fixed-width text table (the harness prints paper-style rows)."""
    rendered_rows = [
        [f"{cell:.2f}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title=""):
    """Format and print a table followed by a blank line."""
    print(format_table(headers, rows, title))
    print()


def transfer_rate_mbps(nbytes: float, seconds: float) -> float:
    """Bytes over seconds, expressed in Mbps."""
    return nbytes * 8.0 / 1e6 / seconds if seconds > 0 else 0.0


def export_telemetry(
    registry,
    tracelog,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> None:
    """Shared end-of-experiment telemetry export.

    Behind the harness's ``--metrics-json`` / ``--trace-chrome`` /
    ``--report`` flags: dumps the registry snapshot as sorted JSON, the
    trace log as Chrome trace-event JSON (Perfetto-loadable), and/or
    prints the grid health report.  Spans still in progress at simulation
    end are warned about up front (the report lists them individually).
    """
    if tracelog is not None:
        open_spans = tracelog.open_spans()
        if open_spans:
            print(
                f"warning: {len(open_spans)} trace spans still in progress "
                "at simulation end (listed in the health report)"
            )
    if metrics_json is not None and registry is not None:
        with open(metrics_json, "w", encoding="utf-8") as fh:
            json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote metrics snapshot ({len(registry)} series) "
              f"to {metrics_json}")
    if trace_chrome is not None and tracelog is not None:
        from repro.telemetry.chrome_trace import dump_chrome_trace

        dump_chrome_trace(tracelog, trace_chrome)
        print(f"wrote Chrome trace ({len(tracelog)} spans) to {trace_chrome}")
    if show_report:
        from repro.telemetry.report import print_health_report

        print_health_report(registry, tracelog)
