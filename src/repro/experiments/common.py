"""Shared helpers for the experiment harness."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "print_table", "transfer_rate_mbps"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Fixed-width text table (the harness prints paper-style rows)."""
    rendered_rows = [
        [f"{cell:.2f}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title=""):
    """Format and print a table followed by a blank line."""
    print(format_table(headers, rows, title))
    print()


def transfer_rate_mbps(nbytes: float, seconds: float) -> float:
    """Bytes over seconds, expressed in Mbps."""
    return nbytes * 8.0 / 1e6 / seconds if seconds > 0 else 0.0
