"""EXP-BDP: the §6 buffer formula — optimal TCP buffer = RTT x bottleneck.

"If the buffers are too small, the TCP congestion window will never fully
open up.  If the buffers are too large, the sender can overrun the
receiver, and the TCP window will shut down."

The experiment measures the link with the simulated ping and pipechar
(exactly the paper's method), computes the formula's prediction, then
sweeps the buffer size and reports where throughput actually peaks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import print_table
from repro.experiments.parallel import run_sweep
from repro.experiments.testbed import extended_get, gridftp_testbed
from repro.netsim.calibration import TestbedParams
from repro.netsim.tools import ping, pipechar
from repro.netsim.tuning import optimal_buffer_size
from repro.netsim.units import KiB, MB

__all__ = ["BufferSweep", "run", "report"]

BUFFER_SIZES = tuple(
    k * KiB for k in (16, 32, 64, 128, 256, 384, 512, 768, 1024, 2048, 4096)
)


@dataclass(frozen=True)
class BufferSweep:
    measured_rtt: float
    measured_bottleneck: float       # available bandwidth from pipechar
    formula_buffer: int              # RTT x bandwidth
    rates: dict[int, float]          # buffer bytes -> Mbps (1 stream, 100 MB)

    @property
    def best_buffer(self) -> int:
        return max(self.rates, key=self.rates.get)


def _point(args: tuple[int, int, int, int]) -> float:
    """One sweep point: throughput on a fresh seeded testbed."""
    buffer, file_size_mb, streams, seed = args
    testbed = gridftp_testbed(TestbedParams(seed=seed))
    return extended_get(testbed, file_size_mb * MB, streams, buffer)


def run(
    buffer_sizes=BUFFER_SIZES,
    file_size_mb: int = 100,
    streams: int = 1,
    seed: int = 2001,
    processes: int | None = None,
) -> BufferSweep:
    """Measure throughput across buffer sizes; returns the sweep with the formula prediction."""
    buffer_sizes = tuple(buffer_sizes)
    probe = gridftp_testbed(TestbedParams(seed=seed))
    rtt = ping(probe.topology, "anl", "cern").rtt
    bottleneck = pipechar(probe.topology, "anl", "cern").available_bandwidth
    formula = optimal_buffer_size(rtt, bottleneck)
    points = [(buffer, file_size_mb, streams, seed) for buffer in buffer_sizes]
    measured = run_sweep(_point, points, processes=processes)
    rates = dict(zip(buffer_sizes, measured))
    return BufferSweep(
        measured_rtt=rtt,
        measured_bottleneck=bottleneck,
        formula_buffer=formula,
        rates=rates,
    )


def report(sweep: BufferSweep) -> None:
    """Print the sweep table and the formula-vs-measured comparison."""
    rows = [[b // KiB, rate] for b, rate in sorted(sweep.rates.items())]
    print_table(
        ["buffer (KiB)", "rate (Mbps)"],
        rows,
        "EXP-BDP — single-stream throughput vs TCP buffer size, 100 MB file",
    )
    print(
        f"measured: RTT = {sweep.measured_rtt * 1000:.1f} ms, bottleneck = "
        f"{sweep.measured_bottleneck * 8 / 1e6:.1f} Mbps (ping + pipechar)"
    )
    print(
        f"formula:  optimal buffer = RTT x bandwidth = "
        f"{sweep.formula_buffer / KiB:.0f} KiB"
    )
    print(f"measured: best buffer in sweep = {sweep.best_buffer // KiB} KiB")
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
