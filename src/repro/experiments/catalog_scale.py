"""EXP-SCALE: catalog scalability — indexes, filter plans, batched RPCs.

The paper's follow-ups ("Grid Data Management in Action", 2003) found the
LDAP replica catalog to be the first component that collapsed under
production load: every filter evaluation was a full scan, and every GDMP
operation paid one WAN round trip per file.  This experiment measures both
fixes at production scale:

* **in-memory scaling** — register 10k/100k/1M logical files through
  ``publish_bulk`` and compare equality-filter searches through the
  attribute index (plan) against the retained naive full scan
  (:meth:`~repro.catalog.ldapsim.LdapDirectory.search_naive`);
* **WAN batching** — replicate a 100-file transfer set per-file (2 catalog
  envelopes per file) versus :meth:`~repro.gdmp.client.GdmpClient.replicate_set`
  (2 envelopes per *set*), counting ``catalog.*`` client spans in the
  TraceLog.

The search timings are wall-clock (the catalog is an in-memory data
structure); the envelope counts come from the deterministic simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.catalog.gdmp_catalog import GdmpCatalog
from repro.experiments.common import print_table
from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.units import MB

__all__ = ["ScaleRow", "CatalogScaleResult", "run", "report"]

#: files carry a run-number attribute with this many distinct values, so
#: equality searches are selective but not unique
RUN_VALUES = 512


@dataclass(frozen=True)
class ScaleRow:
    """Measurements for one catalog population size."""

    n_files: int
    register_rate: float       # files/s through publish_bulk (wall clock)
    indexed_search_s: float    # s/op, equality filter through the index plan
    naive_search_s: float      # s/op, same filter via the naive full scan
    lfn_lookup_s: float        # s/op, unique-key (lfn=...) indexed search

    @property
    def search_speedup(self) -> float:
        """Naive-scan time over indexed time for the same equality filter."""
        return (
            self.naive_search_s / self.indexed_search_s
            if self.indexed_search_s > 0
            else float("inf")
        )


@dataclass(frozen=True)
class CatalogScaleResult:
    rows: list
    n_replicated: int          # files in the envelope-count transfer set
    per_file_envelopes: int    # catalog client spans, one replicate() per file
    batched_envelopes: int     # catalog client spans, one replicate_set()

    @property
    def envelope_reduction(self) -> float:
        """How many times fewer catalog round trips the batched path pays."""
        return (
            self.per_file_envelopes / self.batched_envelopes
            if self.batched_envelopes > 0
            else float("inf")
        )


def build_catalog(n_files: int, batch: int = 20_000) -> tuple[GdmpCatalog, float]:
    """A catalog populated with ``n_files`` logical files; returns
    (catalog, build wall-clock seconds)."""
    catalog = GdmpCatalog()
    start = time.perf_counter()
    base = 0
    while base < n_files:
        count = min(batch, n_files - base)
        catalog.publish_bulk(
            "cern",
            [
                {
                    "size": 1.0,
                    "modified": 0.0,
                    "crc": i,
                    "lfn": f"file.{i:07d}",
                    "attributes": {
                        "run": f"run{i % RUN_VALUES}",
                        "filetype": "objectivity",
                    },
                }
                for i in range(base, base + count)
            ],
        )
        base += count
    return catalog, time.perf_counter() - start


def _searches_per_sec(search_fn, filters: list[str], reps: int) -> float:
    """Wall-clock seconds per search, cycling through ``filters``."""
    start = time.perf_counter()
    for i in range(reps):
        search_fn(filters[i % len(filters)])
    return (time.perf_counter() - start) / reps


def measure_size(
    n_files: int, searches: int = 64, naive_searches: int = 3
) -> ScaleRow:
    """Register ``n_files`` and time indexed vs naive equality searches."""
    catalog, build_wall = build_catalog(n_files)
    rc = catalog.catalog
    directory = rc.directory
    base_dn = rc.collection_dn(catalog.collection)
    run_filters = [
        f"(&(objectClass=GlobusReplicaLogicalFile)(run=run{k % RUN_VALUES}))"
        for k in range(0, 97, 7)
    ]
    lfn_filters = [
        f"(lfn=file.{(k * 257) % n_files:07d})" for k in range(31)
    ]
    # sanity: the index plan and the naive scan agree before we time them
    probe = run_filters[0]
    assert [e.dn for e in directory.search(base_dn, probe, scope="one")] == [
        e.dn for e in directory.search_naive(base_dn, probe, scope="one")
    ]
    indexed = _searches_per_sec(
        lambda f: directory.search(base_dn, f, scope="one"),
        run_filters,
        searches,
    )
    lfn_lookup = _searches_per_sec(
        lambda f: directory.search(base_dn, f, scope="one"),
        lfn_filters,
        searches,
    )
    naive = _searches_per_sec(
        lambda f: directory.search_naive(base_dn, f, scope="one"),
        run_filters,
        max(1, naive_searches),
    )
    return ScaleRow(
        n_files=n_files,
        register_rate=n_files / build_wall if build_wall > 0 else float("inf"),
        indexed_search_s=indexed,
        naive_search_s=naive,
        lfn_lookup_s=lfn_lookup,
    )


def _catalog_envelopes(grid) -> int:
    """Catalog RPC envelopes sent so far (client-side ``catalog.*`` spans)."""
    return sum(
        1
        for span in grid.tracelog.spans(kind="client")
        if ":catalog." in span.name
    )


def measure_envelopes(
    n_files: int = 100, file_size: float = 0.5 * MB, seed: int = 2001
) -> tuple[int, int]:
    """Catalog envelopes for an ``n_files`` transfer set, per-file vs
    batched.  Returns (per_file_envelopes, batched_envelopes)."""

    def published_grid() -> DataGrid:
        grid = DataGrid(
            [GdmpConfig("cern"), GdmpConfig("caltech")],
            catalog_host="cern",
            seed=seed,
        )
        cern = grid.site("cern")
        specs = []
        for i in range(n_files):
            lfn = f"set.{i:04d}.db"
            path = cern.client.config.storage_path(lfn)
            cern.client.storage.pool.ensure_space(file_size)
            cern.client.storage.fs.create(path, file_size, now=grid.sim.now)
            specs.append({"lfn": lfn, "path": path})
        grid.run(until=cern.client.publish_set(specs))
        return grid

    lfns = [f"set.{i:04d}.db" for i in range(n_files)]

    grid = published_grid()
    caltech = grid.site("caltech")
    before = _catalog_envelopes(grid)
    for lfn in lfns:
        grid.run(until=caltech.client.replicate(lfn))
    per_file = _catalog_envelopes(grid) - before

    grid = published_grid()
    caltech = grid.site("caltech")
    before = _catalog_envelopes(grid)
    grid.run(until=caltech.client.replicate_set(lfns))
    batched = _catalog_envelopes(grid) - before
    return per_file, batched


def run(
    sizes=(10_000, 100_000),
    searches: int = 64,
    naive_searches: int = 3,
    replicate_files: int = 100,
    seed: int = 2001,
) -> CatalogScaleResult:
    """Measure catalog scaling and RPC batching."""
    rows = [
        measure_size(n, searches=searches, naive_searches=naive_searches)
        for n in sizes
    ]
    per_file, batched = measure_envelopes(n_files=replicate_files, seed=seed)
    return CatalogScaleResult(
        rows=rows,
        n_replicated=replicate_files,
        per_file_envelopes=per_file,
        batched_envelopes=batched,
    )


def report(result: CatalogScaleResult) -> None:
    """Print the scaling table and the envelope comparison."""
    print_table(
        ["files", "register (files/s)", "indexed eq (µs)", "naive eq (ms)",
         "speedup", "lfn lookup (µs)"],
        [
            [
                row.n_files,
                row.register_rate,
                row.indexed_search_s * 1e6,
                row.naive_search_s * 1e3,
                row.search_speedup,
                row.lfn_lookup_s * 1e6,
            ]
            for row in result.rows
        ],
        "EXP-SCALE — catalog search/register throughput vs population",
    )
    print(
        f"catalog envelopes for a {result.n_replicated}-file replicate: "
        f"{result.per_file_envelopes} per-file vs "
        f"{result.batched_envelopes} batched "
        f"({result.envelope_reduction:.0f}x fewer round trips)"
    )
    print()


def main() -> None:
    """Run and report at the record sizes (the million-file point takes
    ~90 s to build — get it with ``run(sizes=(10_000, 100_000,
    1_000_000))``, keeping ``experiments all`` fast)."""
    report(run())
