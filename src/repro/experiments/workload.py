"""EXP-WORKLOAD — the claim-based pipeline at production request volume.

The ROADMAP's north star is a grid serving *millions* of user requests,
not a scripted handful of ``replicate_set`` calls.  This experiment runs
the :mod:`repro.workload` engine end to end: an open-loop, fair-share
admitted arrival stream (default one hundred thousand requests; the
acceptance gate runs a million) flows through picker → bundler →
replicator → verifier components claiming leased tasks from the queue
service, and the run converges when every task is terminal.

Claims checked:

* **determinism** — same seed ⇒ byte-identical queue-state + admission +
  Prometheus fingerprint, arrival stream included;
* **exactly-once convergence** — every transfer obligation the stream
  created is satisfied exactly once per destination: bytes on disk, CRC
  equal to the catalog's, exactly one location record, every verify
  audit passed, zero dead tasks, zero leaked claims — including under a
  fault campaign (component crashes, host crash/restart, catalog
  black-holes) aimed at the *standing pipeline* rather than a one-shot
  transfer.

``python -m repro.experiments workload --requests=1000000 --seed=7``
runs the full-scale stream; ``--campaign=component_crash`` arms chaos.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.common import export_telemetry, print_table
from repro.faults import (
    FaultInjector,
    catalog_blackhole_campaign,
    component_crash_campaign,
    crash_restart_campaign,
    link_flap_campaign,
)
from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.units import MB
from repro.services.resilience import ResilienceConfig
from repro.simulation.randomness import RandomStreams
from repro.workload import ArrivalProfile, WorkloadEngine
from repro.workload.components import xfer_key

__all__ = ["CAMPAIGNS", "WorkloadResult", "run", "report"]

#: fault classes the workload gate can aim at the standing pipeline
CAMPAIGNS = (
    "component_crash", "crash_restart", "catalog_blackhole", "link_flap",
)


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome + invariant checks for one workload run."""

    seed: int
    campaign: str            # "" = fault-free
    requests: int            # generated arrivals
    admitted: int
    shed: int                # dropped at the per-VO backlog cap
    tasks: int               # queue tasks across all stages
    coalesced: int           # keyed submissions that merged
    expired_leases: int
    duration: float          # sim-time from start to convergence
    wall_seconds: float      # host wall-clock for the whole run
    faults_injected: int
    component_crashes: int
    obligations: int         # distinct (lfn, dest) transfer obligations
    all_held: bool
    crc_ok: bool
    catalog_exact: bool
    verified: bool           # every verify task completed (none dead)
    no_dead_tasks: bool
    no_leaked_claims: bool
    no_active_faults: bool
    fingerprint: str
    errors: tuple[str, ...]

    @property
    def converged(self) -> bool:
        return (self.all_held and self.crc_ok and self.catalog_exact
                and self.verified and self.no_dead_tasks
                and self.no_leaked_claims and self.no_active_faults)

    @property
    def requests_per_second(self) -> float:
        """Sustained generated requests per wall-clock second."""
        return self.requests / self.wall_seconds if self.wall_seconds else 0.0


def _build_campaign(name: str, seed: int, grid: DataGrid,
                    engine: WorkloadEngine):
    streams = RandomStreams(seed)
    if name == "component_crash":
        return component_crash_campaign(
            streams, sorted(engine.components), start=5.0, spread=60.0,
            min_down=10.0, max_down=30.0,
        )
    if name == "crash_restart":
        # crash the origin (the only initial replica source); the
        # destinations' standing components ride out the window
        return crash_restart_campaign(
            streams, [engine.origin], start=5.0, spread=40.0,
            min_down=8.0, max_down=20.0,
        )
    if name == "catalog_blackhole":
        return catalog_blackhole_campaign(
            streams, grid.catalog_host, start=5.0, spread=40.0,
        )
    if name == "link_flap":
        links = sorted(link.name for link in grid.topology.links)
        return link_flap_campaign(streams, links, start=5.0, spread=50.0)
    raise ValueError(
        f"unknown campaign {name!r} (one of: {', '.join(CAMPAIGNS)})"
    )


def _obligations(engine: WorkloadEngine) -> dict[str, set]:
    """The transfer obligations the stream actually created, from the
    queue's own record: dest site -> set of lfns."""
    owed: dict[str, set] = {}
    for task in engine.queue.tasks.values():
        if task.type == "xfer":
            owed.setdefault(task.site, set()).add(task.payload["lfn"])
    return owed


def _verify(grid: DataGrid, engine: WorkloadEngine):
    """Ground-truth convergence invariants over every obligation."""
    errors: list[str] = []
    all_held = crc_ok = catalog_exact = True
    obligations = 0
    for dest_name in sorted(_obligations(engine)):
        owed = _obligations(engine)[dest_name]
        dest = grid.site(dest_name)
        for lfn in sorted(owed):
            obligations += 1
            path = dest.server.held.get(lfn)
            if path is None or not dest.fs.exists(path):
                all_held = False
                errors.append(f"{lfn}: not on disk at {dest_name}")
                continue
            info = grid.catalog_backend.info(lfn)
            stored = dest.fs.stat(path)
            if stored.crc != info.crc or stored.size != info.size:
                crc_ok = False
                errors.append(
                    f"{lfn}: bytes at {dest_name} disagree with the catalog"
                )
            here = [
                loc for loc in info.locations
                if loc.get("location") == dest_name
            ]
            if len(here) != 1:
                catalog_exact = False
                errors.append(
                    f"{lfn}: {len(here)} catalog entries for {dest_name} "
                    "(want exactly 1)"
                )
            # the verifier's independent audit must have passed too
            vt = engine.queue._by_key.get(f"verify:{lfn}@{dest_name}")
            if vt is None or engine.queue.tasks[vt].state != "done":
                errors.append(f"{lfn}: no completed audit at {dest_name}")
    verified = not any("audit" in e for e in errors)
    return obligations, all_held, crc_ok, catalog_exact, verified, errors


def run(
    requests: int = 100_000,
    seed: int = 2001,
    campaign: str = "",
    files: int = 48,
    size_mb: int = 2,
    rate: float = 2000.0,
    tick: float = 30.0,
    diurnal_amplitude: float = 0.3,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> WorkloadResult:
    """Run the standing pipeline over a 3-site grid until convergence."""
    from repro.telemetry import to_prometheus_text

    wall_started = time.perf_counter()
    grid = DataGrid(
        [GdmpConfig("cern"), GdmpConfig("anl"), GdmpConfig("caltech")],
        catalog_host="cern",
        seed=seed,
    )
    grid.enable_resilience(ResilienceConfig(rpc_timeout=30.0))
    cern = grid.site("cern")
    lfns = [f"wl-{i:03d}.db" for i in range(files)]
    specs = []
    for lfn in lfns:
        path = cern.config.storage_path(lfn)
        cern.storage.pool.ensure_space(size_mb * MB)
        cern.fs.create(path, size_mb * MB, now=grid.sim.now)
        specs.append({"path": path, "lfn": lfn})
    grid.run(until=cern.client.publish_set(specs))

    profile = ArrivalProfile(
        rate=rate,
        tick=tick,
        diurnal_amplitude=diurnal_amplitude,
        admit_rate=rate * 1.5,
        admit_burst=rate * tick * 2,
    )
    engine = WorkloadEngine(
        grid, profile, lfns=lfns, total=requests,
        rng=RandomStreams(seed)["workload.arrivals"],
    )

    schedule = ""
    injector = None
    campaign_proc = None
    started = grid.sim.now
    engine.start()
    if campaign:
        fault_campaign = _build_campaign(campaign, seed, grid, engine)
        schedule = fault_campaign.schedule_repr()
        injector = FaultInjector(grid, fault_campaign)
        campaign_proc = injector.start()
    grid.run(until=engine.done)
    duration = grid.sim.now - started
    if campaign_proc is not None:
        # drain the rest of the schedule (and let re-claims settle) so
        # invariants are checked with every fault window closed
        grid.run(until=campaign_proc)
        grid.run(until=grid.sim.timeout(engine.supervise_interval * 2))

    (obligations, all_held, crc_ok, catalog_exact,
     verified, errors) = _verify(grid, engine)
    counts = engine.queue.counts()
    leaked = engine.queue.leaked_claims()
    if counts["dead"]:
        errors.append(f"{counts['dead']} tasks dead (want 0)")
    if leaked:
        errors.append(f"leaked claims: {leaked}")
    no_active = injector is None or not injector.active_faults()
    if not no_active:
        errors.append(f"fault windows still open: {injector.active_faults()}")

    fingerprint = "\n".join(
        filter(None, [
            schedule,
            engine.fingerprint(),
            to_prometheus_text(grid.metrics),
        ])
    )
    export_telemetry(
        grid.metrics, grid.tracelog,
        metrics_json=metrics_json, trace_chrome=trace_chrome,
        show_report=show_report,
    )
    summary = engine.summary()
    return WorkloadResult(
        seed=seed,
        campaign=campaign,
        requests=summary["generated"],
        admitted=summary["admitted"],
        shed=summary["shed"],
        tasks=summary["tasks"],
        coalesced=summary["coalesced"],
        expired_leases=summary["expired_leases"],
        duration=duration,
        wall_seconds=time.perf_counter() - wall_started,
        faults_injected=injector.injected if injector else 0,
        component_crashes=sum(
            c.crashes for c in engine.components.values()
        ),
        obligations=obligations,
        all_held=all_held,
        crc_ok=crc_ok,
        catalog_exact=catalog_exact,
        verified=verified,
        no_dead_tasks=counts["dead"] == 0,
        no_leaked_claims=not leaked,
        no_active_faults=no_active,
        fingerprint=fingerprint,
        errors=tuple(errors),
    )


def report(result: WorkloadResult) -> None:
    """Print the convergence/scale verdict."""
    verdict = "CONVERGED" if result.converged else "FAILED"
    title = (
        f"EXP-WORKLOAD — seed {result.seed}, "
        f"{result.requests:,} requests"
        + (f", campaign {result.campaign}" if result.campaign else "")
        + f": {verdict}"
    )
    print_table(
        ["check", "value"],
        [
            ["requests generated", f"{result.requests:,}"],
            ["requests admitted", f"{result.admitted:,}"],
            ["requests shed", f"{result.shed:,}"],
            ["queue tasks", result.tasks],
            ["keyed coalesces", result.coalesced],
            ["expired leases", result.expired_leases],
            ["faults injected", result.faults_injected],
            ["component crashes", result.component_crashes],
            ["transfer obligations", result.obligations],
            ["sim-time to converge (s)", f"{result.duration:.1f}"],
            ["sustained requests/s (wall)",
             f"{result.requests_per_second:,.0f}"],
            ["all replicas held", result.all_held],
            ["CRCs intact", result.crc_ok],
            ["catalog exactly-once", result.catalog_exact],
            ["audits complete", result.verified],
            ["no dead tasks", result.no_dead_tasks],
            ["no leaked claims", result.no_leaked_claims],
        ],
        title,
    )
    for line in result.errors:
        print(f"  !! {line}")
    print()


def main(
    requests: int = 100_000,
    seed: int = 2001,
    campaign: str | None = None,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> None:
    """Run the workload experiment (optionally under one fault class)."""
    if campaign and campaign not in CAMPAIGNS:
        raise SystemExit(
            f"unknown campaign {campaign!r} (one of: {', '.join(CAMPAIGNS)})"
        )
    report(run(
        requests=requests,
        seed=seed,
        campaign=campaign or "",
        metrics_json=metrics_json,
        trace_chrome=trace_chrome,
        show_report=show_report,
    ))
