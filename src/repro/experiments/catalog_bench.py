"""EXP-CAT: replica catalog operation latency against the central LDAP
server (§4.2: "for simplicity, [we] use a central replica catalog and a
single LDAP server" — tested from CERN, Caltech, and SLAC).

A site co-located with the catalog pays only local processing; every other
site pays a WAN round trip per operation — the cost that motivates the
paper's future work on distributing the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import print_table
from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.units import MB

__all__ = ["CatalogLatency", "run", "report"]


@dataclass(frozen=True)
class CatalogLatency:
    publishes: int
    local_publish: float      # seconds per op, caller at the catalog host
    remote_publish: float     # seconds per op, caller across the WAN
    remote_lookup: float      # locations() per op across the WAN
    remote_search: float      # filtered search per op across the WAN


def run(publishes: int = 20, seed: int = 2001) -> CatalogLatency:
    """Time catalog operations local vs across the WAN."""
    grid = DataGrid(
        [GdmpConfig("cern"), GdmpConfig("caltech"), GdmpConfig("slac")],
        catalog_host="cern",
        seed=seed,
    )
    cern, caltech = grid.site("cern"), grid.site("caltech")

    def timed_ops(site, op_factory, count):
        start = grid.sim.now
        for i in range(count):
            grid.run(until=op_factory(i))
        return (grid.sim.now - start) / count

    local_publish = timed_ops(
        cern,
        lambda i: cern.client.produce_and_publish(f"local{i}.db", 1 * MB),
        publishes,
    )
    remote_publish = timed_ops(
        caltech,
        lambda i: caltech.client.produce_and_publish(f"remote{i}.db", 1 * MB),
        publishes,
    )
    remote_lookup = timed_ops(
        caltech,
        lambda i: caltech.client.catalog.locations(f"remote{i % publishes}.db"),
        publishes,
    )
    remote_search = timed_ops(
        caltech,
        lambda i: caltech.client.catalog.search("(lfn=remote*)"),
        5,
    )
    return CatalogLatency(
        publishes=publishes,
        local_publish=local_publish,
        remote_publish=remote_publish,
        remote_lookup=remote_lookup,
        remote_search=remote_search,
    )


def report(result: CatalogLatency) -> None:
    """Print the latency table."""
    print_table(
        ["operation", "latency (ms)"],
        [
            ["publish, caller at catalog host", result.local_publish * 1000],
            ["publish, caller across WAN", result.remote_publish * 1000],
            ["locations lookup across WAN", result.remote_lookup * 1000],
            ["filtered search across WAN", result.remote_search * 1000],
        ],
        "EXP-CAT — central replica catalog operation latency",
    )
    print(
        f"WAN penalty on publish: "
        f"{result.remote_publish / result.local_publish:.1f}x"
    )
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
