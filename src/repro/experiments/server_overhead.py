"""EXP-OBJ3: §5.3 — object replication server overhead.

Two views of the same observation:

* the resource table: per network byte, object serving charges more CPU,
  disk, and databus than file serving — harmless against a 45 Mbps WAN,
  binding against a high-end NIC; splitting the copier onto another box
  restores throughput;
* a timed check on the simulator: with a slow copier co-located, an object
  replication cycle saturates below what plain file replication of the
  same bytes achieves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import print_table
from repro.objectrep.overhead import (
    ServerCostModel,
    ServerResources,
    achievable_network_rate,
)

__all__ = ["OverheadResult", "run", "report"]

MODES = (
    ("file serving", ServerCostModel.file_serving()),
    ("object serving (co-located copier)", ServerCostModel.object_serving()),
    ("object serving (copier on separate box)",
     ServerCostModel.object_serving_split()),
)


@dataclass(frozen=True)
class OverheadResult:
    resources: ServerResources
    wan_rate: float                       # the paper's 45 Mbps testbed WAN
    rates: dict[str, float]               # mode -> achievable bytes/s

    @property
    def degradation_at_nic(self) -> float:
        """Fraction of file-serving throughput lost when serving objects
        from the same box into a high-end NIC."""
        return 1.0 - self.rates[MODES[1][0]] / self.rates[MODES[0][0]]

    @property
    def wan_unaffected(self) -> bool:
        """Against the 45 Mbps WAN, every mode keeps up (§5.3: "the object
        copying actions in the server do not form a bottleneck")."""
        return all(rate >= self.wan_rate for rate in self.rates.values())


def run(resources: ServerResources | None = None) -> OverheadResult:
    """Compute achievable network rates for each serving mode."""
    resources = resources or ServerResources()
    rates = {
        name: achievable_network_rate(resources, cost) for name, cost in MODES
    }
    return OverheadResult(resources=resources, wan_rate=45e6 / 8, rates=rates)


def report(result: OverheadResult) -> None:
    """Print the per-mode resource table."""
    rows = []
    for (name, cost) in MODES:
        rate = result.rates[name]
        rows.append(
            [
                name,
                cost.cpu_per_byte,
                cost.disk_per_byte,
                cost.bus_per_byte,
                rate * 8 / 1e6,
                "yes" if rate >= result.wan_rate else "NO",
            ]
        )
    print_table(
        [
            "serving mode",
            "cpu/B",
            "disk B/B",
            "bus B/B",
            "max NIC rate (Mbps)",
            "keeps 45 Mbps WAN full",
        ],
        rows,
        "EXP-OBJ3 — §5.3 server resources per network byte",
    )
    print(
        f"high-end NIC degradation, co-located copier: "
        f"{result.degradation_at_nic:.0%} of file-serving throughput lost"
    )
    print(f"45 Mbps WAN unaffected in all modes: {result.wan_unaffected}")
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
