"""Process-parallel execution of independent sweep points.

Every sweep harness in this package (Figures 5/6, the buffer sweep, the
object-vs-file comparison) evaluates a grid of *independent* points: each
point seeds its own simulation (or operates on its own pre-drawn
selection), so points can run in any order — and therefore in parallel —
without changing any result.

:func:`run_sweep` fans points across worker processes with
``concurrent.futures`` while guaranteeing:

* **deterministic ordering** — results come back in the order of
  ``points``, regardless of worker count or scheduling;
* **identical values** — a worker computes exactly what the serial loop
  would (each point is fully seeded; nothing is shared across points);
* **a serial fallback** — one process requested, a single point, the
  ``REPRO_SERIAL`` environment variable, or a platform that cannot spawn
  worker processes all degrade to a plain in-process loop.

Workers must be module-level callables (picklable) taking one argument —
the sweep point.

:func:`run_weighted` is the load-balanced variant for *heterogeneous*
points — e.g. the independent link islands a
:class:`~repro.netsim.flowtable.FlowTable` partitions a large topology
into, whose per-tick cost is proportional to their flow count.  Points
are packed into per-worker buckets with a deterministic LPT (longest
processing time first) heuristic, so the assignment — and therefore every
worker's exact workload — is a pure function of the weights, independent
of scheduling.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = ["default_processes", "run_sweep", "run_weighted"]

T = TypeVar("T")
R = TypeVar("R")

#: Set (to any non-empty value) to force every sweep to run serially.
SERIAL_ENV = "REPRO_SERIAL"
#: Overrides the default worker count for every sweep.
PROCESSES_ENV = "REPRO_SWEEP_PROCESSES"


def default_processes() -> int:
    """Worker count used when a sweep does not specify one.

    ``REPRO_SWEEP_PROCESSES`` wins if set; otherwise the CPU count.  On a
    single-CPU host this is 1, which makes every sweep serial by default —
    process fan-out only pays when there are cores to fan onto.
    """
    env = os.environ.get(PROCESSES_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _run_serial(worker: Callable[[T], R], points: Sequence[T]) -> list[R]:
    return [worker(point) for point in points]


def run_sweep(
    worker: Callable[[T], R],
    points: Iterable[T],
    processes: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> list[R]:
    """Apply ``worker`` to every point; results in the order of ``points``.

    ``processes=None`` uses :func:`default_processes`; ``processes=1``
    forces the serial path.  ``chunksize`` tunes how many points each
    worker task carries (defaults to ~4 tasks per worker).
    """
    points = list(points)
    if processes is None:
        processes = default_processes()
    if points:
        processes = min(processes, len(points))
    if processes <= 1 or len(points) < 2 or os.environ.get(SERIAL_ENV):
        return _run_serial(worker, points)
    if chunksize is None:
        chunksize = max(1, len(points) // (processes * 4))
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        if "fork" in multiprocessing.get_all_start_methods():
            # fork shares the already-imported interpreter state: far
            # cheaper startup than spawn for these short simulation tasks
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=processes, mp_context=context
        ) as executor:
            # executor.map preserves input ordering, so results are
            # deterministic no matter how tasks were scheduled
            return list(executor.map(worker, points, chunksize=chunksize))
    except (OSError, PermissionError, ImportError):
        # sandboxed / fork-less environments: degrade silently to serial
        return _run_serial(worker, points)


def _run_bucket(task: tuple) -> list:
    """Evaluate one worker bucket: ``(worker, [point, ...]) -> [result...]``.

    Module-level so the tuple pickles under every start method.
    """
    worker, bucket = task
    return [worker(point) for point in bucket]


def plan_buckets(
    weights: Sequence[float], buckets: int
) -> list[list[int]]:
    """Deterministic LPT packing of point indices into ``buckets`` groups.

    Points are considered heaviest-first (ties broken by input index) and
    each goes to the currently lightest bucket (ties broken by bucket
    index).  The result depends only on ``weights`` and ``buckets`` —
    never on timing — so parallel runs are reproducible.
    """
    order = sorted(range(len(weights)), key=lambda i: (-weights[i], i))
    loads = [(0.0, b) for b in range(buckets)]
    assignment: list[list[int]] = [[] for _ in range(buckets)]
    import heapq

    heapq.heapify(loads)
    for i in order:
        load, b = heapq.heappop(loads)
        assignment[b].append(i)
        heapq.heappush(loads, (load + weights[i], b))
    return [bucket for bucket in assignment if bucket]


def run_weighted(
    worker: Callable[[T], R],
    points: Iterable[T],
    weights: Sequence[float],
    processes: Optional[int] = None,
) -> list[R]:
    """Apply ``worker`` to heterogeneous points; results in input order.

    Like :func:`run_sweep`, but points carry ``weights`` (expected cost,
    e.g. ``LinkIsland.weight``) and are packed into one bucket per worker
    with :func:`plan_buckets` instead of round-robin chunking, so a few
    heavy islands do not serialize behind a tail of light ones.
    """
    points = list(points)
    if len(weights) != len(points):
        raise ValueError(
            f"{len(points)} points but {len(weights)} weights"
        )
    if processes is None:
        processes = default_processes()
    if points:
        processes = min(processes, len(points))
    if processes <= 1 or len(points) < 2 or os.environ.get(SERIAL_ENV):
        return _run_serial(worker, points)
    buckets = plan_buckets(weights, processes)
    tasks = [(worker, [points[i] for i in bucket]) for bucket in buckets]
    try:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=len(tasks), mp_context=context
        ) as executor:
            per_bucket = list(executor.map(_run_bucket, tasks))
    except (OSError, PermissionError, ImportError):
        # sandboxed / fork-less environments: degrade silently to serial
        return _run_serial(worker, points)
    # scatter bucket results back to input order
    results: list = [None] * len(points)
    for bucket, bucket_results in zip(buckets, per_bucket):
        for i, result in zip(bucket, bucket_results):
            results[i] = result
    return results
