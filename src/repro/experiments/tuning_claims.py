"""§6's three tuning conclusions, checked against the Figure 5/6 data.

T1: "proper TCP buffer size setting is the single most important factor in
    achieving good performance.  The performance obtained from 10 streams
    with untuned buffers can be achieved with just 2-3 streams if the
    tuning is proper."
T2: "2-3 tuned parallel streams will gain an additional 25% performance
    over a single tuned stream."
T3: "it is possible to get the same throughput as tuned buffers using
    untuned TCP buffers with enough parallel streams."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import figure5, figure6
from repro.experiments.common import print_table

__all__ = ["TuningClaims", "run", "report"]


@dataclass(frozen=True)
class TuningClaims:
    untuned: dict[int, float]   # streams -> Mbps, 100 MB file, 64 KiB buffers
    tuned: dict[int, float]     # streams -> Mbps, 100 MB file, 1 MiB buffers

    # T1: smallest tuned stream count matching 10 untuned streams
    @property
    def tuned_streams_matching_10_untuned(self) -> int:
        target = self.untuned[max(self.untuned)]
        for streams in sorted(self.tuned):
            if self.tuned[streams] >= 0.95 * target:
                return streams
        return max(self.tuned)

    # T2: gain of the best of 2-3 tuned streams over 1 tuned stream
    @property
    def tuned_multi_stream_gain(self) -> float:
        best = max(self.tuned[s] for s in (2, 3) if s in self.tuned)
        return best / self.tuned[1] - 1.0

    # T3: best untuned rate vs tuned peak
    @property
    def untuned_reaches_tuned(self) -> float:
        return max(self.untuned.values()) / max(self.tuned.values())


def run(seed: int = 2001) -> TuningClaims:
    """Measure the 100 MB untuned and tuned stream sweeps."""
    stream_counts = tuple(range(1, 11))
    untuned = figure5.run((100,), stream_counts, seed=seed)[100]
    tuned = figure6.run((100,), stream_counts, seed=seed)[100]
    return TuningClaims(untuned=untuned, tuned=tuned)


def report(claims: TuningClaims) -> None:
    """Print the claims table and the three verdicts."""
    rows = [
        [s, claims.untuned[s], claims.tuned[s]] for s in sorted(claims.untuned)
    ]
    print_table(
        ["streams", "untuned 64 KiB (Mbps)", "tuned 1 MiB (Mbps)"],
        rows,
        "§6 tuning claims — 100 MB file",
    )
    print(
        f"T1: {claims.tuned_streams_matching_10_untuned} tuned streams match "
        f"10 untuned streams (paper: 2-3)"
    )
    print(
        f"T2: 2-3 tuned streams gain {claims.tuned_multi_stream_gain:+.0%} "
        f"over 1 tuned stream (paper: +25%)"
    )
    print(
        f"T3: best untuned rate reaches {claims.untuned_reaches_tuned:.0%} of "
        f"the tuned peak (paper: ~100%)"
    )
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
