"""EXP-GDMP: the §4.1 end-to-end replication pipeline, including failure
recovery — "we use the built-in error correction in GridFTP plus an
additional CRC error check ... and use GridFTP's error detection and
restart capabilities to restart interrupted and corrupted file transfers."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import export_telemetry, print_table
from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.calibration import TUNED_BUFFER_BYTES
from repro.netsim.units import MB

__all__ = ["PipelineRuns", "run", "report"]


@dataclass(frozen=True)
class PipelineRuns:
    size_mb: int
    clean: object          # ReplicationReport
    with_abort: object     # ReplicationReport after an injected disconnect
    with_corruption: object  # ReplicationReport after an injected corruption


def run(size_mb: int = 25, seed: int = 2001,
        trace_path: str | None = None,
        metrics_json: str | None = None,
        trace_chrome: str | None = None,
        show_report: bool = False) -> PipelineRuns:
    """Replicate with no failure, an injected disconnect, and an injected
    corruption.  With ``trace_path`` set, the grid's request-trace log
    (every RPC, GridFTP command, transfer, and catalog update span) is
    dumped there as JSON; ``metrics_json`` / ``trace_chrome`` /
    ``show_report`` export the grid's telemetry (see
    :func:`repro.experiments.common.export_telemetry`)."""
    grid = DataGrid(
        [
            GdmpConfig("cern", tcp_buffer=TUNED_BUFFER_BYTES, parallel_streams=3),
            GdmpConfig("anl", tcp_buffer=TUNED_BUFFER_BYTES, parallel_streams=3),
        ],
        seed=seed,
    )
    cern, anl = grid.site("cern"), grid.site("anl")
    for lfn in ("clean.db", "abort.db", "corrupt.db"):
        grid.run(until=cern.client.produce_and_publish(lfn, size_mb * MB))

    clean = grid.run(until=anl.client.replicate("clean.db"))
    cern.gridftp_server.failures.abort_after_bytes(
        "/storage/abort.db", size_mb * MB / 2
    )
    with_abort = grid.run(until=anl.client.replicate("abort.db"))
    cern.gridftp_server.failures.corrupt_next("/storage/corrupt.db")
    with_corruption = grid.run(until=anl.client.replicate("corrupt.db"))
    if trace_path is not None:
        grid.tracelog.dump_json(trace_path)
        print(f"wrote {len(grid.tracelog)} trace spans to {trace_path}")
    export_telemetry(
        grid.metrics,
        grid.tracelog,
        metrics_json=metrics_json,
        trace_chrome=trace_chrome,
        show_report=show_report,
    )
    return PipelineRuns(
        size_mb=size_mb,
        clean=clean,
        with_abort=with_abort,
        with_corruption=with_corruption,
    )


def report(result: PipelineRuns) -> None:
    """Print the three-scenario pipeline table."""
    rows = []
    for label, rep in (
        ("clean", result.clean),
        ("mid-transfer disconnect", result.with_abort),
        ("corruption (CRC mismatch)", result.with_corruption),
    ):
        rows.append(
            [
                label,
                rep.total_duration,
                rep.transfer_duration,
                rep.attempts,
                rep.crc_retries,
                rep.throughput * 8 / 1e6,
            ]
        )
    print_table(
        [
            "scenario",
            "total (s)",
            "transfer (s)",
            "attempts",
            "crc retries",
            "goodput (Mbps)",
        ],
        rows,
        f"EXP-GDMP — {result.size_mb} MB replication pipeline with failure "
        "injection",
    )
    print()


def main(trace_path: str | None = None,
         metrics_json: str | None = None,
         trace_chrome: str | None = None,
         show_report: bool = False) -> None:
    """Run and report with default parameters."""
    report(run(trace_path=trace_path, metrics_json=metrics_json,
               trace_chrome=trace_chrome, show_report=show_report))
