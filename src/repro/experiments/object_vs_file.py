"""EXP-OBJ1: the §5.1 analysis — bytes shipped by file vs object
replication as the selection gets sparser, and the probability that an
existing file is majority-selected.

The paper's worked example (scaled): selecting a sparse subset of 10 KB
"type X" objects, file replication must ship nearly the whole store while
object replication ships only the selected bytes; the strategies cross
over only when the selection becomes dense.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import print_table
from repro.experiments.parallel import run_sweep
from repro.objectdb import EventStoreBuilder, Federation, ObjectTypeSpec
from repro.objectrep import compare_replication_strategies, select_events

__all__ = ["ObjectVsFile", "run", "report"]

SELECTION_FRACTIONS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.3, 0.6, 0.9, 1.0)


@dataclass(frozen=True)
class ObjectVsFile:
    n_events: int
    events_per_file: int
    object_size: float
    comparisons: list  # ReplicationComparison per fraction

    @property
    def crossover_fraction(self) -> float:
        """First swept fraction at which file replication stops losing."""
        for comparison in self.comparisons:
            if comparison.winner == "file":
                return comparison.selection_fraction
        return 1.0


def _compare(args) -> object:
    """One sweep point: compare both strategies for a pre-drawn selection."""
    federation, catalog, selected, type_name, events_per_file = args
    return compare_replication_strategies(
        federation, catalog, selected, type_name,
        objects_per_new_file=events_per_file,
    )


def run(
    n_events: int = 100_000,
    events_per_file: int = 1000,
    object_size: float = 10_000.0,
    fractions=SELECTION_FRACTIONS,
    seed: int = 42,
    processes: int | None = None,
) -> ObjectVsFile:
    """Sweep selection fractions and compare both strategies' shipped bytes."""
    federation = Federation("cms", site="cern")
    types = (ObjectTypeSpec("aod", object_size),)
    catalog = EventStoreBuilder(seed=seed).build(
        federation, n_events=n_events, types=types,
        events_per_file=events_per_file,
    )
    # Selections are drawn serially from one shared generator: each draw
    # consumes the stream, so the draw order (and thus every selection) is
    # part of the experiment's determinism contract.  The expensive
    # strategy comparisons are independent per selection and fan out.
    rng = np.random.Generator(np.random.PCG64(seed + 1))
    points = [
        (
            federation,
            catalog,
            select_events(catalog.event_numbers, fraction, rng),
            "aod",
            events_per_file,
        )
        for fraction in fractions
    ]
    comparisons = run_sweep(_compare, points, processes=processes)
    return ObjectVsFile(
        n_events=n_events,
        events_per_file=events_per_file,
        object_size=object_size,
        comparisons=comparisons,
    )


def report(result: ObjectVsFile) -> None:
    """Print the per-fraction comparison table and crossover."""
    rows = []
    for c in result.comparisons:
        rows.append(
            [
                f"{c.selection_fraction:.4f}",
                c.selected_objects,
                c.file_strategy.bytes_moved / 1e6,
                c.object_strategy.bytes_moved / 1e6,
                f"{c.ratio:.1f}x",
                f"{c.majority_probability:.2e}",
                c.winner,
            ]
        )
    print_table(
        [
            "selection",
            "objects",
            "file repl (MB)",
            "object repl (MB)",
            "file/object",
            "P(majority)",
            "winner",
        ],
        rows,
        f"EXP-OBJ1 — §5.1 file vs object replication "
        f"({result.n_events} events x {result.object_size / 1000:.0f} KB "
        f"objects, {result.events_per_file}/file)",
    )
    print(f"crossover: file replication competitive from selection fraction "
          f"~{result.crossover_fraction}")
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
