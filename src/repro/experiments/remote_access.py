"""EXP-AMS: remote object access vs replication (§2.1 / §5.2 rationale).

"The use of wide-area object granularity access and replication protocols
is considered unattractive, as large wide-area overheads have been
observed in existing implementations of such protocols."

The experiment reads the same sparse selection three ways:

1. AMS-style remote access across the 125 ms WAN (page-per-round-trip);
2. object replication first, then local reads;
3. as a reference, what the remote reads would cost on a LAN — the
   low-latency assumption the persistency layer was built under.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import print_table
from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.channels import MessageNetwork
from repro.netsim.link import Link
from repro.netsim.topology import Host, Topology
from repro.netsim.units import mbps
from repro.objectdb import EventStoreBuilder, Federation, ObjectTypeSpec
from repro.objectdb.ams import AmsPageServer, RemoteObjectReader
from repro.objectdb.persistency import ObjectReader
from repro.objectrep import GlobalObjectIndex, ObjectReplicator, select_events
from repro.simulation import Simulator

__all__ = ["RemoteAccessResult", "run", "report"]

AOD = (ObjectTypeSpec("aod", 10_000.0),)


@dataclass(frozen=True)
class RemoteAccessResult:
    objects: int
    wan_remote_access_s: float
    lan_remote_access_s: float
    replicate_then_read_s: float

    @property
    def wan_penalty_vs_replication(self) -> float:
        return self.wan_remote_access_s / self.replicate_then_read_s


def _remote_access_time(delay: float, oids, total_events: int, seed: int) -> float:
    """Time to read ``oids`` through AMS over a link with one-way ``delay``."""
    sim = Simulator()
    topo = Topology()
    topo.add_host(Host("store"))
    topo.add_host(Host("client"))
    topo.connect("store", "client",
                 Link("l", capacity=mbps(45), delay=delay,
                      cross_traffic=mbps(20)))
    msgnet = MessageNetwork(sim, topo)
    federation = Federation("cms", site="store")
    EventStoreBuilder(seed=seed).build(
        federation, n_events=total_events, types=AOD, events_per_file=500
    )
    server = AmsPageServer(sim, msgnet, topo.host("store"), federation)
    reader = RemoteObjectReader(sim, msgnet, topo.host("client"), server)
    start = sim.now
    sim.run(until=reader.read_many(oids))
    return sim.now - start


def run(n_events: int = 2000, fraction: float = 0.05, seed: int = 17
        ) -> RemoteAccessResult:
    """Time remote access (WAN and LAN) vs replicate-then-read."""
    rng = np.random.Generator(np.random.PCG64(seed))
    selected = select_events(list(range(n_events)), fraction, rng)

    # OIDs are deterministic for a given builder seed/layout, so the same
    # oid list is valid in each freshly-built store below.
    total_events = n_events * 10  # the selection probes a larger store
    probe = Federation("cms", site="probe")
    catalog = EventStoreBuilder(seed=seed).build(
        probe, n_events=total_events, types=AOD, events_per_file=500
    )
    oids = catalog.oids_for(selected, "aod")

    wan_time = _remote_access_time(0.0625, oids, total_events, seed)
    lan_time = _remote_access_time(0.0005, oids, total_events, seed)

    # replicate-then-read over the same WAN
    grid = DataGrid([GdmpConfig("cern"), GdmpConfig("anl")], seed=seed)
    cern = grid.site("cern")
    EventStoreBuilder(seed=seed).build(
        cern.federation, n_events=total_events, types=AOD, events_per_file=500
    )
    index = GlobalObjectIndex()
    for name in cern.federation.database_names:
        index.record_file("cern", name, cern.federation.database(name).iter_objects())
    start = grid.sim.now
    keys = [f"{e}/aod" for e in selected]
    grid.run(
        until=ObjectReplicator(grid, "anl", index).replicate_objects(
            keys, chunk_objects=500
        )
    )
    local_reader = ObjectReader(grid.site("anl").federation)
    for key in keys:
        obj = grid.site("anl").federation.find_by_key(key)
        local_reader.read(obj.oid)
    replicate_time = grid.sim.now - start

    return RemoteAccessResult(
        objects=len(selected),
        wan_remote_access_s=wan_time,
        lan_remote_access_s=lan_time,
        replicate_then_read_s=replicate_time,
    )


def report(result: RemoteAccessResult) -> None:
    """Print the three-strategy comparison."""
    print_table(
        ["access strategy", "time (s)"],
        [
            ["AMS remote access over the WAN (125 ms RTT)",
             result.wan_remote_access_s],
            ["AMS remote access on a LAN (1 ms RTT)",
             result.lan_remote_access_s],
            ["object-replicate to the client site, read locally",
             result.replicate_then_read_s],
        ],
        f"EXP-AMS — reading {result.objects} sparse 10 KB objects",
    )
    print(
        f"WAN remote access is {result.wan_penalty_vs_replication:.1f}x "
        "slower than replicate-then-read — the §5.2 rationale"
    )
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
