"""EXP-MSS: §4.4 stage-on-demand.

"If a remote site requests a replica from another remote site where the
file is not available in the disk pool, GDMP initializes the staging
process from tape to disk.  The GDMP server then informs the remote site
when the file is present locally on disk and at that time performs
automatically the disk-to-disk file transfer."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import export_telemetry, print_table
from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.units import MB

__all__ = ["StagingResult", "run", "report"]


@dataclass(frozen=True)
class StagingResult:
    size_mb: int
    warm: object   # ReplicationReport, file already on the source's disk
    cold: object   # ReplicationReport, file staged from tape first

    @property
    def staging_penalty(self) -> float:
        return self.cold.stage_wait - self.warm.stage_wait


def run(size_mb: int = 20, seed: int = 2001,
        metrics_json: str | None = None,
        trace_chrome: str | None = None,
        show_report: bool = False) -> StagingResult:
    """Replicate a disk-warm and a tape-cold file; returns both reports.
    The telemetry keywords export the grid's metrics/trace afterwards."""
    grid = DataGrid(
        [GdmpConfig("cern", has_mss=True), GdmpConfig("anl")], seed=seed
    )
    cern, anl = grid.site("cern"), grid.site("anl")
    for lfn in ("warm.db", "cold.db"):
        grid.run(until=cern.client.produce_and_publish(lfn, size_mb * MB))
    # archive cold.db and purge it from the disk pool
    grid.run(until=cern.storage.archive("/storage/cold.db"))
    cern.fs.delete("/storage/cold.db")

    warm = grid.run(until=anl.client.replicate("warm.db"))
    cold = grid.run(until=anl.client.replicate("cold.db"))
    export_telemetry(
        grid.metrics,
        grid.tracelog,
        metrics_json=metrics_json,
        trace_chrome=trace_chrome,
        show_report=show_report,
    )
    return StagingResult(size_mb=size_mb, warm=warm, cold=cold)


def report(result: StagingResult) -> None:
    """Print the warm/cold comparison."""
    print_table(
        ["scenario", "stage wait (s)", "transfer (s)", "total (s)"],
        [
            [
                "warm (on source disk)",
                result.warm.stage_wait,
                result.warm.transfer_duration,
                result.warm.total_duration,
            ],
            [
                "cold (staged from tape)",
                result.cold.stage_wait,
                result.cold.transfer_duration,
                result.cold.total_duration,
            ],
        ],
        f"EXP-MSS — §4.4 stage-on-demand, {result.size_mb} MB file",
    )
    print(f"staging penalty: {result.staging_penalty:.1f} s "
          "(tape mount + seek + stream)")
    print()


def main(metrics_json: str | None = None,
         trace_chrome: str | None = None,
         show_report: bool = False) -> None:
    """Run and report with default parameters."""
    report(run(metrics_json=metrics_json, trace_chrome=trace_chrome,
               show_report=show_report))
