"""EXP-CHAOS — deterministic fault injection with end-to-end recovery.

§4.3: "Error recovery plays an important role in Data Grids ... The
error recovery mechanism is based on the principle that a failed
operation is retried, and if it fails repeatedly, an alternative
replica location is used."  This experiment turns that principle into a
falsifiable claim: under a seeded campaign of injected faults — link
flaps, host crash/restart cycles, tape-system stalls and errors,
catalog black-holes — an interrupted ``replicate_set`` still
*converges*: every file ends up replicated exactly once, CRC-intact,
with no duplicate or dangling catalog registrations, and the whole run
(fault schedule included) replays bit-identically from the seed.

``python -m repro.experiments chaos --seed=7 --campaign=crash_restart``
runs one fault class; without ``--campaign`` all four run in sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import export_telemetry, print_table
from repro.faults import (
    FaultInjector,
    catalog_blackhole_campaign,
    crash_restart_campaign,
    link_flap_campaign,
    mss_stall_campaign,
)
from repro.gdmp import DataGrid, GdmpConfig
from repro.gdmp.request_manager import GdmpError
from repro.services.bus import ServiceError
from repro.netsim.units import MB
from repro.services.resilience import ResilienceConfig
from repro.simulation.randomness import RandomStreams

__all__ = ["CAMPAIGNS", "ChaosResult", "run", "report"]

#: the four fault classes the chaos gate exercises
CAMPAIGNS = ("link_flap", "crash_restart", "mss_stall", "catalog_blackhole")


@dataclass(frozen=True)
class ChaosResult:
    """Outcome + invariant checks for one chaos run."""

    campaign: str
    seed: int
    files: int
    rounds: int              # driver passes until replicate_set succeeded
    duration: float          # sim-time from driver start to convergence
    faults_injected: int
    pools_cancelled: int
    retries: float           # rpc.retries total
    failovers: float         # gdmp.mover.failovers total
    restarts: float          # gdmp.mover.restarts total (marker resumes)
    stalls: float            # gdmp.mover.stalls total (no-progress reissues)
    all_held: bool           # every file on the destination's disk
    crc_ok: bool             # every local replica matches the catalog CRC
    catalog_exact: bool      # destination registered exactly once per file
    no_active_faults: bool   # every fault window closed by campaign end
    schedule: str            # canonical campaign fingerprint
    fingerprint: str         # schedule + final state + telemetry, canonical
    errors: tuple[str, ...]  # human-readable invariant violations

    @property
    def converged(self) -> bool:
        return (self.all_held and self.crc_ok and self.catalog_exact
                and self.no_active_faults)


def _build_campaign(name: str, seed: int, grid: DataGrid):
    # windows are compressed relative to the builders' defaults so the
    # faults land while the driver's transfer set is actually in flight
    streams = RandomStreams(seed)
    if name == "link_flap":
        links = sorted(link.name for link in grid.topology.links)
        return link_flap_campaign(streams, links, start=2.0, spread=30.0)
    if name == "crash_restart":
        # crash the source sites; the destination driver stays up, as a
        # client orchestrating its own recovery would
        return crash_restart_campaign(
            streams, ["cern", "caltech"], start=3.0, spread=40.0
        )
    if name == "mss_stall":
        return mss_stall_campaign(streams, "cern", start=5.0, spread=150.0)
    if name == "catalog_blackhole":
        return catalog_blackhole_campaign(
            streams, grid.catalog_host, start=2.0, spread=40.0
        )
    raise ValueError(
        f"unknown campaign {name!r} (one of: {', '.join(CAMPAIGNS)})"
    )


def _sum_counter(grid: DataGrid, name: str) -> float:
    if grid.metrics is None or grid.metrics.kind(name) is None:
        return 0.0
    return sum(child.value for child in grid.metrics.children(name))


def _fingerprint(grid: DataGrid, dest, lfns, schedule: str) -> str:
    """Canonical run fingerprint: the fault schedule, the destination's
    final holdings (size + CRC), the catalog's location sets, and the
    full Prometheus export.  Two runs of the same seed must produce
    byte-identical strings — this is what the chaos smoke gate diffs."""
    from repro.telemetry import to_prometheus_text

    parts = [schedule]
    for lfn in lfns:
        path = dest.server.held.get(lfn)
        if path is not None and dest.fs.exists(path):
            stored = dest.fs.stat(path)
            parts.append(f"{lfn} {stored.size:.0f} {stored.crc}")
        else:
            parts.append(f"{lfn} MISSING")
        locations = ",".join(sorted(
            str(loc.get("location"))
            for loc in grid.catalog_backend.info(lfn).locations
        ))
        parts.append(f"{lfn} @ {locations}")
    parts.append(to_prometheus_text(grid.metrics))
    return "\n".join(parts)


def _verify(grid: DataGrid, dest, lfns) -> tuple[bool, bool, bool, list]:
    """The convergence invariants, checked against ground truth."""
    errors: list[str] = []
    all_held = True
    crc_ok = True
    catalog_exact = True
    for lfn in lfns:
        path = dest.server.held.get(lfn)
        if path is None or not dest.fs.exists(path):
            all_held = False
            errors.append(f"{lfn}: not on disk at {dest.name}")
            continue
        info = grid.catalog_backend.info(lfn)
        stored = dest.fs.stat(path)
        if stored.crc != info.crc or stored.size != info.size:
            crc_ok = False
            errors.append(f"{lfn}: local bytes disagree with the catalog")
        here = [
            loc for loc in info.locations
            if loc.get("location") == dest.name
        ]
        if len(here) != 1:
            catalog_exact = False
            errors.append(
                f"{lfn}: {len(here)} catalog entries for {dest.name} "
                "(want exactly 1)"
            )
    return all_held, crc_ok, catalog_exact, errors


def run(
    campaign: str = "link_flap",
    seed: int = 2001,
    files: int = 6,
    size_mb: int = 12,
    chunk: int = 2,
    max_rounds: int = 20,
    retry_pause: float = 5.0,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> ChaosResult:
    """Run one fault campaign against a 3-site grid and verify that the
    destination's ``replicate_set`` converges despite it."""
    has_mss = campaign == "mss_stall"
    grid = DataGrid(
        [
            GdmpConfig("cern", has_mss=has_mss),
            GdmpConfig("anl"),
            GdmpConfig("caltech"),
        ],
        catalog_host="cern",
        seed=seed,
    )
    # generous RPC timeout only where healthy tape stagings need it
    grid.enable_resilience(
        ResilienceConfig(rpc_timeout=120.0 if has_mss else 30.0)
    )
    cern, anl, caltech = (
        grid.site("cern"), grid.site("anl"), grid.site("caltech")
    )
    lfns = [f"chaos-{i:02d}.db" for i in range(files)]
    for lfn in lfns:
        grid.run(until=cern.client.produce_and_publish(lfn, size_mb * MB))
    if has_mss:
        # force every transfer through the (faulty) tape system: archive
        # the files and purge the disk copies at the only source
        for lfn in lfns:
            path = cern.config.storage_path(lfn)
            grid.run(until=cern.storage.archive(path))
            cern.fs.delete(path)
    else:
        # a second replica at caltech gives crash/flap runs somewhere to
        # fail over to while cern is gone
        grid.run(until=caltech.client.replicate_set(lfns))

    fault_campaign = _build_campaign(campaign, seed, grid)
    injector = FaultInjector(grid, fault_campaign)

    def driver():
        # the set travels in chunks, as an operator scripting gdmp_get
        # over a large dataset would: each chunk is its own catalog
        # envelope pair, so fault windows intersect live catalog traffic
        # and live transfers rather than one burst at either end
        rounds = 0
        last_error = None
        while rounds < max_rounds:
            rounds += 1
            try:
                for i in range(0, len(lfns), chunk):
                    yield anl.client.replicate_set(
                        lfns[i:i + chunk], skip_held=True
                    )
                return rounds
            except (GdmpError, ServiceError) as exc:
                # GdmpError covers the pipeline (all-sources-failed,
                # remote faults, request timeouts); ServiceError covers
                # transport-level losses that outlive the retry budget
                # (connection resets, open breakers)
                last_error = exc
                yield grid.sim.timeout(retry_pause)
        raise GdmpError(
            f"chaos({campaign}): no convergence within {max_rounds} "
            f"rounds; last error: {last_error}"
        )

    started = grid.sim.now
    campaign_proc = injector.start()
    rounds = grid.run(
        until=grid.sim.spawn(driver(), name=f"chaos-driver {campaign}")
    )
    duration = grid.sim.now - started
    # drain the remainder of the schedule so every down window closes
    # before the invariants are checked (a converged state must also
    # survive faults that land after the last transfer)
    grid.run(until=campaign_proc)

    all_held, crc_ok, catalog_exact, errors = _verify(grid, anl, lfns)
    no_active = not injector.active_faults()
    if not no_active:
        errors.append(f"fault windows still open: {injector.active_faults()}")
    export_telemetry(
        grid.metrics,
        grid.tracelog,
        metrics_json=metrics_json,
        trace_chrome=trace_chrome,
        show_report=show_report,
    )
    return ChaosResult(
        campaign=campaign,
        seed=seed,
        files=files,
        rounds=rounds,
        duration=duration,
        faults_injected=injector.injected,
        pools_cancelled=injector.pools_cancelled,
        retries=_sum_counter(grid, "rpc.retries"),
        failovers=_sum_counter(grid, "gdmp.mover.failovers"),
        restarts=_sum_counter(grid, "gdmp.mover.restarts"),
        stalls=_sum_counter(grid, "gdmp.mover.stalls"),
        all_held=all_held,
        crc_ok=crc_ok,
        catalog_exact=catalog_exact,
        no_active_faults=no_active,
        schedule=fault_campaign.schedule_repr(),
        fingerprint=_fingerprint(
            grid, anl, lfns, fault_campaign.schedule_repr()
        ),
        errors=tuple(errors),
    )


def report(result: ChaosResult) -> None:
    """Print the per-campaign convergence verdict."""
    verdict = "CONVERGED" if result.converged else "FAILED"
    print_table(
        ["check", "value"],
        [
            ["faults injected", result.faults_injected],
            ["data pools torn down", result.pools_cancelled],
            ["rpc retries", int(result.retries)],
            ["source failovers", int(result.failovers)],
            ["marker restarts", int(result.restarts)],
            ["no-progress reissues", int(result.stalls)],
            ["driver rounds", result.rounds],
            ["sim-time to converge (s)", f"{result.duration:.1f}"],
            ["all files held", result.all_held],
            ["CRCs intact", result.crc_ok],
            ["catalog exactly-once", result.catalog_exact],
        ],
        f"EXP-CHAOS — {result.campaign} campaign, seed {result.seed}, "
        f"{result.files} files: {verdict}",
    )
    for line in result.errors:
        print(f"  !! {line}")
    print()


def main(
    campaign: str | None = None,
    seed: int = 2001,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> None:
    """Run one named campaign, or all four in sequence."""
    if campaign and campaign not in CAMPAIGNS:
        raise SystemExit(
            f"unknown campaign {campaign!r} (one of: {', '.join(CAMPAIGNS)})"
        )
    names = [campaign] if campaign else list(CAMPAIGNS)
    for name in names:
        report(run(
            campaign=name,
            seed=seed,
            metrics_json=metrics_json,
            trace_chrome=trace_chrome,
            show_report=show_report,
        ))
