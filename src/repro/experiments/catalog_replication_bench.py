"""EXP-CR: the §4.2 future work realized — catalog replication ablation.

Compares the paper's central single-LDAP deployment with a primary +
read-replica deployment: read latency collapses from one WAN round trip to
local, writes stay at one WAN round trip, and the price is an eventual-
consistency staleness window of roughly one propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import print_table
from repro.gdmp import DataGrid, GdmpConfig
from repro.gdmp.catalog_replication import enable_catalog_replication
from repro.netsim.units import MB

__all__ = ["CatalogReplicationResult", "run", "report"]


@dataclass(frozen=True)
class CatalogReplicationResult:
    central_read: float        # s/op, remote site against the central catalog
    replicated_read: float     # s/op, same site against its local replica
    replicated_write: float    # s/op, write via the primary
    staleness_window: float    # s from write-ack to replica convergence

    @property
    def read_speedup(self) -> float:
        return self.central_read / self.replicated_read


def _timed(grid, factory, count) -> float:
    start = grid.sim.now
    for i in range(count):
        grid.run(until=factory(i))
    return (grid.sim.now - start) / count


def run(lookups: int = 20, seed: int = 2001) -> CatalogReplicationResult:
    # --- central deployment (the paper's) ---------------------------------
    """Compare central vs replicated catalog deployments."""
    central = DataGrid(
        [GdmpConfig("cern"), GdmpConfig("caltech")], catalog_host="cern",
        seed=seed,
    )
    cern = central.site("cern")
    # this experiment measures raw deployment latency: the repeated reads
    # must each pay the round trip, not hit the client-side location cache
    central.site("caltech").client.catalog.cache_enabled = False
    central.run(until=cern.client.produce_and_publish("f.db", 1 * MB))
    central_read = _timed(
        central,
        lambda i: central.site("caltech").client.catalog.locations("f.db"),
        lookups,
    )

    # --- replicated deployment ----------------------------------------------
    replicated = DataGrid(
        [GdmpConfig("cern"), GdmpConfig("caltech")], catalog_host="cern",
        seed=seed,
    )
    replicas = enable_catalog_replication(replicated, ["caltech"])
    replicated.site("caltech").client.catalog.cache_enabled = False
    cern = replicated.site("cern")
    replicated.run(until=cern.client.produce_and_publish("f.db", 1 * MB))
    replicated.run()  # propagate
    replicated_read = _timed(
        replicated,
        lambda i: replicated.site("caltech").client.catalog.locations("f.db"),
        lookups,
    )
    replicated_write = _timed(
        replicated,
        lambda i: replicated.site("caltech").client.catalog.add_replica(
            "f.db", "caltech"
        )
        if i == 0
        else replicated.site("caltech").client.catalog.remove_replica(
            "f.db", "caltech"
        )
        if i == 1
        else replicated.site("caltech").client.catalog.lfn_exists("f.db"),
        2,
    )

    # --- staleness: write-ack to replica convergence ---------------------------
    ack_time = replicated.sim.now
    replicated.run(until=cern.client.produce_and_publish("late.db", 1 * MB))
    ack_time = replicated.sim.now
    replica = replicas["caltech"]
    stale_at_ack = not replica.catalog.lfn_exists("late.db")
    replicated.run()
    staleness = (replicated.sim.now - ack_time) if stale_at_ack else 0.0

    return CatalogReplicationResult(
        central_read=central_read,
        replicated_read=replicated_read,
        replicated_write=replicated_write,
        staleness_window=staleness,
    )


def report(result: CatalogReplicationResult) -> None:
    """Print the deployment comparison and staleness window."""
    print_table(
        ["deployment / operation", "latency (ms)"],
        [
            ["central catalog, WAN read", result.central_read * 1000],
            ["replicated catalog, local read", result.replicated_read * 1000],
            ["replicated catalog, write (via primary)",
             result.replicated_write * 1000],
        ],
        "EXP-CR — catalog replication (§4.2 future work)",
    )
    print(f"read speedup from a local replica: {result.read_speedup:.0f}x")
    print(f"staleness window after a write ack: "
          f"{result.staleness_window * 1000:.0f} ms")
    print()


def main() -> None:
    """Run and report with default parameters."""
    report(run())
