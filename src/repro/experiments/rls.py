"""EXP-RLS — the two-tier replica location service, end to end.

A ``sites``-site grid (default ten) runs in sharded mode: every site
publishes its own files into its Local Replica Catalog, digest pushers
feed the Replica Location Index, and cross-site lookups route
index-first with verify-on-use at the LRCs.  The experiment drives the
full soft-state life cycle and checks the staleness/consistency
contract from DESIGN.md:

* **coverage/convergence** — after the digest cadence settles, the
  index covers ground truth: every site that holds an LFN is among the
  index's candidates for it, and routed lookups return exactly the
  ground-truth location set;
* **bounded staleness** — files published mid-run become visible to the
  index within the digest period (or, when digest pushes are being
  dropped by a fault window, within the window plus a full-refresh
  cycle), measured by polling index coverage;
* **degradation, not failure** — under the ``rli_blackhole`` campaign
  lookups fall back to verify-on-use broadcasts over the LRCs and still
  answer correctly; under ``digest_loss`` the index keeps answering
  (stale) and verify-on-use absorbs the drift; after the window closes
  the re-pushed digests converge the index;
* **no phantoms, ever** — every location in every answer was confirmed
  by the owning LRC, so answers are correct even when incomplete;
* **writes stay local + adoption** — a replication wave registers new
  replicas at the destination LRCs (metadata-carrying adoption), and
  cross-site knowledge arrives by digest, not per-file RPC (the
  compression ratio against naive per-write fan-out is recorded).

``python -m repro.experiments rls --sites=10 --seed=7`` runs it;
``--campaign=rli_blackhole`` or ``--campaign=digest_loss`` arms chaos.
The 10M-entry wall-clock throughput leg lives in
``benchmarks/bench_rls.py`` (recorded in BENCH_rls.json).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.experiments.common import export_telemetry, print_table
from repro.faults import FaultInjector, rli_blackhole_campaign
from repro.gdmp import DataGrid, GdmpConfig
from repro.gdmp.request_manager import REQUEST_MESSAGE_SIZE
from repro.netsim.units import MB
from repro.rls import DigestConfig, RlsConfig
from repro.services.resilience import ResilienceConfig
from repro.simulation.randomness import RandomStreams

__all__ = ["CAMPAIGNS", "RlsResult", "run", "report"]

#: fault classes the RLS gate can aim at the index
CAMPAIGNS = ("rli_blackhole", "digest_loss")

#: site names for grids up to ten sites (beyond that: site-NN)
_SITE_NAMES = (
    "cern", "anl", "caltech", "slac", "fnal",
    "bnl", "ral", "in2p3", "desy", "kek",
)


@dataclass(frozen=True)
class RlsResult:
    """Outcome + invariant checks for one EXP-RLS run."""

    seed: int
    campaign: str              # "" = fault-free
    sites: int
    files: int                 # total files published (both waves)
    lookups: int               # routed cross-site lookups performed
    exact_lookups: int         # final-wave lookups matching ground truth
    degraded_lookups: int      # mid-fault lookups that still answered
    phantom_answers: int       # locations not confirmed by ground truth
    fallback_broadcasts: int
    verify_misses: int         # bloom false positives + stale hits
    rli_unavailable: int
    negative_hits: int
    staleness_window: float    # publish -> index coverage (sim seconds)
    staleness_bound: float     # contract bound for this run
    digest_bytes: int          # cross-site digest traffic
    naive_bytes: int           # what per-write fan-out would have cost
    digests_full: int
    digests_delta: int
    pushes_lost: int
    replicas_made: int         # replication wave: replicas registered
    coverage_ok: bool          # index covers ground truth at the end
    lookups_ok: bool           # final wave exact, no phantoms anywhere
    staleness_ok: bool
    replication_ok: bool
    faults_injected: int
    no_active_faults: bool
    duration: float            # sim-time for the whole experiment
    wall_seconds: float
    fingerprint: str
    errors: tuple[str, ...]

    @property
    def converged(self) -> bool:
        return (self.coverage_ok and self.lookups_ok and self.staleness_ok
                and self.replication_ok and self.no_active_faults)

    @property
    def digest_compression(self) -> float:
        """Naive per-write fan-out bytes per digest byte."""
        return self.naive_bytes / self.digest_bytes if self.digest_bytes else 0.0


def _site_names(sites: int) -> list[str]:
    if sites <= len(_SITE_NAMES):
        return list(_SITE_NAMES[:sites])
    return list(_SITE_NAMES) + [
        f"site-{i:02d}" for i in range(len(_SITE_NAMES), sites)
    ]


def _build_campaign(name: str, seed: int, rli_host: str):
    streams = RandomStreams(seed)
    if name == "rli_blackhole":
        return rli_blackhole_campaign(
            streams, rli_host, windows=2, digest_loss_windows=0,
            start=5.0, spread=40.0, min_down=25.0, max_down=50.0,
        )
    if name == "digest_loss":
        return rli_blackhole_campaign(
            streams, rli_host, windows=0, digest_loss_windows=2,
            start=5.0, spread=40.0, min_down=25.0, max_down=50.0,
        )
    raise ValueError(
        f"unknown campaign {name!r} (one of: {', '.join(CAMPAIGNS)})"
    )


def _publish_wave(grid: DataGrid, prefix: str, per_site: int,
                  size_mb: float) -> dict[str, list[str]]:
    """Publish ``per_site`` files at every site; site -> its new LFNs."""
    published: dict[str, list[str]] = {}
    for name in grid.sites:
        site = grid.site(name)
        specs = []
        for i in range(per_site):
            lfn = f"{prefix}-{name}-{i:04d}.dat"
            path = site.config.storage_path(lfn)
            site.storage.pool.ensure_space(int(size_mb * MB))
            site.fs.create(path, int(size_mb * MB), now=grid.sim.now)
            specs.append({"path": path, "lfn": lfn})
        grid.run(until=site.client.publish_set(specs))
        published[name] = [spec["lfn"] for spec in specs]
    return published


def _covered(grid: DataGrid, lfn: str) -> bool:
    """Ground-truth index coverage: every holder is a candidate (direct
    memory reads; does not perturb index lookup counters)."""
    states = grid.rls.index.states
    return all(
        states[site].might_hold(lfn) for site in grid.rls.holders(lfn)
    )


def _await_coverage(grid: DataGrid, lfns: list[str], deadline: float,
                    interval: float):
    """Sim process: poll until the index covers every LFN (returns the
    wait) or the deadline passes (returns None)."""

    def poll():
        started = grid.sim.now
        while True:
            if all(_covered(grid, lfn) for lfn in lfns):
                return grid.sim.now - started
            if grid.sim.now >= deadline:
                return None
            yield grid.sim.timeout(interval)

    return grid.sim.spawn(poll(), name="rls-coverage-poll")


def _lookup_wave(grid: DataGrid, samples: list[tuple[str, str]],
                 require_exact: bool, errors: list[str],
                 label: str) -> tuple[int, int, int]:
    """Run routed ``info`` lookups; (performed, exact, phantoms).

    ``samples`` is (reader site, lfn).  Exactness compares the answer's
    location set with ground truth; phantoms are locations ground truth
    disowns — the contract violation that must never happen."""
    performed = exact = phantoms = 0
    for reader, lfn in samples:
        client = grid.site(reader).client
        holders = set(grid.rls.holders(lfn))
        try:
            info = grid.run(until=client.catalog.info(lfn))
        except Exception as exc:
            errors.append(f"{label}: {reader} lookup {lfn} failed: {exc}")
            continue
        performed += 1
        seen = {loc["location"] for loc in info.locations}
        ghost = seen - set(grid.rls.holders(lfn))
        if ghost:
            phantoms += len(ghost)
            errors.append(
                f"{label}: {reader} saw phantom locations {sorted(ghost)} "
                f"for {lfn}"
            )
        if seen == holders:
            exact += 1
        elif require_exact:
            errors.append(
                f"{label}: {reader} saw {sorted(seen)} for {lfn}, "
                f"ground truth {sorted(holders)}"
            )
    return performed, exact, phantoms


def run(
    sites: int = 10,
    files_per_site: int = 30,
    seed: int = 2001,
    campaign: str = "",
    lookups_per_site: int = 20,
    replicas_per_site: int = 5,
    period: float = 20.0,
    full_every: int = 4,
    size_mb: float = 1.0,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> RlsResult:
    """Run the two-tier location service through its full life cycle."""
    from repro.telemetry import to_prometheus_text

    wall_started = time.perf_counter()
    names = _site_names(sites)
    digest = DigestConfig(period=period, full_every=full_every)
    grid = DataGrid(
        [GdmpConfig(name) for name in names],
        catalog_host=names[0],
        seed=seed,
        rls=RlsConfig(digest=digest, lookup_timeout=10.0),
    )
    grid.enable_resilience(ResilienceConfig(rpc_timeout=10.0))
    streams = RandomStreams(seed)
    errors: list[str] = []
    started = grid.sim.now

    # -- wave 1: every site publishes its own files (writes stay local)
    wave1 = _publish_wave(grid, "rls1", files_per_site, size_mb)

    # -- arm the digest cadence (and, optionally, the fault campaign)
    grid.rls.start()
    schedule = ""
    injector = None
    campaign_proc = None
    if campaign:
        fault_campaign = _build_campaign(campaign, seed, grid.rls.rli_host)
        schedule = fault_campaign.schedule_repr()
        injector = FaultInjector(grid, fault_campaign)
        campaign_proc = injector.start()

    # -- mid-fault degradation probe: lookups must answer while the
    #    index is black-holed or starving (verify-on-use carries them)
    degraded = 0
    if campaign:
        grid.run(until=grid.sim.timeout(20.0))  # inside the first window
        rng = streams["rls.lookups.degraded"]
        all_lfns = sorted(lfn for lfns in wave1.values() for lfn in lfns)
        samples = [
            (
                names[int(rng.integers(0, len(names)))],
                all_lfns[int(rng.integers(0, len(all_lfns)))],
            )
            for _ in range(sites * 2)
        ]
        performed, _, phantoms = _lookup_wave(
            grid, samples, require_exact=False, errors=errors,
            label="degraded",
        )
        degraded = performed
        if performed < len(samples):
            errors.append(
                f"degraded: only {performed}/{len(samples)} lookups "
                "answered under faults"
            )

    # -- wait out the campaign, then require full index coverage
    campaign_horizon = 0.0
    if campaign_proc is not None:
        grid.run(until=campaign_proc)
        campaign_horizon = grid.sim.now - started
    wave1_lfns = sorted(lfn for lfns in wave1.values() for lfn in lfns)
    deadline = grid.sim.now + (full_every + 1) * period + 30.0
    settled = grid.run(
        until=_await_coverage(grid, wave1_lfns, deadline, period / 4.0)
    )
    coverage_ok = settled is not None
    if not coverage_ok:
        errors.append("index never covered wave-1 ground truth")

    # -- wave 2: publish into a (now converged) index and time the
    #    staleness window until the index covers the new files
    wave2 = _publish_wave(grid, "rls2", max(2, files_per_site // 10), size_mb)
    wave2_lfns = sorted(lfn for lfns in wave2.values() for lfn in lfns)
    staleness_bound = (full_every + 1) * period + 30.0
    staleness = grid.run(
        until=_await_coverage(
            grid, wave2_lfns, grid.sim.now + staleness_bound, period / 8.0
        )
    )
    staleness_ok = staleness is not None
    staleness_window = staleness if staleness is not None else -1.0
    if not staleness_ok:
        errors.append(
            f"wave-2 files not covered within {staleness_bound:.0f}s"
        )

    # -- final exact lookup wave: cold caches, index-routed, must match
    #    ground truth exactly (the fault windows are all closed)
    for name in names:
        grid.site(name).client.catalog.invalidate()
    rng = streams["rls.lookups.final"]
    all_lfns = wave1_lfns + wave2_lfns
    samples = []
    for reader in names:
        for _ in range(lookups_per_site):
            samples.append(
                (reader, all_lfns[int(rng.integers(0, len(all_lfns)))])
            )
    performed, exact, phantoms = _lookup_wave(
        grid, samples, require_exact=True, errors=errors, label="final"
    )
    lookups_ok = (
        performed == len(samples)
        and exact == performed
        and phantoms == 0
    )

    # -- replication wave: replicate_set across sites exercises the
    #    RLI-routed source resolution and metadata-carrying adoption
    rng = streams["rls.replication"]
    replicas_made = 0
    replication_ok = True
    for i, reader in enumerate(names):
        donor = names[(i + 1) % len(names)]
        picks = list(wave1[donor])
        take = [
            picks[int(rng.integers(0, len(picks)))]
            for _ in range(min(replicas_per_site, len(picks)))
        ]
        take = sorted(set(take))
        try:
            grid.run(until=grid.site(reader).client.replicate_set(take))
        except Exception as exc:
            replication_ok = False
            errors.append(f"replication: {reader} <- {donor} failed: {exc}")
            continue
        backend = grid.rls.backends[reader]
        for lfn in take:
            if not backend.lfn_exists(lfn):
                replication_ok = False
                errors.append(
                    f"replication: {reader} LRC never adopted {lfn}"
                )
                continue
            mine = [
                loc for loc in backend.info(lfn).locations
                if loc.get("location") == reader
            ]
            if len(mine) != 1:
                replication_ok = False
                errors.append(
                    f"replication: {len(mine)} location records for "
                    f"{lfn} at {reader} (want exactly 1)"
                )
            else:
                replicas_made += 1

    no_active = injector is None or not injector.active_faults()
    if not no_active:
        errors.append(f"fault windows still open: {injector.active_faults()}")

    # -- accounting: digest bandwidth vs naive per-write fan-out
    index_stats = grid.rls.index.stats
    push_stats = grid.rls.push_stats()
    writes = len(wave1_lfns) + len(wave2_lfns) + replicas_made
    naive_bytes = writes * (sites - 1) * REQUEST_MESSAGE_SIZE
    proxy_stats = {
        key: sum(
            grid.site(name).client.catalog.stats.get(key, 0)
            for name in names
        )
        for key in (
            "fallback_broadcasts", "verify_misses", "rli_unavailable",
            "negative_hits",
        )
    }

    fingerprint = "\n".join(
        filter(None, [
            schedule,
            grid.rls.fingerprint(),
            ",".join(f"{k}={v}" for k, v in sorted(proxy_stats.items())),
            to_prometheus_text(grid.metrics),
        ])
    )
    export_telemetry(
        grid.metrics, grid.tracelog,
        metrics_json=metrics_json, trace_chrome=trace_chrome,
        show_report=show_report,
    )
    return RlsResult(
        seed=seed,
        campaign=campaign,
        sites=sites,
        files=len(wave1_lfns) + len(wave2_lfns),
        lookups=performed + degraded,
        exact_lookups=exact,
        degraded_lookups=degraded,
        phantom_answers=phantoms,
        fallback_broadcasts=proxy_stats["fallback_broadcasts"],
        verify_misses=proxy_stats["verify_misses"],
        rli_unavailable=proxy_stats["rli_unavailable"],
        negative_hits=proxy_stats["negative_hits"],
        staleness_window=staleness_window,
        staleness_bound=staleness_bound,
        digest_bytes=index_stats["digest_bytes"],
        naive_bytes=naive_bytes,
        digests_full=index_stats["digests_full"],
        digests_delta=index_stats["digests_delta"],
        pushes_lost=push_stats["pushes_lost"],
        replicas_made=replicas_made,
        coverage_ok=coverage_ok,
        lookups_ok=lookups_ok,
        staleness_ok=staleness_ok,
        replication_ok=replication_ok,
        faults_injected=injector.injected if injector else 0,
        no_active_faults=no_active,
        duration=grid.sim.now - started,
        wall_seconds=time.perf_counter() - wall_started,
        fingerprint=fingerprint,
        errors=tuple(errors),
    )


def report(result: RlsResult) -> None:
    """Print the convergence/contract verdict."""
    verdict = "CONVERGED" if result.converged else "FAILED"
    title = (
        f"EXP-RLS — seed {result.seed}, {result.sites} sites, "
        f"{result.files} files"
        + (f", campaign {result.campaign}" if result.campaign else "")
        + f": {verdict}"
    )
    print_table(
        ["check", "value"],
        [
            ["files published", result.files],
            ["routed lookups", result.lookups],
            ["exact final lookups", result.exact_lookups],
            ["degraded-mode lookups", result.degraded_lookups],
            ["phantom answers", result.phantom_answers],
            ["fallback broadcasts", result.fallback_broadcasts],
            ["verify-on-use misses", result.verify_misses],
            ["RLI unavailable", result.rli_unavailable],
            ["staleness window (s)",
             f"{result.staleness_window:.1f} (bound {result.staleness_bound:.0f})"],
            ["digest bytes", f"{result.digest_bytes:,}"],
            ["naive fan-out bytes", f"{result.naive_bytes:,}"],
            ["digest compression", f"{result.digest_compression:.1f}x"],
            ["digests full/delta",
             f"{result.digests_full}/{result.digests_delta}"],
            ["pushes lost", result.pushes_lost],
            ["replicas adopted", result.replicas_made],
            ["faults injected", result.faults_injected],
            ["index covers ground truth", result.coverage_ok],
            ["lookups exact", result.lookups_ok],
            ["staleness bounded", result.staleness_ok],
            ["replication adopted", result.replication_ok],
            ["sim-time (s)", f"{result.duration:.1f}"],
            ["wall time (s)", f"{result.wall_seconds:.1f}"],
        ],
        title,
    )
    for line in result.errors:
        print(f"  !! {line}")
    print()


def main(
    sites: int = 10,
    files: int = 30,
    seed: int = 2001,
    campaign: str | None = None,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> None:
    """Run EXP-RLS (optionally under one fault class)."""
    if campaign and campaign not in CAMPAIGNS:
        raise SystemExit(
            f"unknown campaign {campaign!r} (one of: {', '.join(CAMPAIGNS)})"
        )
    report(run(
        sites=sites,
        files_per_site=files,
        seed=seed,
        campaign=campaign or "",
        metrics_json=metrics_json,
        trace_chrome=trace_chrome,
        show_report=show_report,
    ))
