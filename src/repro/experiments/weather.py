"""EXP-WEATHER — history-based replica selection on a tiered grid.

A MONARC-style T0/T1/T2 tree (one Tier-0, two meshed Tier-1 regions,
two Tier-2 sites per region) runs the same congestion story twice, from
the same seed:

* the **smart** leg wires the grid weather service in: every retired
  transfer feeds the station's per-pair history, forecast digests are
  pushed to the site caches, and replica selection blends predicted
  transfer times with instantaneous probes;
* the **static** leg is the identical grid with the observatory off —
  selection uses the pre-observatory probe ladder only.

The measured demand is cross-region: each T2's files are held at the T0
*and* at the far region's T1 (never at its own parent), so selection
must choose between the T0 backbone path and the slimmer T1–T1 mesh.
Probes price the backbone path above the mesh (40 vs 35 probe-available
Mbit/s), but a diurnal wave of real elastic production exports out of
the T0 saturates the backbone with traffic instantaneous probes cannot
see — ``pipechar`` reports capacity minus *constant* cross-traffic —
while the station's history sees achieved throughput.  The smart leg's
own first slow transfer becomes a history sample, the digest push
carries it to the site caches within one push period, and the rest of
the wave routes over the mesh; the static leg keeps paying the
congested backbone.  The experiment asserts:

* **fault-free speed-up** — smart mean completion time beats static
  under the congestion peak, and the post-peak wave keeps selecting on
  history (the adaptation persists);
* **bounded degradation** — under the ``weather_blackhole`` campaign
  (the weather plane black-holed grid-wide) the site caches age past
  the staleness horizon, selection demonstrably falls back to probes,
  stays within a bounded factor of the static leg (degradation, not
  failure), and reconverges onto history after the restore;
* **fault resilience** — under ``link_flap`` (mesh links) and
  ``crash_restart`` (T1 hosts) every measured transfer still completes
  in both legs, via the ranked-replica failover walk.

``python -m repro.experiments weather --seed=11`` runs it;
``--campaign=weather_blackhole|link_flap|crash_restart`` arms chaos.
The wall-clock leg lives in ``benchmarks/bench_weather.py`` (recorded
in BENCH_weather.json, floor-gated by ``tools/perf_report.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.experiments.common import export_telemetry, print_table
from repro.faults import (
    FaultInjector,
    crash_restart_campaign,
    link_flap_campaign,
    weather_blackhole_campaign,
)
from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.tiered import TieredSpec, tiered_grid_spec
from repro.netsim.units import MB
from repro.observatory import ScenarioDriver, diurnal_scenario
from repro.observatory.station import WeatherConfig
from repro.services.resilience import ResilienceConfig
from repro.simulation.randomness import RandomStreams

__all__ = ["CAMPAIGNS", "WeatherResult", "run", "report"]

#: fault classes the weather gate can arm
CAMPAIGNS = ("weather_blackhole", "link_flap", "crash_restart")

#: smart leg never slower than static by more than this factor
DEGRADATION_BOUND = 1.15

#: observatory cadence used by the experiment: pushes every 5 s, caches
#: stale after 20 s — so a 25 s+ black-hole window demonstrably forces
#: the probe fallback, and one landed push reconverges selection
_WEATHER = dict(
    push_period=5.0,
    staleness_horizon=20.0,
    half_life=120.0,
    ewma_alpha=0.4,
)


@dataclass(frozen=True)
class WeatherResult:
    """Outcome + invariant checks for one EXP-WEATHER run."""

    seed: int
    campaign: str              # "" = fault-free
    sites: int
    files: int                 # measured files per T2 destination
    measured: int              # measured transfers per leg
    smart_mean: float          # mean completion time, smart leg (s)
    static_mean: float         # mean completion time, static leg (s)
    smart_completed: int
    static_completed: int
    history_selections: int    # measured-wave rankings decided on history
    probe_fallbacks: int       # measured-wave rankings degraded to probes
    post_history: int          # post-wave rankings decided on history
    digests_applied: int
    pushes: int
    pushes_lost: int
    bg_launched: int           # background scenario transfers opened
    bg_aborted: int
    faults_injected: int
    speedup_ok: bool           # smart beat static (fault-free contract)
    bounded_ok: bool           # smart within DEGRADATION_BOUND of static
    completion_ok: bool        # every measured transfer completed
    degraded_ok: bool          # blackhole forced probe fallbacks
    reconverged: bool          # post-wave selections ride history again
    no_active_faults: bool
    duration: float            # sim-time, smart leg
    wall_seconds: float
    fingerprint: str
    errors: tuple[str, ...]

    @property
    def improvement(self) -> float:
        """Static mean over smart mean (>1 = smart is faster)."""
        return self.static_mean / self.smart_mean if self.smart_mean else 0.0

    @property
    def converged(self) -> bool:
        return (self.speedup_ok and self.bounded_ok and self.completion_ok
                and self.degraded_ok and self.reconverged
                and self.no_active_faults and not self.errors)


def _far_t1(tspec, t2: str) -> str:
    """The *other* region's T1 — the mesh-path replica holder."""
    parent = tspec.parents[t2]
    others = [t1 for t1 in tspec.t1_sites if t1 != parent]
    return others[0]


def _build_campaign(name: str, seed: int, tspec):
    streams = RandomStreams(seed)
    if name == "weather_blackhole":
        return weather_blackhole_campaign(
            streams, tspec.t0, windows=2,
            start=5.0, spread=40.0, min_down=25.0, max_down=45.0,
        )
    if name == "link_flap":
        mesh = [
            link.name
            for _, _, link, *_ in tspec.wan_links
            if link.name.startswith("t1x-")
        ]
        return link_flap_campaign(
            streams, mesh, flaps=3,
            start=5.0, spread=50.0, min_down=4.0, max_down=10.0,
        )
    if name == "crash_restart":
        return crash_restart_campaign(
            streams, list(tspec.t1_sites), crashes=2,
            start=8.0, spread=40.0, min_down=8.0, max_down=15.0,
        )
    raise ValueError(
        f"unknown campaign {name!r} (one of: {', '.join(CAMPAIGNS)})"
    )


def _produce_wave(grid, site: str, lfns, size: float) -> None:
    for lfn in lfns:
        grid.run(until=grid.site(site).client.produce_and_publish(lfn, size))


def _selection_totals(grid) -> dict:
    if grid.weather is None:
        return {"history_selections": 0, "probe_fallbacks": 0,
                "digests_applied": 0, "digests_stale": 0}
    return grid.weather.selection_stats()


def _measured_wave(grid, plan, durations, errors, label, trace=None):
    """Spawn one sequential puller per region (so the T1 mesh carries at
    most one measured flow per direction); returns the processes.

    ``plan`` maps region index -> list of (dst_t2, lfn), pulled in
    order.  Completion times land in ``durations``; ``trace`` (when
    given) collects (dst, lfn, chosen source, duration) for debugging.
    """

    def puller(work):
        for dst, lfn in work:
            started = grid.sim.now
            try:
                report = yield grid.site(dst).client.replicate(lfn)
            except Exception as exc:
                errors.append(f"{label}: {dst} <- {lfn} failed: {exc}")
                continue
            took = grid.sim.now - started
            durations.append(took)
            if trace is not None:
                trace.append((dst, lfn, report.source, started, took))

    return [
        grid.sim.spawn(puller(work), name=f"measured-r{region}")
        for region, work in sorted(plan.items())
    ]


def _run_leg(
    smart: bool,
    seed: int,
    tspec,
    scenario,
    campaign,
    files: int,
    size_mb: float,
    ramp: float,
):
    """One full leg (smart or static) from a fresh grid; returns a dict
    of everything the caller folds into the result/fingerprint."""
    weather = (
        WeatherConfig(weather_host=tspec.t0, **_WEATHER) if smart else None
    )
    # tuned 1 MiB buffers (the §6 result) so measured transfers are
    # bandwidth-limited, not window-limited — congestion on the path is
    # what decides completion time
    grid = DataGrid(
        [GdmpConfig(name, tcp_buffer=1 << 20) for name in tspec.sites],
        catalog_host=tspec.t0,
        seed=seed,
        weather=weather,
        wan_links=list(tspec.wan_links),
    )
    grid.enable_resilience(ResilienceConfig(rpc_timeout=10.0))
    errors: list[str] = []
    size = int(size_mb * MB)
    t2s = sorted(tspec.t2_sites)

    # -- publish: measured + post files at the T0, far-warmup files at
    #    the far T1s (each T2's candidate sources are {T0, far T1};
    #    its own parent never holds the set, so selection has to choose
    #    between the backbone path and the mesh path)
    measured = {t2: [f"m-{t2}-{i:02d}.dat" for i in range(files)]
                for t2 in t2s}
    warm_t0 = {t2: [f"w0-{t2}-{i}.dat" for i in range(2)] for t2 in t2s}
    warm_far = {t2: [f"wf-{t2}-{i}.dat" for i in range(2)] for t2 in t2s}
    post = {t2: f"p-{t2}.dat" for t2 in t2s}
    for t2 in t2s:
        _produce_wave(
            grid, tspec.t0,
            measured[t2] + warm_t0[t2] + [post[t2]], size,
        )
        _produce_wave(grid, _far_t1(tspec, t2), warm_far[t2], size)
    # pre-position the measured + post sets at the far T1s (uncongested)
    for t2 in t2s:
        far = _far_t1(tspec, t2)
        grid.run(until=grid.site(far).client.replicate_set(
            measured[t2] + [post[t2]], prefer_site=tspec.t0,
        ))

    if smart:
        grid.weather.start()

    # -- warmup: seed both candidate pairs' histories before congestion
    for t2 in t2s:
        grid.run(until=grid.site(t2).client.replicate_set(warm_t0[t2]))
        grid.run(until=grid.site(t2).client.replicate_set(warm_far[t2]))

    # -- congestion + measured wave at the diurnal ramp
    driver = ScenarioDriver(grid.sim, grid.engine, scenario, grid.metrics)
    driver.start()
    grid.run(until=grid.sim.timeout(ramp))

    injector = None
    campaign_proc = None
    if campaign is not None:
        injector = FaultInjector(grid, campaign)
        campaign_proc = injector.start()

    before = _selection_totals(grid)
    # interleave each region's two T2s so the mesh never carries more
    # than one measured flow per direction
    plan = {}
    for t2 in t2s:
        region = tspec.t1_sites.index(tspec.parents[t2])
        plan.setdefault(region, [])
    for i in range(files):
        for t2 in t2s:
            region = tspec.t1_sites.index(tspec.parents[t2])
            plan[region].append((t2, measured[t2][i]))
    durations: list[float] = []
    trace: list[tuple] = []
    for proc in _measured_wave(
        grid, plan, durations, errors, "measured", trace
    ):
        grid.run(until=proc)
    after = _selection_totals(grid)

    # -- settle: close any remaining fault windows, let pushes land
    if campaign_proc is not None:
        grid.run(until=campaign_proc)
    grid.run(until=grid.sim.timeout(3 * _WEATHER["push_period"]))

    # -- post wave: one fresh file per T2, after the faults/peak — the
    #    smart leg must be back on (or still on) history selections
    post_before = _selection_totals(grid)
    post_durations: list[float] = []
    post_plan = {}
    for t2 in t2s:
        region = tspec.t1_sites.index(tspec.parents[t2])
        post_plan.setdefault(region, []).append((t2, post[t2]))
    for proc in _measured_wave(
        grid, post_plan, post_durations, errors, "post"
    ):
        grid.run(until=proc)
    post_after = _selection_totals(grid)

    no_active = injector is None or not injector.active_faults()
    if not no_active:
        errors.append(
            f"fault windows still open: {injector.active_faults()}"
        )
    return {
        "grid": grid,
        "durations": durations,
        "trace": trace,
        "post_durations": post_durations,
        "selection_delta": {
            key: after[key] - before[key] for key in before
        },
        "post_delta": {
            key: post_after[key] - post_before[key] for key in post_before
        },
        "bg_stats": dict(driver.stats),
        "faults_injected": injector.injected if injector else 0,
        "no_active_faults": no_active,
        "errors": errors,
        "measured_count": sum(len(v) for v in measured.values()),
    }


def run(
    files: int = 4,
    seed: int = 2001,
    campaign: str = "",
    size_mb: float = 24.0,
    ramp: float = 120.0,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> WeatherResult:
    """Run both legs of EXP-WEATHER from one seed and compare them."""
    from repro.telemetry import to_prometheus_text

    wall_started = time.perf_counter()
    tspec = tiered_grid_spec(TieredSpec())
    streams = RandomStreams(seed)
    # production exports follow the sun: T0 -> T1 waves saturate the
    # backbones through the peak (while probes keep quoting the idle-
    # capacity price) and leave the regional tails and the mesh clear
    scenario = diurnal_scenario(
        streams,
        tspec.sites,
        horizon=600.0,
        period=240.0,
        base_rate=0.02,
        peak_rate=0.35,
        mean_size=150e6,
        sources=[tspec.t0],
        destinations=list(tspec.t1_sites),
    )
    fault_campaign = (
        _build_campaign(campaign, seed, tspec) if campaign else None
    )
    # the weather black-hole only exists in the smart leg (the static
    # grid has no weather plane to break — it is the degraded baseline)
    static_campaign = (
        None if campaign == "weather_blackhole" else fault_campaign
    )

    smart = _run_leg(
        True, seed, tspec, scenario, fault_campaign, files, size_mb, ramp
    )
    static = _run_leg(
        False, seed, tspec, scenario, static_campaign, files, size_mb, ramp
    )

    errors = list(smart["errors"]) + list(static["errors"])
    smart_mean = (
        sum(smart["durations"]) / len(smart["durations"])
        if smart["durations"] else 0.0
    )
    static_mean = (
        sum(static["durations"]) / len(static["durations"])
        if static["durations"] else 0.0
    )
    delta = smart["selection_delta"]
    post_delta = smart["post_delta"]
    expected = smart["measured_count"]
    completion_ok = (
        len(smart["durations"]) == expected
        and len(static["durations"]) == expected
    )
    if not completion_ok:
        errors.append(
            f"measured wave incomplete: smart {len(smart['durations'])}"
            f"/{expected}, static {len(static['durations'])}/{expected}"
        )
    # contract checks, per campaign class (see module docstring)
    if campaign == "weather_blackhole":
        speedup_ok = True
        bounded_ok = smart_mean <= static_mean * DEGRADATION_BOUND
        degraded_ok = delta["probe_fallbacks"] > 0
        if not degraded_ok:
            errors.append(
                "black-holed weather plane never forced a probe fallback"
            )
    elif campaign:
        speedup_ok = True
        bounded_ok = smart_mean <= static_mean * DEGRADATION_BOUND
        degraded_ok = True
    else:
        speedup_ok = smart_mean < static_mean
        if not speedup_ok:
            errors.append(
                f"smart mean {smart_mean:.2f}s did not beat static "
                f"{static_mean:.2f}s under congestion"
            )
        bounded_ok = True
        degraded_ok = True
    if not bounded_ok:
        errors.append(
            f"smart mean {smart_mean:.2f}s exceeds static "
            f"{static_mean:.2f}s x {DEGRADATION_BOUND}"
        )
    reconverged = post_delta["history_selections"] > 0
    if not reconverged:
        errors.append("post wave never selected on history again")

    grid = smart["grid"]
    push_stats = grid.weather.push_stats()
    durations_repr = " ".join(
        f"{d:.6f}" for d in smart["durations"] + static["durations"]
        + smart["post_durations"] + static["post_durations"]
    )
    fingerprint = "\n".join(
        filter(None, [
            scenario.schedule_repr(),
            fault_campaign.schedule_repr() if fault_campaign else "",
            grid.weather.fingerprint(),
            durations_repr,
            ",".join(f"{k}={v}" for k, v in sorted(delta.items())),
            to_prometheus_text(grid.metrics),
        ])
    )
    export_telemetry(
        grid.metrics, grid.tracelog,
        metrics_json=metrics_json, trace_chrome=trace_chrome,
        show_report=show_report,
    )
    return WeatherResult(
        seed=seed,
        campaign=campaign,
        sites=len(tspec.sites),
        files=files,
        measured=expected,
        smart_mean=smart_mean,
        static_mean=static_mean,
        smart_completed=len(smart["durations"]),
        static_completed=len(static["durations"]),
        history_selections=delta["history_selections"],
        probe_fallbacks=delta["probe_fallbacks"],
        post_history=post_delta["history_selections"],
        digests_applied=grid.weather.selection_stats()["digests_applied"],
        pushes=push_stats["pushes"],
        pushes_lost=push_stats["pushes_lost"],
        bg_launched=smart["bg_stats"]["launched"],
        bg_aborted=smart["bg_stats"]["aborted"],
        faults_injected=smart["faults_injected"],
        speedup_ok=speedup_ok,
        bounded_ok=bounded_ok,
        completion_ok=completion_ok,
        degraded_ok=degraded_ok,
        reconverged=reconverged,
        no_active_faults=(
            smart["no_active_faults"] and static["no_active_faults"]
        ),
        duration=grid.sim.now,
        wall_seconds=time.perf_counter() - wall_started,
        fingerprint=fingerprint,
        errors=tuple(errors),
    )


def report(result: WeatherResult) -> None:
    """Print the smart-vs-static verdict."""
    verdict = "CONVERGED" if result.converged else "FAILED"
    title = (
        f"EXP-WEATHER — seed {result.seed}, {result.sites} sites, "
        f"{result.measured} measured transfers"
        + (f", campaign {result.campaign}" if result.campaign else "")
        + f": {verdict}"
    )
    print_table(
        ["check", "value"],
        [
            ["smart mean completion (s)", f"{result.smart_mean:.2f}"],
            ["static mean completion (s)", f"{result.static_mean:.2f}"],
            ["improvement", f"{result.improvement:.2f}x"],
            ["completed smart/static",
             f"{result.smart_completed}/{result.static_completed}"],
            ["history selections", result.history_selections],
            ["probe fallbacks", result.probe_fallbacks],
            ["post-wave history selections", result.post_history],
            ["forecast digests applied", result.digests_applied],
            ["pushes (lost)", f"{result.pushes} ({result.pushes_lost})"],
            ["background transfers", result.bg_launched],
            ["background aborted", result.bg_aborted],
            ["faults injected", result.faults_injected],
            ["smart beat static", result.speedup_ok],
            ["degradation bounded", result.bounded_ok],
            ["all transfers completed", result.completion_ok],
            ["fallback exercised", result.degraded_ok],
            ["reconverged on history", result.reconverged],
            ["sim-time (s)", f"{result.duration:.1f}"],
            ["wall time (s)", f"{result.wall_seconds:.1f}"],
        ],
        title,
    )
    for line in result.errors:
        print(f"  !! {line}")
    print()


def main(
    files: int = 4,
    seed: int = 2001,
    campaign: str | None = None,
    metrics_json: str | None = None,
    trace_chrome: str | None = None,
    show_report: bool = False,
) -> None:
    """Run EXP-WEATHER (optionally under one fault class)."""
    if campaign and campaign not in CAMPAIGNS:
        raise SystemExit(
            f"unknown campaign {campaign!r} (one of: {', '.join(CAMPAIGNS)})"
        )
    report(run(
        files=files,
        seed=seed,
        campaign=campaign or "",
        metrics_json=metrics_json,
        trace_chrome=trace_chrome,
        show_report=show_report,
    ))
