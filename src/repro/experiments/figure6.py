"""Figure 6: the Figure 5 experiments "but with TCP buffers tuned to 1 MB.
Results are similar, except that peak performance is achieved with just 3
streams."
"""

from __future__ import annotations

from repro.experiments import figure5
from repro.netsim.calibration import TUNED_BUFFER_BYTES

__all__ = ["run", "report"]


def run(
    file_sizes_mb=figure5.FILE_SIZES_MB,
    stream_counts=figure5.STREAM_COUNTS,
    seed: int = 2001,
    repeats: int = 1,
    processes: int | None = None,
) -> dict[int, dict[int, float]]:
    """The Figure 5 sweep with 1 MiB tuned buffers."""
    return figure5.run(
        file_sizes_mb, stream_counts, buffer=TUNED_BUFFER_BYTES, seed=seed,
        repeats=repeats, processes=processes,
    )


def report(series) -> None:
    """Print the Figure 6 table."""
    figure5.report(
        series,
        title="Figure 6 — GridFTP transfer rates, TCP buffers tuned to 1 MB",
    )


def main() -> None:
    """Run and report with default parameters."""
    report(run())
