"""EXP-MSS — §4.4: stage-on-demand from the MSS before a WAN transfer."""

from repro.experiments import staging


def test_stage_on_demand(once):
    result = once(staging.run)

    # warm replica: stage wait is just the RPC round trip
    assert result.warm.stage_wait < 1.0
    # cold replica: mount + seek (45 s) + 20 MB at 15 MB/s (~1.3 s)
    assert 45.0 < result.cold.stage_wait < 60.0
    # the WAN transfer itself is unaffected by where the file came from
    assert (
        abs(result.cold.transfer_duration - result.warm.transfer_duration)
        < 0.3 * result.warm.transfer_duration
    )

    once.benchmark.extra_info.update(
        {
            "staging_penalty_s": round(result.staging_penalty, 1),
            "warm_total_s": round(result.warm.total_duration, 1),
            "cold_total_s": round(result.cold.total_duration, 1),
        }
    )
