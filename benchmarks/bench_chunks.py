"""BENCH-CHUNKS — erasure-coded chunk stack: coder cost and repair
economics.

Measures both halves of the chunk stack's durability claim:

* **coder cost** — the pure-python GF(256) Reed–Solomon coder must be
  cheap enough for the simulator's witness-sized shards and honest
  enough to report its real throughput on bulk bytes.  Encodes and
  decodes real stripes (k=4, m=2) and reports MB/s three ways: parity
  encode, worst-case decode (all parity in play), and single-member
  reconstruct (the repair path);
* **repair economics** — EXP-CHUNKS (sim) under both fault campaigns
  must *converge*: every injected damage is detected by a CKSM scrub,
  every repaired object fetches byte-identically, the claim queue
  drains clean, and — the headline — chunked repair moves fewer bytes
  than whole-file re-replication.  The recorded ``repair_savings`` on
  the ``site_wipe`` leg ((k+L)/k object-sizes vs L whole objects) is
  floor-gated by ``tools/perf_report.py --chunks``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_chunks.py [--smoke]
"""

from __future__ import annotations

import json
import time

from repro.chunks.gf256 import ReedSolomon
from repro.experiments import chunks as chunks_experiment

__all__ = ["run_bench", "main"]

SEED = 2001
K, M = 4, 2
FULL_SHARD = 1 << 18      # 256 KiB per shard, 1 MiB of data per stripe
SMOKE_SHARD = 1 << 15
FULL_STRIPES = 24
SMOKE_STRIPES = 6
#: EXP-CHUNKS legs (sim) — the experiment is already smoke-sized
EXP_OBJECTS = 4


def _stripes(count: int, width: int) -> list[list[bytes]]:
    """Deterministic non-trivial shard bytes (no RNG: a fixed byte ramp
    keyed by stripe and shard index)."""
    return [
        [
            bytes((s * 31 + d * 7 + b) & 0xFF for b in range(width))
            for d in range(K)
        ]
        for s in range(count)
    ]


def run_bench(smoke: bool = False) -> dict:
    """Measure the coder and both experiment legs."""
    width = SMOKE_SHARD if smoke else FULL_SHARD
    count = SMOKE_STRIPES if smoke else FULL_STRIPES
    rs = ReedSolomon(K, M)
    data = _stripes(count, width)
    stripe_mb = K * width / 1e6

    # ---- encode leg: parity for every stripe -------------------------
    started = time.perf_counter()
    encoded = [rs.encode_stripe(shards) for shards in data]
    encode_s = time.perf_counter() - started
    encode_mb_s = count * stripe_mb / encode_s

    # ---- decode leg: worst case, all m data losses -------------------
    # losing the first m data shards forces every surviving row through
    # the inverted submatrix (no systematic passthrough anywhere)
    started = time.perf_counter()
    for shards, stripe in zip(data, encoded):
        available = {i: stripe[i] for i in range(M, K + M)}
        assert rs.decode(available) == shards
    decode_s = time.perf_counter() - started
    decode_mb_s = count * stripe_mb / decode_s

    # ---- reconstruct leg: the repair path, one lost member -----------
    started = time.perf_counter()
    for shards, stripe in zip(data, encoded):
        available = {i: stripe[i] for i in range(1, K + M)}
        rebuilt = rs.reconstruct(available, [0])
        assert rebuilt[0] == shards[0]
    reconstruct_s = time.perf_counter() - started
    reconstruct_mb_s = count * stripe_mb / reconstruct_s

    # ---- chunk_corrupt leg: silent bit rot, scrub-detected -----------
    rot = chunks_experiment.run(
        objects=EXP_OBJECTS, seed=SEED, campaign="chunk_corrupt"
    )
    if not rot.converged:
        raise AssertionError(
            "chunk_corrupt leg did not converge: " + "; ".join(rot.errors)
        )
    if rot.faults_injected == 0:
        raise AssertionError("chunk_corrupt leg injected no faults")

    # ---- site_wipe leg: the headline durability claim ----------------
    wipe = chunks_experiment.run(
        objects=EXP_OBJECTS, seed=SEED, campaign="site_wipe"
    )
    if not wipe.converged:
        raise AssertionError(
            "site_wipe leg did not converge: " + "; ".join(wipe.errors)
        )
    if wipe.repair_savings <= 1.0:
        raise AssertionError(
            "chunked repair moved more bytes than whole-file replication"
        )

    return {
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "coder": {
            "k": K,
            "m": M,
            "shard_bytes": width,
            "stripes": count,
            "encode_mb_s": encode_mb_s,
            "decode_mb_s": decode_mb_s,
            "reconstruct_mb_s": reconstruct_mb_s,
        },
        "chunk_corrupt": {
            "campaign": "chunk_corrupt",
            "faults_injected": rot.faults_injected,
            "chunks_repaired": rot.chunks_repaired,
            "scrub_passes": rot.scrub_passes,
            "repair_savings": rot.repair_savings,
            "dedup_chunks": rot.chunks_deduped,
            "converged": rot.converged,
        },
        "site_wipe": {
            "campaign": "site_wipe",
            "faults_injected": wipe.faults_injected,
            "chunks_repaired": wipe.chunks_repaired,
            "repair_bytes": wipe.repair_bytes,
            "whole_file_bytes": wipe.whole_file_bytes,
            "repair_savings": wipe.repair_savings,
            "converged": wipe.converged,
        },
    }


def test_chunks_scale(once):
    result = once(run_bench, smoke=True)

    # order-of-magnitude guards; perf_report holds the recorded floors
    assert result["coder"]["encode_mb_s"] > 1.0
    assert result["coder"]["decode_mb_s"] > 1.0
    # the headline: chunked repair beats whole-file re-replication
    assert result["site_wipe"]["repair_savings"] > 1.0
    assert result["site_wipe"]["converged"]
    assert result["chunk_corrupt"]["converged"]

    once.benchmark.extra_info.update(
        {
            "encode_mb_s": round(result["coder"]["encode_mb_s"], 1),
            "repair_savings": round(
                result["site_wipe"]["repair_savings"], 2
            ),
        }
    )


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="shrunk shards for the CI gate")
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
