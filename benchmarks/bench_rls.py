"""BENCH-RLS — two-tier replica location at the 10M-entry / 10-site scale.

Measures the headline claim of the sharded RLS against the single-host
catalog it replaces, on real data structures at full population:

* **central leg** — one ``GdmpCatalog`` holding every entry (10M in
  full mode); measures bulk-ingest rate and single-stream ``info`` /
  ``lfn_exists`` lookup rates, then frees it;
* **sharded leg** — one *real* LRC shard at 1/site of the population
  plus a fully-populated ``ReplicaLocationIndex`` (every site's bloom
  built and applied through the actual digest wire path); measures the
  end-to-end two-tier lookup: RLI candidates, then a verify-on-use
  probe per candidate at the LRC;
* **aggregate throughput** — LRC shards are independent hosts serving
  disjoint populations, so aggregate capacity is the measured two-tier
  single-stream rate times the site count.  The recorded
  ``aggregate_speedup`` (vs the central single-stream rate at *equal
  total entry count*) must stay >= 8x at 10 sites — the acceptance
  floor, gated by ``tools/perf_report.py --rls``;
* **index quality** — measured bloom false-positive rate over LFNs the
  probed site does not hold (each one costs a wasted verify RPC), and
  the digest compression ratio against shipping exact LFN deltas;
* **convergence leg** — EXP-RLS (sim) under the ``rli_blackhole``
  campaign must converge with lookups degrading to verify-on-use, so
  the recorded rate is never bought by dropping the soft-state
  machinery.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_rls.py [--smoke]
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.catalog.gdmp_catalog import GdmpCatalog
from repro.experiments import rls as rls_experiment
from repro.rls import DigestConfig, DigestSource, ReplicaLocationIndex
from repro.rls.digest import DELTA_ITEM_SIZE, digest_wire_size

__all__ = ["run_bench", "main"]

SEED = 2001
FULL_SITES = 10
FULL_ENTRIES = 10_000_000
SMOKE_SITES = 4
SMOKE_ENTRIES = 200_000
#: sampled lookups per measured rate (enough to swamp timer noise)
FULL_SAMPLES = 200_000
SMOKE_SAMPLES = 20_000
#: ingest batch size (one publish_bulk envelope's worth)
BATCH = 10_000


def _lfn(site_idx: int, file_idx: int) -> str:
    return f"s{site_idx:02d}-{file_idx:08d}.dat"


def _site(idx: int) -> str:
    return f"site{idx:02d}"


def _file_spec(site_idx: int, file_idx: int) -> dict:
    return {
        "lfn": _lfn(site_idx, file_idx),
        "size": 1_000_000 + file_idx % 997,
        "modified": float(file_idx % 86_400),
        "crc": (site_idx * 2_654_435_761 + file_idx) & 0xFFFFFFFF,
    }


def _ingest(catalog: GdmpCatalog, site_idx: int, count: int,
            site: str | None = None) -> float:
    """Bulk-publish ``count`` files for one site; returns wall seconds."""
    site = site or _site(site_idx)
    started = time.perf_counter()
    for base in range(0, count, BATCH):
        batch = [
            _file_spec(site_idx, i)
            for i in range(base, min(base + BATCH, count))
        ]
        catalog.publish_bulk(site, batch)
    return time.perf_counter() - started


def _sample_lookups(rng, site_indices, per_site: int, samples: int):
    """Deterministic (site_idx, file_idx) lookup sample."""
    sites = rng.integers(0, len(site_indices), size=samples)
    files = rng.integers(0, per_site, size=samples)
    return [
        (site_indices[int(s)], int(f)) for s, f in zip(sites, files)
    ]


def run_bench(smoke: bool = False) -> dict:
    """Measure both legs; raise if the convergence leg fails."""
    sites = SMOKE_SITES if smoke else FULL_SITES
    entries = SMOKE_ENTRIES if smoke else FULL_ENTRIES
    samples = SMOKE_SAMPLES if smoke else FULL_SAMPLES
    per_site = entries // sites
    rng = np.random.default_rng(SEED)

    # ---- central leg: one catalog holding everything -----------------
    central = GdmpCatalog()
    central_ingest_s = 0.0
    for site_idx in range(sites):
        central_ingest_s += _ingest(central, site_idx, per_site)
    lookups = _sample_lookups(rng, list(range(sites)), per_site, samples)

    started = time.perf_counter()
    for site_idx, file_idx in lookups:
        central.info(_lfn(site_idx, file_idx))
    central_info_s = time.perf_counter() - started
    central_info_per_s = samples / central_info_s

    started = time.perf_counter()
    for site_idx, file_idx in lookups:
        central.lfn_exists(_lfn(site_idx, file_idx))
    central_exists_per_s = samples / (time.perf_counter() - started)

    del central  # free ~2 GB/M entries before building the sharded leg

    # ---- sharded leg: one real LRC + a fully-populated RLI -----------
    shard_site = _site(0)
    shard = GdmpCatalog()
    shard_ingest_s = _ingest(shard, 0, per_site)

    digest_config = DigestConfig()
    index = ReplicaLocationIndex(_site(i) for i in range(sites))
    digest_bytes = 0
    digest_build_s = 0.0
    for site_idx in range(sites):
        lfns = [_lfn(site_idx, i) for i in range(per_site)]
        source = DigestSource(_site(site_idx), lambda l=lfns: l,
                              digest_config)
        started = time.perf_counter()
        payload = source.next_digest()  # first push is always a full bloom
        applied = index.apply(payload, now=0.0)
        digest_build_s += time.perf_counter() - started
        assert applied and payload["kind"] == "full"
        digest_bytes += digest_wire_size(payload)
    # shipping the same knowledge as exact per-LFN delta items instead
    naive_delta_bytes = entries * DELTA_ITEM_SIZE

    # RLI-only candidate rate (the index tier in isolation)
    started = time.perf_counter()
    candidates_total = 0
    for site_idx, file_idx in lookups:
        candidates_total += len(
            index.candidate_sites(_lfn(site_idx, file_idx))
        )
    candidate_per_s = samples / (time.perf_counter() - started)
    # beyond the one true owner, every candidate is a false positive
    fp_rate = (candidates_total - samples) / (samples * (sites - 1))

    # End-to-end two-tier lookup: RLI candidates, then one verify probe
    # per candidate.  Every LRC is the same structure at the same
    # population, so the one real shard is the honest cost stand-in for
    # all of them: a true-owner probe pays a full ``info`` on a
    # shard-sized catalog (for foreign owners, on an equivalent resident
    # entry), a false-positive probe pays the O(1) miss path.
    started = time.perf_counter()
    verify_probes = 0
    for site_idx, file_idx in lookups:
        lfn = _lfn(site_idx, file_idx)
        owner = _site(site_idx)
        for candidate in index.candidate_sites(lfn):
            verify_probes += 1
            if candidate == owner:
                shard.info(lfn if site_idx == 0 else _lfn(0, file_idx))
            else:
                shard.lfn_exists(lfn)
    two_tier_s = time.perf_counter() - started
    two_tier_per_s = samples / two_tier_s

    # shards are independent hosts over disjoint populations: aggregate
    # capacity is per-stream rate x sites, vs the central host's single
    # stream at equal total entry count
    aggregate_per_s = two_tier_per_s * sites
    aggregate_speedup = aggregate_per_s / central_info_per_s

    del shard

    # ---- convergence leg: the soft-state machinery under fire --------
    chaos = rls_experiment.run(
        sites=sites,
        files_per_site=10 if smoke else 30,
        lookups_per_site=5 if smoke else 10,
        replicas_per_site=2 if smoke else 5,
        seed=SEED,
        campaign="rli_blackhole",
    )
    if not chaos.converged:
        raise AssertionError(
            "rli_blackhole leg did not converge: " + "; ".join(chaos.errors)
        )
    if chaos.faults_injected == 0:
        raise AssertionError("rli_blackhole leg injected no faults")
    if chaos.rli_unavailable == 0 and chaos.fallback_broadcasts == 0:
        raise AssertionError(
            "rli_blackhole leg never degraded to verify-on-use fallback"
        )

    return {
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "sites": sites,
        "entries": entries,
        "entries_per_site": per_site,
        "lookup_samples": samples,
        "central": {
            "ingest_s": central_ingest_s,
            "ingest_files_per_s": entries / central_ingest_s,
            "info_per_s": central_info_per_s,
            "exists_per_s": central_exists_per_s,
        },
        "shard": {
            "ingest_s": shard_ingest_s,
            "ingest_files_per_s": per_site / shard_ingest_s,
        },
        "rli": {
            "digest_build_s": digest_build_s,
            "digest_bytes": digest_bytes,
            "naive_delta_bytes": naive_delta_bytes,
            "digest_compression": naive_delta_bytes / digest_bytes,
            "candidate_per_s": candidate_per_s,
            "false_positive_rate": fp_rate,
            "verify_probes": verify_probes,
            "probes_per_lookup": verify_probes / samples,
        },
        "two_tier_per_s": two_tier_per_s,
        "aggregate_per_s": aggregate_per_s,
        "aggregate_speedup": aggregate_speedup,
        "chaos": {
            "campaign": "rli_blackhole",
            "faults_injected": chaos.faults_injected,
            "degraded_lookups": chaos.degraded_lookups,
            "rli_unavailable": chaos.rli_unavailable,
            "fallback_broadcasts": chaos.fallback_broadcasts,
            "pushes_lost": chaos.pushes_lost,
            "staleness_window_s": chaos.staleness_window,
            "converged": chaos.converged,
        },
    }


def test_rls_scale(once):
    result = once(run_bench, smoke=True)

    # the two-tier lookup must stay within striking distance of a direct
    # central hit: the whole design collapses if the index tier costs a
    # full extra catalog's worth of work per lookup
    assert result["two_tier_per_s"] > 0.5 * result["central"]["info_per_s"]
    # smoke runs 4 sites, so the full-mode 8x floor scales to >= 2x here
    assert result["aggregate_speedup"] >= 0.5 * result["sites"]
    # the bloom must stay near its 1% design point (order-of-magnitude
    # guard: saturation would push this towards 1.0)
    assert result["rli"]["false_positive_rate"] < 0.05
    # digests must beat shipping exact per-LFN updates
    assert result["rli"]["digest_compression"] > 5
    assert result["chaos"]["converged"]

    once.benchmark.extra_info.update(
        {
            "sites": result["sites"],
            "entries": result["entries"],
            "aggregate_speedup": round(result["aggregate_speedup"], 1),
            "two_tier_per_s": round(result["two_tier_per_s"]),
            "false_positive_rate": round(
                result["rli"]["false_positive_rate"], 4
            ),
        }
    )


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="shrunk population for the CI gate")
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
