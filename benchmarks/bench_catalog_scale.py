"""EXP-SCALE — catalog indexes, filter plans, and batched RPC envelopes.

The production-scale claims this PR makes measurable: equality searches
answered through the attribute index beat the naive full scan by ≥50x at
100k entries, and a 100-file transfer set pays ≥5x fewer catalog round
trips through ``replicate_set`` than through per-file ``replicate`` calls.

Run standalone for a quick smoke (small sizes, used by tools/ci_check.sh)::

    PYTHONPATH=src python benchmarks/bench_catalog_scale.py --smoke

or under pytest-benchmark along with the rest of the suite::

    pytest benchmarks/bench_catalog_scale.py --benchmark-only
"""

from __future__ import annotations

import argparse

from repro.experiments import catalog_scale

__all__ = ["run_bench", "main"]

#: pytest/CI sizes: big enough that the scan/index gap is unambiguous,
#: small enough to build in well under a second
SMOKE_SIZES = (2_000, 10_000)
FULL_SIZES = (10_000, 100_000)


def run_bench(smoke: bool = False) -> catalog_scale.CatalogScaleResult:
    """The experiment at CI (smoke) or record (full) sizes."""
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    return catalog_scale.run(
        sizes=sizes,
        searches=32 if smoke else 64,
        naive_searches=2 if smoke else 3,
    )


def test_catalog_scale(once):
    result = once(run_bench, smoke=True)

    for row in result.rows:
        # the index plan must beat the naive scan decisively even at small
        # populations (the gap only widens with size)
        assert row.search_speedup > 20
        # unique-key lookups stay microsecond-scale regardless of size
        assert row.lfn_lookup_s < 1e-3
    # larger catalogs must not slow the indexed path down materially
    # (O(matches), not O(population))
    small, large = result.rows[0], result.rows[-1]
    assert large.indexed_search_s < small.indexed_search_s * 20
    # batching: a 100-file replicate in a handful of envelopes, not 200
    assert result.per_file_envelopes >= 5 * result.batched_envelopes

    once.benchmark.extra_info.update(
        {
            "sizes": [row.n_files for row in result.rows],
            "search_speedups": [round(r.search_speedup, 1) for r in result.rows],
            "register_rates": [round(r.register_rate) for r in result.rows],
            "per_file_envelopes": result.per_file_envelopes,
            "batched_envelopes": result.batched_envelopes,
        }
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for the CI sanity gate")
    args = parser.parse_args(argv)
    result = run_bench(smoke=args.smoke)
    catalog_scale.report(result)
    worst = min(row.search_speedup for row in result.rows)
    if worst < 20:
        print(f"FAIL: equality-search speedup collapsed to {worst:.1f}x")
        return 1
    if result.per_file_envelopes < 5 * result.batched_envelopes:
        print(
            "FAIL: batched replicate no longer saves >=5x catalog envelopes"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
