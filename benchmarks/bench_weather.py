"""BENCH-WEATHER — the grid weather service: observation-plane cost and
selection quality.

Measures both halves of the observatory's contract:

* **observation plane cost** — the streaming estimators must be cheap
  enough to tail every transfer retirement of a production grid.  Feeds
  a :class:`~repro.observatory.station.WeatherStation` a synthetic
  retirement stream (many pairs, lognormal sizes) and measures
  observations/s ingested, forecasts/s answered, digest builds/s, and
  site-cache predictions/s — all pure wall-clock legs on the real data
  structures;
* **selection quality** — EXP-WEATHER (sim) fault-free must *converge*:
  history-blended selection beats the probe-only static leg's mean
  completion time under the diurnal congestion peak, every measured
  transfer completes, and the post-peak wave still selects on history.
  The recorded ``improvement`` (static mean / smart mean) is the
  headline number, floor-gated by ``tools/perf_report.py --weather`` —
  the gate that keeps future selection changes honest;
* **degradation leg** — EXP-WEATHER under the ``weather_blackhole``
  campaign must converge too: the black-holed weather plane forces
  probe fallbacks, stays within the bounded-degradation factor of the
  static leg, and reconverges onto history after the restore — so the
  recorded improvement is never bought by a selection policy that
  falls over when its telemetry does.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_weather.py [--smoke]
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.experiments import weather as weather_experiment
from repro.observatory.station import SiteWeather, WeatherConfig, WeatherStation

__all__ = ["run_bench", "main"]

SEED = 2001
#: synthetic observation-plane population
FULL_PAIRS = 90          # ~a 10-site grid's ordered pairs
SMOKE_PAIRS = 20
FULL_OBSERVATIONS = 400_000
SMOKE_OBSERVATIONS = 40_000
FULL_QUERIES = 200_000
SMOKE_QUERIES = 20_000
#: EXP-WEATHER legs (sim) — same shape in both modes; the experiment is
#: already smoke-sized (7 sites, 16 measured transfers per leg)
EXP_FILES = 4


class _Clock:
    """Minimal stand-in for the simulator: the station only reads .now."""

    def __init__(self):
        self.now = 0.0


def _synth_observations(rng, pairs: int, count: int):
    """A deterministic synthetic retirement stream: (pair_idx, size,
    duration, ok) tuples with lognormal sizes and plausible rates."""
    pair_idx = rng.integers(0, pairs, size=count)
    sizes = rng.lognormal(mean=17.0, sigma=1.5, size=count)  # ~25 MB median
    rates = rng.lognormal(mean=16.0, sigma=0.7, size=count)  # ~9 MB/s median
    ok = rng.random(size=count) > 0.02
    return pair_idx, sizes, sizes / rates, ok


def run_bench(smoke: bool = False) -> dict:
    """Measure the observation plane and both experiment legs."""
    pairs = SMOKE_PAIRS if smoke else FULL_PAIRS
    observations = SMOKE_OBSERVATIONS if smoke else FULL_OBSERVATIONS
    queries = SMOKE_QUERIES if smoke else FULL_QUERIES
    rng = np.random.default_rng(SEED)

    n_sites = 2
    while n_sites * (n_sites - 1) < pairs:
        n_sites += 1
    sites = [f"site{i:02d}" for i in range(n_sites)]
    pair_names = [
        (a, b) for a in sites for b in sites if a != b
    ][:pairs]

    # ---- ingest leg: fold a retirement stream into pair histories ----
    clock = _Clock()
    config = WeatherConfig()
    station = WeatherStation(config, clock, topology=None)
    pair_idx, sizes, durations, ok = _synth_observations(
        rng, pairs, observations
    )
    started = time.perf_counter()
    for n in range(observations):
        t = n * 0.01
        src, dst = pair_names[int(pair_idx[n])]
        station.on_transfer(
            src, dst, float(sizes[n]),
            started_at=t, completed_at=t + float(durations[n]),
            ok=bool(ok[n]),
        )
    ingest_s = time.perf_counter() - started
    observations_per_s = observations / ingest_s
    clock.now = observations * 0.01

    # ---- forecast leg: station-side queries over the hot histories --
    q_pairs = rng.integers(0, pairs, size=queries)
    q_sizes = rng.lognormal(mean=17.0, sigma=1.5, size=queries)
    started = time.perf_counter()
    answered = 0
    for n in range(queries):
        src, dst = pair_names[int(q_pairs[n])]
        if station.forecast(src, dst, float(q_sizes[n])) is not None:
            answered += 1
    forecasts_per_s = queries / (time.perf_counter() - started)

    # ---- digest leg: build every subscriber's digest, then measure the
    #      site-cache prediction rate (the synchronous ranking path)
    started = time.perf_counter()
    digests = {
        site: station.digest_for(site, clock.now) for site in sites
    }
    digest_build_s = time.perf_counter() - started
    digests_per_s = len(sites) / digest_build_s

    dst0 = max(
        sites, key=lambda s: len(digests[s]["sources"])
    )
    cache = SiteWeather(dst0, config, clock)
    assert cache.apply_digest(digests[dst0])
    cache_sources = sorted(digests[dst0]["sources"])
    started = time.perf_counter()
    predicted = 0
    for n in range(queries):
        src = cache_sources[int(q_pairs[n]) % len(cache_sources)]
        if cache.predict(src, dst0, float(q_sizes[n])) is not None:
            predicted += 1
    predictions_per_s = queries / (time.perf_counter() - started)

    # ---- selection-quality leg: EXP-WEATHER fault-free ---------------
    clean = weather_experiment.run(files=EXP_FILES, seed=SEED)
    if not clean.converged:
        raise AssertionError(
            "fault-free leg did not converge: " + "; ".join(clean.errors)
        )

    # ---- degradation leg: the weather plane black-holed --------------
    chaos = weather_experiment.run(
        files=EXP_FILES, seed=SEED, campaign="weather_blackhole"
    )
    if not chaos.converged:
        raise AssertionError(
            "weather_blackhole leg did not converge: "
            + "; ".join(chaos.errors)
        )
    if chaos.faults_injected == 0:
        raise AssertionError("weather_blackhole leg injected no faults")
    if chaos.probe_fallbacks == 0:
        raise AssertionError(
            "black-holed weather plane never forced a probe fallback"
        )

    return {
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "station": {
            "pairs": pairs,
            "observations": observations,
            "ingest_s": ingest_s,
            "observations_per_s": observations_per_s,
            "forecasts_per_s": forecasts_per_s,
            "forecasts_answered": answered,
            "digests_per_s": digests_per_s,
            "predictions_per_s": predictions_per_s,
            "predictions_answered": predicted,
        },
        "selection": {
            "measured_transfers": clean.measured,
            "smart_mean_s": clean.smart_mean,
            "static_mean_s": clean.static_mean,
            "improvement": clean.improvement,
            "history_selections": clean.history_selections,
            "probe_fallbacks": clean.probe_fallbacks,
            "digests_applied": clean.digests_applied,
            "pushes": clean.pushes,
            "converged": clean.converged,
        },
        "chaos": {
            "campaign": "weather_blackhole",
            "faults_injected": chaos.faults_injected,
            "improvement": chaos.improvement,
            "probe_fallbacks": chaos.probe_fallbacks,
            "history_selections": chaos.history_selections,
            "post_history": chaos.post_history,
            "converged": chaos.converged,
        },
    }


def test_weather_scale(once):
    result = once(run_bench, smoke=True)

    # the observation plane must be cheap enough to tail every transfer
    # retirement (order-of-magnitude guards; perf_report holds the
    # recorded floors)
    assert result["station"]["observations_per_s"] > 10_000
    assert result["station"]["predictions_per_s"] > 10_000
    # the headline: history-blended selection beat the probe ladder
    assert result["selection"]["improvement"] > 1.0
    assert result["selection"]["converged"]
    # and the recorded improvement survives its telemetry dying
    assert result["chaos"]["converged"]
    assert result["chaos"]["probe_fallbacks"] > 0

    once.benchmark.extra_info.update(
        {
            "improvement": round(result["selection"]["improvement"], 2),
            "observations_per_s": round(
                result["station"]["observations_per_s"]
            ),
            "chaos_improvement": round(result["chaos"]["improvement"], 2),
        }
    )


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="shrunk observation stream for the CI gate")
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
