"""EXP-F6 — Figure 6: the same sweep with 1 MB tuned buffers.

Paper shape: "Results are similar, except that peak performance is
achieved with just 3 streams."
"""

from repro.experiments import figure6


def test_figure6(once):
    series = once(figure6.run)

    for size in (25, 50, 100):
        curve = series[size]
        plateau = max(curve.values())
        assert 20 < plateau < 27
        # peak reached already at ~3 streams (within measurement noise)
        assert curve[3] >= 0.88 * plateau
        # a single tuned stream is already a large fraction of the peak
        assert curve[1] > 0.6 * plateau
        # extra streams past 3 buy little
        assert curve[9] < curve[3] * 1.1

    # 1 MB transfers remain setup/slow-start dominated even when tuned
    assert max(series[1].values()) < 12

    once.benchmark.extra_info.update(
        {
            "paper_peak_streams": 3,
            "measured_100mb_at_3_streams_mbps": round(series[100][3], 2),
            "measured_100mb_at_1_stream_mbps": round(series[100][1], 2),
        }
    )
