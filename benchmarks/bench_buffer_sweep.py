"""EXP-BDP — §6: optimal TCP buffer = RTT x (speed of bottleneck link),
with RTT from ping and the bottleneck from pipechar."""

from repro.experiments import buffer_sweep
from repro.netsim.units import KiB


def test_buffer_formula(once):
    sweep = once(buffer_sweep.run)

    # the formula's prediction from the measured path: ~381 KiB
    assert 300 * KiB < sweep.formula_buffer < 500 * KiB
    # the measured sweep peaks within a factor 2 of the prediction
    assert sweep.formula_buffer / 2 <= sweep.best_buffer <= sweep.formula_buffer * 2
    # too-small buffers never open the window: 16 KiB is crippled
    assert sweep.rates[16 * KiB] < 0.25 * sweep.rates[sweep.best_buffer]
    # past the BDP the curve flattens (loss-limited, not window-limited)
    big = [rate for buf, rate in sweep.rates.items() if buf >= 1024 * KiB]
    assert max(big) - min(big) < 0.15 * max(big)

    once.benchmark.extra_info.update(
        {
            "formula_buffer_kib": sweep.formula_buffer // KiB,
            "best_measured_buffer_kib": sweep.best_buffer // KiB,
            "rate_at_best_mbps": round(sweep.rates[sweep.best_buffer], 2),
        }
    )
