"""EXP-OBJ1b — placement ablation: smart clustering helps file replication
only for placement-correlated selections, never for the fresh random
selections of late-stage analysis (§5.1)."""

from repro.experiments import clustering


def test_clustering_ablation(once):
    result = once(clustering.run)

    lucky = result.case("sequential", "contiguous")
    fresh = result.case("sequential", "random")
    unclustered = result.case("random", "random")

    # placement-correlated selection: clustering rescues file replication
    assert lucky.efficiency > 0.5
    assert lucky.bytes_moved < 0.1 * fresh.bytes_moved
    # a fresh random selection defeats clustering entirely: same cost as
    # no clustering at all ("can raise the probability, but not by much")
    assert abs(fresh.bytes_moved - unclustered.bytes_moved) < 0.05 * fresh.bytes_moved
    assert fresh.efficiency < 0.1
    # object replication is placement-independent and tiny
    assert result.object_bytes < 0.05 * fresh.bytes_moved

    once.benchmark.extra_info.update(
        {
            "lucky_case_mb": round(lucky.bytes_moved / 1e6, 1),
            "fresh_case_mb": round(fresh.bytes_moved / 1e6, 1),
            "object_mb": round(result.object_bytes / 1e6, 1),
        }
    )
