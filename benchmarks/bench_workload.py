"""BENCH-WORKLOAD — sustained request throughput of the claim-based
standing pipeline (EXP-WORKLOAD).

Drives the full workload engine — open-loop arrival generator, per-VO
fair-share admission, token-bucket rate limiter, and the standing
picker → bundler → replicator → verifier components claiming from the
``task.*`` queue on the service bus — through one million generated
requests (full mode) and records the sustained wall-clock request rate.

The scale discipline under measurement: arrivals are admitted as counts
(Poisson per VO, one multinomial over the destination x file grid per
tick), picks carry multiplicity maps, and keyed submission coalesces
duplicate transfer obligations, so a million requests cost hundreds of
queue envelopes rather than millions.  The headline metric collapses by
orders of magnitude if any of those layers degrades to per-request work.

A chaos leg re-runs the pipeline at a smaller request count under the
``component_crash`` campaign and asserts exactly-once convergence (all
tasks terminal, CRCs intact, no leaked claims), so the recorded rate is
never bought by dropping the recovery machinery.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_workload.py [--smoke]
"""

from __future__ import annotations

import json

from repro.experiments import workload

__all__ = ["run_bench", "main"]

SEED = 2001
FULL_REQUESTS = 1_000_000
SMOKE_REQUESTS = 100_000
#: the chaos leg verifies recovery, not throughput: keep it small
FULL_CHAOS_REQUESTS = 100_000
SMOKE_CHAOS_REQUESTS = 20_000


def run_bench(smoke: bool = False) -> dict:
    """Run the throughput and chaos legs; raise on any non-convergence."""
    requests = SMOKE_REQUESTS if smoke else FULL_REQUESTS
    result = workload.run(requests=requests, seed=SEED)
    if not result.converged:
        raise AssertionError(
            "workload run did not converge: " + "; ".join(result.errors)
        )

    chaos_requests = SMOKE_CHAOS_REQUESTS if smoke else FULL_CHAOS_REQUESTS
    chaos = workload.run(
        requests=chaos_requests, seed=SEED, campaign="component_crash"
    )
    if not chaos.converged:
        raise AssertionError(
            "chaos leg did not converge: " + "; ".join(chaos.errors)
        )
    if chaos.component_crashes == 0:
        raise AssertionError("chaos leg injected no component crashes")

    return {
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "requests": result.requests,
        "admitted": result.admitted,
        "queue_tasks": result.tasks,
        "coalesced": result.coalesced,
        "sim_duration_s": result.duration,
        "wall_s": result.wall_seconds,
        "requests_per_s": result.requests_per_second,
        "chaos": {
            "campaign": "component_crash",
            "requests": chaos.requests,
            "faults_injected": chaos.faults_injected,
            "component_crashes": chaos.component_crashes,
            "expired_leases": chaos.expired_leases,
            "converged": chaos.converged,
        },
    }


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="shrunk request counts for the CI gate")
    args = parser.parse_args(argv)
    report = run_bench(smoke=args.smoke)
    print(json.dumps(report, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
