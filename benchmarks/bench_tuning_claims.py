"""EXP-T1/T2/T3 — the §6 tuning conclusions.

T1: 2-3 tuned streams match 10 untuned streams.
T2: 2-3 tuned streams gain ~25% over a single tuned stream.
T3: enough untuned streams reach tuned throughput.
"""

from repro.experiments import tuning_claims


def test_tuning_claims(once):
    claims = once(tuning_claims.run)

    # T1 (paper: 2-3)
    assert 2 <= claims.tuned_streams_matching_10_untuned <= 4
    # T2 (paper: +25%)
    assert 0.10 < claims.tuned_multi_stream_gain < 0.45
    # T3 (paper: parity)
    assert claims.untuned_reaches_tuned > 0.90

    # and the headline: buffer tuning is the single most important factor —
    # a tuned single stream beats an untuned one by a large factor
    assert claims.tuned[1] > 3.5 * claims.untuned[1]

    once.benchmark.extra_info.update(
        {
            "T1_paper": "2-3 streams",
            "T1_measured_streams": claims.tuned_streams_matching_10_untuned,
            "T2_paper_gain": 0.25,
            "T2_measured_gain": round(claims.tuned_multi_stream_gain, 3),
            "T3_measured_parity": round(claims.untuned_reaches_tuned, 3),
        }
    )
