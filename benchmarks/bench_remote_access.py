"""EXP-AMS — §2.1/§5.2 rationale: wide-area object-granularity access is
latency-bound and loses badly to replicate-then-read; the same protocol is
fine on the LAN it was designed for."""

from repro.experiments import remote_access


def test_remote_access_vs_replication(once):
    result = once(remote_access.run)

    # "large wide-area overheads have been observed": remote access over
    # the 125 ms WAN is many times slower than replicating first
    assert result.wan_penalty_vs_replication > 5
    # the persistency layer's design assumption holds on a LAN
    assert result.lan_remote_access_s < 0.2 * result.wan_remote_access_s
    assert result.lan_remote_access_s < result.replicate_then_read_s

    once.benchmark.extra_info.update(
        {
            "wan_remote_s": round(result.wan_remote_access_s, 1),
            "lan_remote_s": round(result.lan_remote_access_s, 2),
            "replicate_then_read_s": round(result.replicate_then_read_s, 2),
            "wan_penalty": round(result.wan_penalty_vs_replication, 1),
        }
    )
