"""EXP-IDX — §5.2 scalability of the global object view.

"An important future challenge is to demonstrate scalability of this
global view to a huge numbers of objects [HoSt00].  ...  it is possible to
structure most data-intensive HEP applications in such a way that each
application run specifies up front exactly which set of objects are
needed.  These objects can then be found in one single collective lookup
operation on the global view."

Unlike the simulation benches, this one measures real harness performance
(pytest-benchmark's home turf): collective lookups against a large index.
"""

import pytest

from repro.objectdb.oid import OID
from repro.objectrep import GlobalObjectIndex

INDEX_SIZE = 200_000
LOOKUP_KEYS = 10_000


def build_index(n: int) -> GlobalObjectIndex:
    index = GlobalObjectIndex()
    for i in range(n):
        index.record(f"{i}/aod", "cern", f"f{i // 1000}.db",
                     OID(i // 1000 + 1, 0, i % 1000))
    return index


@pytest.fixture(scope="module")
def big_index():
    return build_index(INDEX_SIZE)


def test_collective_lookup_scales(benchmark, big_index):
    keys = [f"{i}/aod" for i in range(0, INDEX_SIZE, INDEX_SIZE // LOOKUP_KEYS)]

    result = benchmark(big_index.locate_many, keys)

    assert len(result) == len(keys)
    assert all(copies for copies in result.values())
    # one collective call, not one per key
    benchmark.extra_info.update(
        {
            "index_entries": INDEX_SIZE,
            "keys_per_lookup": len(keys),
        }
    )


def test_missing_at_scales(benchmark, big_index):
    keys = [f"{i}/aod" for i in range(0, 2 * LOOKUP_KEYS)]

    missing = benchmark(big_index.missing_at, "anl", keys)

    # nothing is at anl yet: everything known is "missing there"
    assert len(missing) == len(keys)


def test_serialization_round_trip_scales(benchmark):
    index = build_index(20_000)

    def round_trip():
        return GlobalObjectIndex.from_index_payload(index.to_index_payload())

    clone = benchmark(round_trip)
    assert len(clone) == len(index)
