"""EXP-CAT — §4.2: one central replica catalog on a single LDAP server;
every non-co-located site pays a WAN round trip per catalog operation."""

from repro.experiments import catalog_bench


def test_catalog_latency(once):
    result = once(catalog_bench.run)

    # local publishing is millisecond-scale
    assert result.local_publish < 0.02
    # remote operations are dominated by the 125 ms RTT
    assert 0.1 < result.remote_publish < 0.5
    assert 0.1 < result.remote_lookup < 0.3
    # the WAN penalty that motivates distributing the catalog (future work)
    assert result.remote_publish / result.local_publish > 10

    once.benchmark.extra_info.update(
        {
            "local_publish_ms": round(result.local_publish * 1000, 2),
            "remote_publish_ms": round(result.remote_publish * 1000, 2),
            "wan_penalty": round(result.remote_publish / result.local_publish, 1),
        }
    )
