"""EXP-CR — catalog distribution/replication (§4.2 future work) ablation."""

from repro.experiments import catalog_replication_bench


def test_catalog_replication(once):
    result = once(catalog_replication_bench.run)

    # a local replica turns the 1-RTT WAN read into a local lookup
    assert result.central_read > 0.12
    assert result.replicated_read < 0.01
    assert result.read_speedup > 15
    # writes still pay the trip to the primary
    assert result.replicated_write > 0.12
    # eventual consistency: convergence within ~2 propagation delays
    assert 0.0 < result.staleness_window < 0.3

    once.benchmark.extra_info.update(
        {
            "central_read_ms": round(result.central_read * 1000, 1),
            "replicated_read_ms": round(result.replicated_read * 1000, 2),
            "read_speedup": round(result.read_speedup),
            "staleness_ms": round(result.staleness_window * 1000),
        }
    )
