"""EXP-OBJ1 — §5.1: sparse selections make object replication the only
efficient option; the strategies converge only for dense selections."""

from repro.experiments import object_vs_file


def by_fraction(result, target):
    return min(
        result.comparisons,
        key=lambda c: abs(c.selection_fraction - target),
    )


def test_object_vs_file(once):
    result = once(object_vs_file.run)

    sparse = by_fraction(result, 0.001)
    mid = by_fraction(result, 0.01)
    dense = by_fraction(result, 1.0)

    # paper's example regime: object replication wins by orders of magnitude
    assert sparse.winner == "object"
    assert sparse.ratio > 100
    assert mid.ratio > 20
    # "the a priori probability that any existing file happens to contain
    # more than 50% of the selected objects is extremely low"
    assert sparse.majority_probability < 1e-50
    # object replication ships almost only useful bytes
    assert sparse.object_strategy.efficiency > 0.9
    # at full selection the existing files are exactly right: file wins
    assert dense.winner == "file"
    # the crossover sits at a genuinely dense selection
    assert result.crossover_fraction > 0.5

    once.benchmark.extra_info.update(
        {
            "ratio_at_0.1pct": round(sparse.ratio, 1),
            "ratio_at_1pct": round(mid.ratio, 1),
            "crossover_fraction": result.crossover_fraction,
        }
    )
