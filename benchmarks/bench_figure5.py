"""EXP-F5 — Figure 5: transfer rate vs parallel streams, untuned buffers.

Paper shape: the 25/50/100 MB curves rise almost linearly with stream
count and plateau around 23 Mbps; the 1 MB curve stays far below (slow
start + per-transfer setup).
"""

from repro.experiments import figure5


def test_figure5(once):
    series = once(figure5.run)

    for size in (25, 50, 100):
        curve = series[size]
        # near-linear scaling while window-limited
        assert 1.7 < curve[2] / curve[1] < 2.2
        assert 2.5 < curve[3] / curve[1] < 3.3
        # the paper's ~23 Mbps plateau at high stream counts
        plateau = max(curve.values())
        assert 20 < plateau < 27
        assert curve[9] > 5 * curve[1]  # parallelism is a big win untuned
        # no further gain once the available bandwidth is saturated
        assert curve[10] < plateau * 1.05

    # the 1 MB curve is the lowest everywhere
    for streams in series[1]:
        assert series[1][streams] < series[25][streams]
    assert max(series[1].values()) < 12

    once.benchmark.extra_info.update(
        {
            "paper_peak_mbps": 23,
            "measured_peak_100mb_mbps": round(max(series[100].values()), 2),
            "measured_single_stream_100mb_mbps": round(series[100][1], 2),
        }
    )
