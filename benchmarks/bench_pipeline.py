"""EXP-OBJ2 — §5.2: "Object copying and file transport operations are
pipelined to achieve a better response time and greater efficiency."."""

from repro.experiments import pipeline


def test_pipelining_speedup(once):
    result = once(pipeline.run)

    # pipelining overlaps copier time with WAN time: a real speedup
    assert result.speedup > 1.3
    # but never better than fully hiding one of the two phases
    assert result.speedup < 2.6
    assert result.pipelined_time < result.sequential_time

    once.benchmark.extra_info.update(
        {
            "sequential_s": round(result.sequential_time, 2),
            "pipelined_s": round(result.pipelined_time, 2),
            "speedup": round(result.speedup, 2),
        }
    )
