"""EXP-ABL1 — architecture ablation: GDMP 2.0 vs the GDMP 1.2 baseline.

Quantifies what the paper's second-generation architecture buys over the
Objectivity-only, single-stream, no-restart, no-CRC first generation.
"""

from repro.experiments import legacy_comparison


def test_gdmp2_vs_gdmp12(once):
    result = once(legacy_comparison.run)

    # tuned parallel GridFTP vs one untuned FTP stream: ~4-6x
    assert result.clean_speedup > 3.0
    # restart markers retransmit only the missing tail; 1.2 resends it all
    assert result.failure_v2_wire_mb < 1.1 * result.size_mb
    assert result.failure_v12_wire_mb > 1.6 * result.size_mb
    # the CRC check is the difference between a correct replica and a
    # silently corrupted one
    assert result.corruption_detected_v2
    assert not result.corruption_detected_v12

    once.benchmark.extra_info.update(
        {
            "clean_speedup": round(result.clean_speedup, 1),
            "failure_waste_ratio": round(result.failure_waste_ratio, 2),
        }
    )
