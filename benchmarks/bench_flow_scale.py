"""BENCH-FLOW-SCALE — the 10k-flow / 1k-link flow-table scenario.

A grid of independent *link islands* — disjoint src -> mid -> dst chains
whose second hop is the bottleneck — each carrying one parallel transfer
of ``flows_per_island`` streams.  At full size that is 500 islands, 1000
links and 10 000 concurrent flows, all advanced by one engine: the regime
the struct-of-arrays flow table and the vectorized tick kernel exist for.

The scenario deliberately mixes regimes:

* every island's bottleneck link is oversubscribed, so ticks run the full
  congestion/queue/overflow machinery (no stretching);
* a fifth of the islands add a tiny random per-packet loss rate, so the
  batched loss-draw pass stays on the hot path;
* transfer sizes cycle over ten groups, so pools retire in ~10 clustered
  waves, exercising incremental flow-table rebuilds at scale.

The headline metric is the **per-flow tick rate**: flow-tick work units
(``engine.flow_tick_count``) per wall second.  It is compared against the
same metric for the 4-stream clean microbench path
(``bench_engine_microbench.run_stretch_scenario`` topology); the
acceptance bar is staying within 10x of it despite running 10k coupled
flows through full (unstretchable) ticks.  Run standalone::

    PYTHONPATH=src python benchmarks/bench_flow_scale.py [--smoke]

``run_islands_parallel`` additionally demonstrates island-partitioned
execution: each island is simulated by its own engine (seeded per island)
and islands are packed across worker processes with
:func:`repro.experiments.parallel.run_weighted` using ``LinkIsland``
weights.  Per-island results are deterministic for a given spec, but the
loss-RNG interleaving differs from the monolithic run (one shared stream
vs one stream per island), so the variant reports its own fingerprint
rather than being compared byte-for-byte against the monolithic engine.
"""

from __future__ import annotations

import json
import time

from repro.experiments.parallel import run_weighted
from repro.netsim import TcpParams
from repro.netsim.engine import NetworkEngine
from repro.netsim.link import Link
from repro.netsim.topology import Host, Topology
from repro.netsim.units import KiB, MB, mbps
from repro.simulation import Simulator

__all__ = [
    "island_specs",
    "build_scenario",
    "run_flow_scale",
    "run_clean_reference",
    "run_islands_parallel",
    "run_bench",
    "main",
]

#: transfer sizes cycle over this many groups so retirements cluster
#: into distinct waves instead of one per pool
SIZE_GROUPS = 10
#: islands with index % LOSSY_EVERY == 0 get a lossy bottleneck link
LOSSY_EVERY = 5
#: tiny enough that loss events stay rare (the *draw* cost is what the
#: benchmark must keep on the hot path, not recovery dynamics)
LOSS_RATE = 1e-6


def island_specs(n_islands: int, flows_per_island: int,
                 base_size_mb: int) -> list[dict]:
    """Deterministic per-island parameters for a scenario size."""
    specs = []
    for i in range(n_islands):
        specs.append({
            "index": i,
            "flows": flows_per_island,
            "size_mb": base_size_mb + 20 * (i % SIZE_GROUPS),
            "lossy": i % LOSSY_EVERY == 0,
        })
    return specs


def _add_island(topo: Topology, spec: dict) -> tuple[str, str]:
    """Two-hop chain: a fat clean first hop into a congested bottleneck."""
    i = spec["index"]
    src, mid, dst = f"src{i}", f"mid{i}", f"dst{i}"
    topo.add_host(Host(src))
    topo.add_host(Host(mid))
    topo.add_host(Host(dst))
    topo.connect(src, mid, Link(
        f"l{i}a", capacity=mbps(1000), delay=0.004,
    ))
    # aggregate clamped demand (flows x 64 KiB / 16 ms ~ 80 MB/s for 20
    # flows) oversubscribes this hop, so queues build and ticks stay full
    topo.connect(mid, dst, Link(
        f"l{i}b", capacity=mbps(400), delay=0.004,
        loss_rate=LOSS_RATE if spec["lossy"] else 0.0,
    ))
    return src, dst


def build_scenario(
    specs: list[dict], seed: int = 2001, kernel: str | None = None,
) -> tuple[Simulator, NetworkEngine, list]:
    """One engine advancing every island's transfer concurrently."""
    sim = Simulator()
    topo = Topology()
    endpoints = [_add_island(topo, spec) for spec in specs]
    engine = NetworkEngine(sim, topo, seed=seed, kernel=kernel)
    pools = []
    for spec, (src, dst) in zip(specs, endpoints):
        pools.append(engine.open_transfer(
            src, dst, nbytes=spec["size_mb"] * MB,
            streams=spec["flows"], tcp=TcpParams(buffer=64 * KiB),
            name=f"island{spec['index']}",
        ))
    return sim, engine, pools


def run_flow_scale(
    n_islands: int = 500,
    flows_per_island: int = 20,
    base_size_mb: int = 60,
    seed: int = 2001,
    kernel: str | None = None,
) -> dict:
    """The monolithic scenario: one engine, every island, wall-clocked."""
    specs = island_specs(n_islands, flows_per_island, base_size_mb)
    sim, engine, pools = build_scenario(specs, seed=seed, kernel=kernel)
    n_islands_seen = len(engine.islands())
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    for pool in pools:
        assert pool.done.ok, "every transfer must complete"
    flow_ticks = engine.flow_tick_count
    return {
        "scenario": "flow_scale",
        "kernel": engine.kernel,
        "n_islands": n_islands_seen,
        "n_flows": n_islands * flows_per_island,
        "n_links": 2 * n_islands,
        "sim_s": sim.now,
        "wall_s": wall,
        "executed_ticks": engine.tick_count,
        "settled_ticks": engine.settled_tick_count,
        "flow_ticks": flow_ticks,
        "flow_ticks_per_s": flow_ticks / wall,
    }


def run_clean_reference(streams: int = 4, size_mb: int = 2000) -> dict:
    """Per-flow tick rate of the 4-stream clean microbench topology.

    Same topology and parameters as
    ``bench_engine_microbench.run_stretch_scenario``, re-run here to read
    ``flow_tick_count`` (the microbench reports only tick totals)."""
    sim = Simulator()
    topo = Topology()
    topo.add_host(Host("a"))
    topo.add_host(Host("b"))
    topo.connect("a", "b", Link("ab", capacity=mbps(1000), delay=0.004))
    engine = NetworkEngine(sim, topo, seed=7)
    start = time.perf_counter()
    pool = engine.open_transfer(
        "a", "b", nbytes=size_mb * MB, streams=streams,
        tcp=TcpParams(buffer=128 * KiB),
    )
    sim.run(until=pool.done)
    wall = time.perf_counter() - start
    flow_ticks = engine.flow_tick_count
    return {
        "scenario": "clean_reference",
        "kernel": engine.kernel,
        "streams": streams,
        "wall_s": wall,
        "flow_ticks": flow_ticks,
        "flow_ticks_per_s": flow_ticks / wall,
    }


def _run_island(spec: dict) -> dict:
    """Worker: simulate one island on its own engine (picklable)."""
    sim, engine, pools = build_scenario(
        [dict(spec, index=0)], seed=2001 + spec["index"],
    )
    sim.run()
    return {
        "index": spec["index"],
        "sim_s": sim.now,
        "flow_ticks": engine.flow_tick_count,
        "delivered": sum(pool.delivered for pool in pools),
    }


def run_islands_parallel(
    n_islands: int = 500,
    flows_per_island: int = 20,
    base_size_mb: int = 60,
    processes: int | None = None,
) -> dict:
    """Island-partitioned execution across worker processes.

    Uses the monolithic engine's :class:`LinkIsland` partition for the
    scheduling weights, then runs each island on a dedicated engine via
    :func:`run_weighted` (LPT packing, deterministic assignment)."""
    specs = island_specs(n_islands, flows_per_island, base_size_mb)
    _, engine, _ = build_scenario(specs)
    weights = [island.weight for island in engine.islands()]
    start = time.perf_counter()
    results = run_weighted(_run_island, specs, weights, processes=processes)
    wall = time.perf_counter() - start
    flow_ticks = sum(r["flow_ticks"] for r in results)
    return {
        "scenario": "flow_scale_parallel",
        "n_islands": n_islands,
        "n_flows": n_islands * flows_per_island,
        "wall_s": wall,
        "flow_ticks": flow_ticks,
        "flow_ticks_per_s": flow_ticks / wall,
        # order-independent determinism fingerprint of the island results
        "sim_s_total": sum(r["sim_s"] for r in results),
        "delivered_total": sum(r["delivered"] for r in results),
    }


def run_bench(smoke: bool = False, parallel: bool = False) -> dict:
    """The record ``tools/perf_report.py --flow-scale`` persists."""
    if smoke:
        # keep flows_per_island at 20: fewer streams would drop aggregate
        # demand below the bottleneck and the scenario would stretch
        scale = run_flow_scale(
            n_islands=20, flows_per_island=20, base_size_mb=20,
        )
        clean = run_clean_reference(size_mb=200)
    else:
        scale = run_flow_scale()
        clean = run_clean_reference()
    report = {
        "mode": "smoke" if smoke else "full",
        "flow_scale": scale,
        "clean_reference": clean,
        # the acceptance ratio: 10k coupled flows through full ticks vs 4
        # stretch-settled streams; must stay above 0.1 (within 10x)
        "per_flow_ratio": (
            scale["flow_ticks_per_s"] / clean["flow_ticks_per_s"]
        ),
    }
    if parallel:
        report["parallel"] = run_islands_parallel(
            n_islands=20 if smoke else 500,
            flows_per_island=20,
            base_size_mb=20 if smoke else 60,
        )
    return report


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for a fast sanity run")
    parser.add_argument("--parallel", action="store_true",
                        help="also run the island-partitioned variant")
    args = parser.parse_args(argv)
    print(json.dumps(run_bench(smoke=args.smoke, parallel=args.parallel),
                     indent=2))


if __name__ == "__main__":
    main()
