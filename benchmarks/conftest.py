"""Benchmark-suite conventions.

Every bench regenerates one figure/table of the paper (see the EXP-* index
in DESIGN.md), asserts the paper's *shape* (who wins, by what factor, where
crossovers fall), and records the key paper-vs-measured numbers in
``benchmark.extra_info`` so the saved benchmark JSON doubles as the
reproduction record.

Run with:  pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the (simulation-heavy) experiment exactly once under timing.

    pytest-benchmark's auto-calibration would re-run multi-second
    simulations dozens of times; one round per bench keeps the suite fast
    while still timing the harness.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    run.benchmark = benchmark
    return run
