"""BENCH-ENGINE — flow-engine hot-path microbenchmarks.

Two scenarios bracket the tick loop's regimes:

* **lossy/congested** — the §6 CERN-ANL testbed (random loss, cross
  traffic, queue evolution): every tick runs the full contention, loss
  and window machinery.  This is the regime Figures 5/6 live in.
* **clean/stretched** — a loss-free LAN-like path where, once windows hit
  the buffer clamp, the adaptive tick-stretching fast path settles almost
  every fine tick analytically instead of executing it.

Each scenario reports wall-clock, fine ticks (executed + analytically
settled), and ticks/second.  Run standalone for the JSON record::

    PYTHONPATH=src python benchmarks/bench_engine_microbench.py [--smoke]

or under pytest-benchmark along with the rest of the suite::

    pytest benchmarks/bench_engine_microbench.py --benchmark-only
"""

from __future__ import annotations

import json
import time

from repro.experiments.testbed import extended_get, gridftp_testbed
from repro.netsim import TcpParams
from repro.netsim.calibration import TestbedParams
from repro.netsim.engine import NetworkEngine
from repro.netsim.link import Link
from repro.netsim.topology import Host, Topology
from repro.netsim.units import KiB, MB, mbps

__all__ = ["run_lossy_scenario", "run_stretch_scenario", "run_all", "main"]


def run_lossy_scenario(
    size_mb: int = 100, streams: int = 9, buffer: int = 64 * KiB,
    repeats: int = 3, seed: int = 2001,
) -> dict:
    """Repeated GridFTP fetches on the lossy §6 testbed."""
    ticks = 0
    rate = 0.0
    start = time.perf_counter()
    for repeat in range(repeats):
        testbed = gridftp_testbed(TestbedParams(seed=seed + repeat))
        rate = extended_get(testbed, size_mb * MB, streams, buffer)
        ticks += testbed.engine.tick_count + testbed.engine.settled_tick_count
    wall = time.perf_counter() - start
    return {
        "scenario": "lossy_testbed",
        "size_mb": size_mb,
        "streams": streams,
        "buffer": buffer,
        "repeats": repeats,
        "wall_s": wall,
        "ticks": ticks,
        "ticks_per_s": ticks / wall,
        "last_rate_mbps": rate,
    }


def _clean_engine(adaptive: bool) -> tuple:
    from repro.simulation import Simulator

    sim = Simulator()
    topo = Topology()
    topo.add_host(Host("a"))
    topo.add_host(Host("b"))
    topo.connect("a", "b", Link("ab", capacity=mbps(1000), delay=0.004))
    engine = NetworkEngine(sim, topo, seed=7, adaptive_ticks=adaptive)
    return sim, engine


def run_stretch_scenario(
    size_mb: int = 2000, streams: int = 4, adaptive: bool = True,
) -> dict:
    """A large transfer on a loss-free path (stretch-eligible dynamics).

    The aggregate clamped demand (streams x buffer / RTT ~ 524 Mbps) stays
    below the 1 Gbps link, so after slow start every tick is quiet with
    buffer-clamped windows — exactly the stretch preconditions.
    """
    sim, engine = _clean_engine(adaptive)
    start = time.perf_counter()
    pool = engine.open_transfer(
        "a", "b", nbytes=size_mb * MB, streams=streams,
        tcp=TcpParams(buffer=128 * KiB),
    )
    sim.run(until=pool.done)
    wall = time.perf_counter() - start
    ticks = engine.tick_count + engine.settled_tick_count
    return {
        "scenario": "clean_stretch" if adaptive else "clean_full_ticks",
        "size_mb": size_mb,
        "streams": streams,
        "adaptive_ticks": adaptive,
        "wall_s": wall,
        "ticks": ticks,
        "executed_ticks": engine.tick_count,
        "settled_ticks": engine.settled_tick_count,
        "ticks_per_s": ticks / wall,
        "rate_mbps": pool.throughput() * 8 / 1e6,
    }


def run_all(smoke: bool = False) -> list[dict]:
    """All scenarios; ``smoke`` shrinks sizes for CI sanity runs."""
    if smoke:
        return [
            run_lossy_scenario(size_mb=10, repeats=1),
            run_stretch_scenario(size_mb=100),
            run_stretch_scenario(size_mb=100, adaptive=False),
        ]
    return [
        run_lossy_scenario(),
        run_stretch_scenario(),
        run_stretch_scenario(adaptive=False),
    ]


# -- pytest-benchmark entry points ----------------------------------------

def test_engine_lossy_testbed(once):
    stats = once(run_lossy_scenario)
    assert stats["ticks"] > 0
    assert 15 < stats["last_rate_mbps"] < 30  # the paper's ~23 Mbps regime
    once.benchmark.extra_info.update(
        {"ticks_per_s": round(stats["ticks_per_s"])}
    )


def test_engine_clean_stretch(once):
    stats = once(run_stretch_scenario)
    assert stats["ticks"] > 0
    # the stretch fast path must settle the overwhelming majority of fine
    # ticks analytically once windows are buffer-clamped
    assert stats["settled_ticks"] > stats["executed_ticks"]
    once.benchmark.extra_info.update(
        {
            "ticks_per_s": round(stats["ticks_per_s"]),
            "settled_fraction": round(
                stats["settled_ticks"] / stats["ticks"], 3
            ),
        }
    )


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for a fast sanity run")
    args = parser.parse_args(argv)
    print(json.dumps(run_all(smoke=args.smoke), indent=2))


if __name__ == "__main__":
    main()
