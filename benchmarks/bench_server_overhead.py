"""EXP-OBJ3 — §5.3 prototyping observations: the object copier's extra
CPU/disk/databus load per network byte; harmless at 45 Mbps, binding at a
high-end NIC, cured by a separate copier box."""

from repro.experiments import server_overhead
from repro.experiments.server_overhead import MODES


def test_server_overhead(once):
    result = once(server_overhead.run)

    file_rate = result.rates[MODES[0][0]]
    object_rate = result.rates[MODES[1][0]]
    split_rate = result.rates[MODES[2][0]]

    # "As long as the object replication server is powerful enough ... the
    # object copying actions in the server do not form a bottleneck" (WAN)
    assert result.wan_unaffected
    # "a degradation in network traffic handling efficiency might therefore
    # be noticeable" driving a very high-end card
    assert object_rate < 0.7 * file_rate
    # "running the object copier tool on a different box ... might be
    # necessary" — and it works
    assert split_rate > 0.9 * file_rate

    once.benchmark.extra_info.update(
        {
            "file_serving_mbps": round(file_rate * 8 / 1e6),
            "object_serving_mbps": round(object_rate * 8 / 1e6),
            "split_serving_mbps": round(split_rate * 8 / 1e6),
            "degradation": round(result.degradation_at_nic, 2),
        }
    )
