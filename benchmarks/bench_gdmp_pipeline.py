"""EXP-GDMP — §4.1/§4.3: the replication pipeline completes correctly
through injected disconnects (restart markers) and corruption (CRC)."""

from repro.experiments import gdmp_pipeline


def test_gdmp_failure_recovery(once):
    result = once(gdmp_pipeline.run)

    # clean run: one attempt, no CRC retries
    assert result.clean.attempts == 1
    assert result.clean.crc_retries == 0
    # disconnect: restart marker resumes; only the missing half re-moves,
    # so the hit is much less than a full re-transfer
    assert result.with_abort.attempts == 2
    assert (
        result.with_abort.transfer_duration
        < 1.7 * result.clean.transfer_duration
    )
    # corruption: CRC catches it, a full second transfer follows
    assert result.with_corruption.crc_retries == 1
    assert (
        result.with_corruption.transfer_duration
        > 1.7 * result.clean.transfer_duration
    )
    # every scenario ends with a correct replica (goodput > 0 implies done)
    for report in (result.clean, result.with_abort, result.with_corruption):
        assert report.size == result.size_mb * 1e6
        assert report.throughput > 0

    once.benchmark.extra_info.update(
        {
            "clean_goodput_mbps": round(result.clean.throughput * 8 / 1e6, 2),
            "abort_goodput_mbps": round(result.with_abort.throughput * 8 / 1e6, 2),
            "corrupt_goodput_mbps": round(
                result.with_corruption.throughput * 8 / 1e6, 2
            ),
        }
    )
