#!/usr/bin/env python
"""Associated files and consistency policies (§2.2 of the paper).

Two Objectivity files are coupled by a navigational association (AOD
objects point at their raw-data upstream objects in another file).
Replicating only the AOD file breaks navigation at the destination — the
exact failure mode §2.1 describes.  An application-level consistency
policy derives the file-association graph from the federation and steers
the replication layer to move the closure together.

Also shows the §4.2 future work in action: with a read replica of the
replica catalog at the destination site, every catalog lookup during
replication is local instead of a 125 ms WAN round trip.

Run:  python examples/associated_files.py
"""

from repro.gdmp import (
    AssociatedFilesPolicy,
    DataGrid,
    FileAssociationGraph,
    GdmpConfig,
)
from repro.gdmp.catalog_replication import enable_catalog_replication
from repro.objectdb import DatabaseFile, NavigationError


def build_coupled_files(cern):
    """An AOD file whose objects navigate into a raw-data file."""
    cern.federation.declare_type("aod")
    cern.federation.declare_type("raw")
    raw_db = DatabaseFile(401, "raw.2001.db")
    raw_container = raw_db.create_container()
    aod_db = DatabaseFile(402, "aod.2001.db")
    aod_container = aod_db.create_container()
    for event in range(50):
        raw = raw_db.new_object(raw_container, "raw", 1_000_000, f"{event}/raw")
        aod = aod_db.new_object(aod_container, "aod", 10_000, f"{event}/aod")
        aod.associate("upstream", raw.oid)
    return aod_db, raw_db


def main() -> None:
    grid = DataGrid([GdmpConfig("cern"), GdmpConfig("anl")])
    enable_catalog_replication(grid, ["anl"])  # local catalog reads at ANL
    cern, anl = grid.site("cern"), grid.site("anl")

    aod_db, raw_db = build_coupled_files(cern)
    for db in (aod_db, raw_db):
        grid.run(
            until=cern.client.produce_and_publish(
                db.name, db.size, payload=db,
                filetype="objectivity", schema="aod;raw",
            )
        )
        cern.federation.attach(db)
    grid.run()  # let catalog writes propagate to the ANL replica
    print(f"cern published {aod_db.name} ({aod_db.size/1e6:.1f} MB) and "
          f"{raw_db.name} ({raw_db.size/1e6:.1f} MB), coupled by associations")

    # --- naive replication: only the AOD file ---------------------------------
    grid.run(until=anl.client.replicate(aod_db.name))
    aod = anl.federation.find_by_key("0/aod")
    try:
        anl.federation.navigate(aod, "upstream")
    except NavigationError as exc:
        print(f"naive replication: navigation broken at anl — {exc}")

    # roll the naive copy back
    grid.run(until=anl.client.catalog.remove_replica(aod_db.name, "anl"))
    anl.federation.detach(aod_db.name)
    anl.fs.delete(f"/storage/{aod_db.name}")
    del anl.server.held[aod_db.name]
    grid.run()

    # --- policy-steered replication: the closure travels together ---------------
    graph = FileAssociationGraph.from_federation(cern.federation)
    print(f"derived association graph: {aod_db.name} requires "
          f"{sorted(graph.requires(aod_db.name))}")
    policy = AssociatedFilesPolicy(graph)
    reports = grid.run(until=anl.client.replicate_consistent(aod_db.name, policy))
    print("consistent replication moved, dependencies first:",
          [r.lfn for r in reports])

    aod = anl.federation.find_by_key("0/aod")
    raw = anl.federation.navigate(aod, "upstream")[0]
    print(f"navigation preserved at anl: {aod.logical_key} -> "
          f"{raw.logical_key} ({raw.size/1e6:.1f} MB object)")


if __name__ == "__main__":
    main()
