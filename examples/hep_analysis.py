#!/usr/bin/env python
"""A physics analysis with object replication (§5 of the paper).

CERN holds an event store (events with tag/aod objects clustered into
database files).  A physicist at ANL runs a two-step selection funnel; the
surviving events' 10 KB AOD objects must move to ANL, which has the CPU.
The example compares what file replication would have shipped against what
the object replication cycle actually moves, then runs the cycle and reads
an object at the destination.

Run:  python examples/hep_analysis.py
"""

from repro.gdmp import DataGrid, GdmpConfig
from repro.objectdb import (
    EventStoreBuilder,
    ObjectReader,
    ObjectTypeSpec,
    TagDatabase,
)
from repro.objectrep import (
    GlobalObjectIndex,
    ObjectReplicator,
    compare_replication_strategies,
)

N_EVENTS = 20_000  # scaled from the paper's 10^9 (ratios are scale-free)
TYPES = (
    ObjectTypeSpec("tag", 100.0, upstream="aod"),
    ObjectTypeSpec("aod", 10_000.0),
)


def main() -> None:
    grid = DataGrid([GdmpConfig("cern"), GdmpConfig("anl")])
    cern, anl = grid.site("cern"), grid.site("anl")

    # --- production: the event store lives at CERN --------------------------
    catalog = EventStoreBuilder(seed=1).build(
        cern.federation, n_events=N_EVENTS, types=TYPES, events_per_file=1000
    )
    index = GlobalObjectIndex()
    for name in cern.federation.database_names:
        index.record_file("cern", name, cern.federation.database(name).iter_objects())
    print(
        f"event store at cern: {N_EVENTS} events, "
        f"{cern.federation.object_count} objects in "
        f"{len(cern.federation.database_names)} files "
        f"({cern.federation.total_bytes / 1e6:.0f} MB)"
    )

    # --- analysis funnel: physics cuts on the event tags ----------------------
    # "One separates the interesting from the uninteresting events by
    # looking at the properties of some of the stored objects" (§5.1)
    tags = TagDatabase.generate(N_EVENTS, seed=7)
    funnel = [
        ("preselection", ["njets >= 3"]),
        ("signal region", ["njets >= 3", "met > 55", "lepton_pt > 35"]),
    ]
    selected = catalog.event_numbers
    for name, cuts in funnel:
        selected = sorted(set(selected) & set(tags.select(cuts)))
        print(f"  {name} ({' AND '.join(cuts)}): {len(selected)} events survive")

    # --- §5.1: what would each strategy ship? --------------------------------
    comparison = compare_replication_strategies(
        cern.federation, catalog, selected, "aod"
    )
    print(
        f"file replication would ship "
        f"{comparison.file_strategy.bytes_moved / 1e6:.0f} MB "
        f"({comparison.file_strategy.efficiency:.1%} useful); "
        f"object replication ships "
        f"{comparison.object_strategy.bytes_moved / 1e6:.1f} MB "
        f"-> {comparison.ratio:.0f}x saving"
    )
    print(
        "probability an existing file is >50% selected: "
        f"{comparison.majority_probability:.2e}"
    )

    # --- the object replication cycle ------------------------------------------
    keys = [f"{event}/aod" for event in selected]
    replicator = ObjectReplicator(grid, "anl", index)
    report = grid.run(
        until=replicator.replicate_objects(keys, chunk_objects=100, pipelined=True)
    )
    print(
        f"object replication: {report.objects_moved} objects "
        f"({report.wire_bytes / 1e6:.1f} MB on the wire) in "
        f"{report.duration:.1f}s via {report.files_created} new files; "
        f"copier busy {report.copy_time:.2f}s"
    )

    # --- the physicist reads objects locally at ANL ------------------------------
    reader = ObjectReader(anl.federation)
    first = anl.federation.find_by_key(keys[0])
    obj = reader.read(first.oid)
    print(
        f"anl reads {obj.logical_key} ({obj.size / 1000:.0f} KB) locally — "
        f"{reader.page_reads} page reads"
    )
    # the new files are first-class grid files
    print(f"anl now exports {len(anl.server.held)} object-extract files "
          "(future extraction sources)")


if __name__ == "__main__":
    main()
