#!/usr/bin/env python
"""Multi-site production with MSS staging and failure recovery.

The deployment scenario of Figure 3: CERN produces Objectivity database
files (archived to its tape MSS); two regional centers subscribe and
auto-replicate every published file.  The example injects a mid-transfer
disconnect and a corruption, shows GDMP recovering via restart markers and
the CRC check, and finishes with the failure-recovery catalog diff.

Run:  python examples/multisite_production.py
"""

from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.units import MB
from repro.objectdb import DatabaseFile


def make_database(db_id: int, n_objects: int) -> DatabaseFile:
    db = DatabaseFile(db_id, f"prod{db_id}.db")
    container = db.create_container("digis")
    for i in range(n_objects):
        db.new_object(container, "digi", 100_000, f"{db_id}/{i}/digi")
    return db


def main() -> None:
    grid = DataGrid(
        [
            GdmpConfig("cern", has_mss=True),
            GdmpConfig("anl", auto_replicate=True),
            GdmpConfig("caltech", auto_replicate=True),
        ]
    )
    cern = grid.site("cern")
    for consumer in ("anl", "caltech"):
        grid.run(until=grid.site(consumer).client.subscribe_to("cern"))
    print("anl and caltech subscribed to cern (auto-replicate on)")

    # inject failures for the second file before production begins
    cern.gridftp_server.failures.abort_after_bytes("/storage/prod2.db", 4 * MB)
    cern.gridftp_server.failures.corrupt_next("/storage/prod3.db")

    # --- production run: three Objectivity files published over time -----------
    def production(sim):
        for db_id in (1, 2, 3):
            db = make_database(db_id, n_objects=100)  # ~10 MB each
            cern.federation.declare_type("digi")
            yield cern.client.produce_and_publish(
                f"prod{db_id}.db",
                db.size,
                payload=db,
                filetype="objectivity",
                schema="digi",
            )
            print(f"[{sim.now:8.2f}s] cern published prod{db_id}.db "
                  f"({db.size / 1e6:.1f} MB)")
            # archive to tape; the disk copy stays as the serving cache
            yield cern.storage.archive(f"/storage/prod{db_id}.db")
            yield sim.timeout(30.0)

    grid.sim.spawn(production(grid.sim), name="production-run")
    grid.run()  # drain: production + all auto-replications complete

    for name in ("anl", "caltech"):
        site = grid.site(name)
        restarts = site.mover.monitor.counter("restarts")
        crc_failures = site.mover.monitor.counter("crc_failures")
        print(
            f"[{grid.sim.now:8.2f}s] {name}: holds {sorted(site.server.held)}; "
            f"federation files attached: {len(site.federation.database_names)}; "
            f"restarts={restarts:.0f}, crc retries={crc_failures:.0f}"
        )
        assert sorted(site.server.held) == ["prod1.db", "prod2.db", "prod3.db"]

    # --- a late joiner recovers via the remote catalog diff ----------------------
    # caltech lost a replica (simulate by wiping one holding record)
    caltech = grid.site("caltech")
    caltech.fs.delete("/storage/prod1.db")
    del caltech.server.held["prod1.db"]
    grid.run(until=caltech.client.catalog.remove_replica("prod1.db", "caltech"))
    caltech.federation.detach("prod1.db")
    reports = grid.run(until=caltech.client.replicate_missing_from("cern"))
    print(
        f"[{grid.sim.now:8.2f}s] caltech recovered "
        f"{[r.lfn for r in reports]} via get_catalog diff "
        f"(stage wait {reports[0].stage_wait:.1f}s — prod1 came from tape? "
        f"{'yes' if reports[0].stage_wait > 40 else 'no, still cached'})"
    )

    # tape archive state at cern
    print(
        f"cern MSS: {cern.mss.monitor.counter('migrated_files'):.0f} files "
        f"archived, {cern.mss.monitor.counter('staged_files'):.0f} staged back"
    )


if __name__ == "__main__":
    main()
