#!/usr/bin/env python
"""Quickstart: a two-site data grid doing publish/subscribe replication.

Builds CERN and ANL joined by the paper's 45 Mbps / 125 ms WAN, subscribes
ANL to CERN, publishes a file at CERN, and replicates it — the basic GDMP
workflow of §4.1.

Run:  python examples/quickstart.py
"""

from repro.gdmp import DataGrid, GdmpConfig
from repro.netsim.calibration import TUNED_BUFFER_BYTES
from repro.netsim.units import MB


def main() -> None:
    # 1. build the grid: two sites, full WAN mesh, central catalog at CERN
    grid = DataGrid(
        [
            GdmpConfig("cern", tcp_buffer=TUNED_BUFFER_BYTES, parallel_streams=3),
            GdmpConfig("anl", tcp_buffer=TUNED_BUFFER_BYTES, parallel_streams=3),
        ]
    )
    cern, anl = grid.site("cern"), grid.site("anl")

    # 2. ANL subscribes to CERN's new files
    grid.run(until=anl.client.subscribe_to("cern"))
    print(f"[{grid.sim.now:7.2f}s] anl subscribed to cern")

    # 3. CERN produces and publishes a 50 MB file
    grid.run(until=cern.client.produce_and_publish("run2001.digis.db", 50 * MB))
    print(f"[{grid.sim.now:7.2f}s] cern published run2001.digis.db "
          f"(anl was notified: {len(anl.server.pending_news)} notification)")

    # 4. ANL replicates it (locate -> stage -> transfer -> catalog update)
    report = grid.run(until=anl.client.replicate("run2001.digis.db"))
    print(
        f"[{grid.sim.now:7.2f}s] replicated from {report.source}: "
        f"{report.size / 1e6:.0f} MB in {report.total_duration:.1f}s "
        f"({report.throughput * 8 / 1e6:.1f} Mbps end-to-end, "
        f"{report.streams} streams, {report.buffer // 1024} KiB buffers)"
    )

    # 5. the catalog now shows both replicas
    locations = grid.run(until=anl.client.catalog.locations("run2001.digis.db"))
    print("replica catalog:", ", ".join(loc["url"] for loc in locations))


if __name__ == "__main__":
    main()
