#!/usr/bin/env python
"""The §6 network tuning workflow, end to end.

Measure the link with ping and pipechar, compute the optimal buffer from
the paper's formula, validate with iperf at several stream counts, then
show the effect on a real GridFTP transfer — untuned defaults vs the
measured tuning.

Run:  python examples/network_tuning.py
"""

from repro.experiments.testbed import extended_get, gridftp_testbed
from repro.netsim.calibration import DEFAULT_BUFFER_BYTES
from repro.netsim.tools import iperf, ping, pipechar
from repro.netsim.tcp import TcpParams
from repro.netsim.tuning import optimal_buffer_size, recommend_streams
from repro.netsim.units import KiB, MB, to_mbps


def main() -> None:
    testbed = gridftp_testbed()

    # --- step 1: characterize the path (ping + pipechar) ---------------------
    rtt = ping(testbed.topology, "anl", "cern").rtt
    probe = pipechar(testbed.topology, "anl", "cern")
    print(f"ping:     RTT = {rtt * 1000:.1f} ms")
    print(
        f"pipechar: bottleneck {probe.bottleneck_name} — line rate "
        f"{to_mbps(probe.bottleneck_capacity):.0f} Mbps, available "
        f"{to_mbps(probe.available_bandwidth):.0f} Mbps"
    )

    # --- step 2: the formula ---------------------------------------------------
    buffer = optimal_buffer_size(rtt, probe.available_bandwidth)
    streams = recommend_streams(buffer, buffer)
    print(
        f"formula:  optimal TCP buffer = RTT x bandwidth = {buffer / KiB:.0f} KiB; "
        f"recommended streams: {streams}"
    )

    # --- step 3: validate with iperf ("we typically run multiple iperf
    # tests with various numbers of streams, and compare the results") -------
    for n in (1, 2, 4, 8):
        result = iperf(
            testbed.engine, "cern", "anl", streams=n, duration=30,
            tcp=TcpParams(buffer=buffer),
        )
        print(f"iperf -P {n}: {to_mbps(result.throughput):6.2f} Mbps")
        testbed.sim.run()  # drain retired test flows

    # --- step 4: the payoff on a real 100 MB GridFTP transfer ------------------
    untuned = extended_get(testbed, 100 * MB, streams=1,
                           buffer=DEFAULT_BUFFER_BYTES)
    tuned = extended_get(testbed, 100 * MB, streams=streams, buffer=buffer)
    print(
        f"100 MB transfer: untuned defaults {untuned:.1f} Mbps -> tuned "
        f"({streams} streams, {buffer / KiB:.0f} KiB buffers) {tuned:.1f} Mbps "
        f"= {tuned / untuned:.1f}x"
    )


if __name__ == "__main__":
    main()
